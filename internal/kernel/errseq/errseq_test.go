package errseq

import (
	"errors"
	"sync"
	"testing"
)

var errBoom = errors.New("boom")

func TestCleanStreamStaysSilent(t *testing.T) {
	var s Stream
	c := s.Sample()
	if err := s.Observe(&c); err != nil {
		t.Fatalf("clean observe = %v", err)
	}
	if s.Pending() {
		t.Fatal("clean stream pending")
	}
}

func TestEachCursorReportsOnce(t *testing.T) {
	var s Stream
	c1, c2 := s.Sample(), s.Sample()
	s.Record(errBoom)
	if err := s.Observe(&c1); !errors.Is(err, errBoom) {
		t.Fatalf("c1 = %v", err)
	}
	if err := s.Observe(&c1); err != nil {
		t.Fatalf("c1 again = %v, want nil (exactly-once)", err)
	}
	// c2 is independent: c1's observation did not consume its epoch.
	if err := s.Observe(&c2); !errors.Is(err, errBoom) {
		t.Fatalf("c2 = %v", err)
	}
	if err := s.Observe(&c2); err != nil {
		t.Fatalf("c2 again = %v", err)
	}
}

// TestLateSamplerSemantics is the Linux errseq_sample subtlety: a cursor
// sampled while an epoch is still UNREPORTED lands before it (the new
// opener must hear the news); one sampled after any observer reported it
// lands on it (old news is not repeated to new opens).
func TestLateSamplerSemantics(t *testing.T) {
	var s Stream
	s.Record(errBoom)
	early := s.Sample() // nobody has observed the epoch yet
	if err := s.Observe(&early); !errors.Is(err, errBoom) {
		t.Fatalf("unseen-epoch sampler = %v, want %v", err, errBoom)
	}
	late := s.Sample() // the epoch has been reported now
	if err := s.Observe(&late); err != nil {
		t.Fatalf("seen-epoch sampler = %v, want nil", err)
	}
}

func TestRetrySuccessDoesNotEraseEpoch(t *testing.T) {
	var s Stream
	c := s.Sample()
	s.Record(errBoom)
	// The "retry succeeded" case: no way to rewind the stream exists, so
	// the observer still hears the failure.
	if err := s.Observe(&c); !errors.Is(err, errBoom) {
		t.Fatalf("observe after record = %v", err)
	}
}

func TestCollapsedEpochsReportLatest(t *testing.T) {
	var s Stream
	c := s.Sample()
	errLater := errors.New("later")
	s.Record(errBoom)
	s.Record(errLater)
	if err := s.Observe(&c); !errors.Is(err, errLater) {
		t.Fatalf("collapsed observe = %v, want the latest error", err)
	}
	if err := s.Observe(&c); err != nil {
		t.Fatalf("second observe = %v", err)
	}
}

func TestLegacyCheckIsIndependentObserver(t *testing.T) {
	var s Stream
	c := s.Sample()
	s.Record(errBoom)
	if err := s.Check(); !errors.Is(err, errBoom) {
		t.Fatalf("Check = %v", err)
	}
	if err := s.Check(); err != nil {
		t.Fatalf("second Check = %v", err)
	}
	if err := s.Observe(&c); !errors.Is(err, errBoom) {
		t.Fatalf("cursor after Check = %v, want the error (independent)", err)
	}
}

// TestConcurrentObservers: racing observers of one shared cursor report
// an epoch exactly once between them (two fsyncs on one descriptor), and
// the run is race-detector clean.
func TestConcurrentObservers(t *testing.T) {
	var s Stream
	c := s.Sample()
	s.Record(errBoom)
	const n = 16
	reports := make(chan error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			reports <- s.Observe(&c)
		}()
	}
	wg.Wait()
	close(reports)
	got := 0
	for err := range reports {
		if err != nil {
			got++
		}
	}
	if got != 1 {
		t.Fatalf("shared cursor reported %d times, want 1", got)
	}
}
