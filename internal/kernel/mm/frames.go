// Package mm implements Proto's memory management: a physical frame
// allocator (Prototype 2's page-based allocator), a byte-granular kernel
// allocator (Prototype 4's kmalloc), ARMv8-style page tables with 1 MB
// kernel blocks and 4 KB user pages, and per-task address spaces with
// demand-paged stacks, sbrk heaps, fork by eager copy or copy-on-write, and
// the repeated-page-fault kill policy of Prototype 3.
package mm

import (
	"errors"
	"fmt"
	"sync"

	"protosim/internal/hw"
)

// PageSize is the user mapping granularity.
const PageSize = hw.FrameSize

// ErrNoMemory is returned when physical memory is exhausted.
var ErrNoMemory = errors.New("mm: out of physical frames")

// FrameAllocator hands out physical frames from hw.Mem, excluding a
// reserved kernel carve-out (kernel image + GPU framebuffer region). Frames
// carry reference counts so copy-on-write can share them.
type FrameAllocator struct {
	mem *hw.Mem

	mu       sync.Mutex
	free     []int // stack of free frame numbers
	refs     []int32
	reserved int
	allocs   int64
}

// NewFrameAllocator manages mem, reserving frames [0, reserveFrames) for
// the kernel image and everything from highReserve frames below the top
// (the mailbox framebuffer carve-out).
func NewFrameAllocator(mem *hw.Mem, reserveFrames, highReserve int) *FrameAllocator {
	total := mem.Frames()
	fa := &FrameAllocator{mem: mem, refs: make([]int32, total), reserved: reserveFrames}
	for f := total - 1 - highReserve; f >= reserveFrames; f-- {
		fa.free = append(fa.free, f)
	}
	return fa
}

// Alloc returns a zeroed frame with refcount 1.
func (fa *FrameAllocator) Alloc() (int, error) {
	fa.mu.Lock()
	if len(fa.free) == 0 {
		fa.mu.Unlock()
		return 0, ErrNoMemory
	}
	f := fa.free[len(fa.free)-1]
	fa.free = fa.free[:len(fa.free)-1]
	fa.refs[f] = 1
	fa.allocs++
	fa.mu.Unlock()
	// Zero it: real DRAM holds garbage (hw.Mem.Scramble), and handing
	// scrambled frames to user tasks is the uninitialized-memory bug the
	// paper warns about.
	b := fa.mem.Frame(f)
	for i := range b {
		b[i] = 0
	}
	return f, nil
}

// Ref increments a frame's reference count (COW sharing).
func (fa *FrameAllocator) Ref(frame int) {
	fa.mu.Lock()
	defer fa.mu.Unlock()
	if fa.refs[frame] <= 0 {
		panic(fmt.Sprintf("mm: ref of free frame %d", frame))
	}
	fa.refs[frame]++
}

// Refs returns a frame's current reference count.
func (fa *FrameAllocator) Refs(frame int) int {
	fa.mu.Lock()
	defer fa.mu.Unlock()
	return int(fa.refs[frame])
}

// Free drops one reference; the frame returns to the pool at zero.
func (fa *FrameAllocator) Free(frame int) {
	fa.mu.Lock()
	defer fa.mu.Unlock()
	if fa.refs[frame] <= 0 {
		panic(fmt.Sprintf("mm: double free of frame %d", frame))
	}
	fa.refs[frame]--
	if fa.refs[frame] == 0 {
		fa.free = append(fa.free, frame)
	}
}

// FreeFrames reports how many frames remain allocatable.
func (fa *FrameAllocator) FreeFrames() int {
	fa.mu.Lock()
	defer fa.mu.Unlock()
	return len(fa.free)
}

// TotalAllocs counts lifetime allocations (for /proc/meminfo).
func (fa *FrameAllocator) TotalAllocs() int64 {
	fa.mu.Lock()
	defer fa.mu.Unlock()
	return fa.allocs
}

// Mem exposes the underlying physical memory.
func (fa *FrameAllocator) Mem() *hw.Mem { return fa.mem }
