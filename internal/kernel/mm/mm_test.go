package mm

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"

	"protosim/internal/hw"
)

func newFA(t *testing.T) *FrameAllocator {
	t.Helper()
	mem := hw.NewMem(8 << 20)
	mem.Scramble(7)
	return NewFrameAllocator(mem, 4, 4)
}

func TestFrameAllocZeroedAndDistinct(t *testing.T) {
	fa := newFA(t)
	seen := map[int]bool{}
	for i := 0; i < 16; i++ {
		f, err := fa.Alloc()
		if err != nil {
			t.Fatal(err)
		}
		if seen[f] {
			t.Fatalf("frame %d handed out twice", f)
		}
		seen[f] = true
		for _, b := range fa.Mem().Frame(f) {
			if b != 0 {
				t.Fatal("allocated frame not zeroed")
			}
		}
	}
}

func TestFrameReserveRespected(t *testing.T) {
	fa := newFA(t)
	for i := 0; i < fa.FreeFrames(); i++ {
	}
	// Drain the allocator; no frame may fall in the reserved ranges.
	total := fa.Mem().Frames()
	for {
		f, err := fa.Alloc()
		if err != nil {
			break
		}
		if f < 4 || f >= total-4 {
			t.Fatalf("allocator handed out reserved frame %d", f)
		}
	}
}

func TestFrameRefCounting(t *testing.T) {
	fa := newFA(t)
	f, _ := fa.Alloc()
	fa.Ref(f)
	if fa.Refs(f) != 2 {
		t.Fatalf("refs = %d", fa.Refs(f))
	}
	before := fa.FreeFrames()
	fa.Free(f)
	if fa.FreeFrames() != before {
		t.Fatal("frame returned to pool while still referenced")
	}
	fa.Free(f)
	if fa.FreeFrames() != before+1 {
		t.Fatal("frame not returned at refcount zero")
	}
}

func TestFrameDoubleFreePanics(t *testing.T) {
	fa := newFA(t)
	f, _ := fa.Alloc()
	fa.Free(f)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on double free")
		}
	}()
	fa.Free(f)
}

func TestFrameExhaustion(t *testing.T) {
	fa := newFA(t)
	for fa.FreeFrames() > 0 {
		if _, err := fa.Alloc(); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := fa.Alloc(); !errors.Is(err, ErrNoMemory) {
		t.Fatalf("err = %v, want ErrNoMemory", err)
	}
}

func TestPageTableMapTranslateUnmap(t *testing.T) {
	pt := NewPageTable()
	if err := pt.Map(0x1000, 5*PageSize, FlagWrite|FlagUser); err != nil {
		t.Fatal(err)
	}
	pa, flags, ok := pt.Translate(0x1234)
	if !ok || pa != 5*PageSize+0x234 {
		t.Fatalf("translate: pa=%#x ok=%v", pa, ok)
	}
	if flags&FlagWrite == 0 || flags&FlagUser == 0 {
		t.Fatalf("flags = %v", flags)
	}
	if _, _, ok := pt.Translate(0x2000); ok {
		t.Fatal("unmapped va translated")
	}
	if _, err := pt.Unmap(0x1000); err != nil {
		t.Fatal(err)
	}
	if _, _, ok := pt.Translate(0x1000); ok {
		t.Fatal("translation survived unmap")
	}
}

func TestPageTableBlockMapping(t *testing.T) {
	pt := NewPageTable()
	if err := pt.MapBlock(KernelBase, 0, FlagWrite|FlagCached); err != nil {
		t.Fatal(err)
	}
	pa, _, ok := pt.Translate(KernelBase + 0x12345)
	if !ok || pa != 0x12345 {
		t.Fatalf("block translate: pa=%#x ok=%v", pa, ok)
	}
	// A 4 KB map inside a block region must be rejected.
	if err := pt.Map(KernelBase+0x3000, PageSize, 0); err == nil {
		t.Fatal("page map inside block accepted")
	}
	// Misaligned blocks rejected.
	if err := pt.MapBlock(KernelBase+123, 0, 0); !errors.Is(err, ErrAlignment) {
		t.Fatalf("err = %v, want alignment", err)
	}
}

func TestPageTableDoubleMapRejected(t *testing.T) {
	pt := NewPageTable()
	pt.Map(0, 0, 0)
	if err := pt.Map(0, PageSize, 0); !errors.Is(err, ErrMapped) {
		t.Fatalf("err = %v", err)
	}
}

// Property: map/translate round-trips for arbitrary page-aligned pairs.
func TestPageTableProperty(t *testing.T) {
	check := func(vaPages []uint16, paPage uint16) bool {
		pt := NewPageTable()
		want := map[uint64]int{}
		for i, vp := range vaPages {
			va := uint64(vp) * PageSize
			pa := (int(paPage) + i) * PageSize
			if _, dup := want[va]; dup {
				continue
			}
			if err := pt.Map(va, pa, FlagUser); err != nil {
				return false
			}
			want[va] = pa
		}
		if pt.Pages() != len(want) {
			return false
		}
		for va, pa := range want {
			got, _, ok := pt.Translate(va + 7)
			if !ok || got != pa+7 {
				return false
			}
		}
		// Unmap everything; translations must disappear.
		for va := range want {
			if _, err := pt.Unmap(va); err != nil {
				return false
			}
			if _, _, ok := pt.Translate(va); ok {
				return false
			}
		}
		return pt.Pages() == 0
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestAddressSpaceSegmentAndIO(t *testing.T) {
	fa := newFA(t)
	as := NewAddressSpace(fa)
	defer as.Release()
	code := []byte("program text here")
	if err := as.MapSegment(0, code, 2*PageSize, FlagValid|FlagWrite); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(code))
	if err := as.ReadAt(0, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, code) {
		t.Fatalf("read %q", got)
	}
	// Cross-page write/read.
	data := bytes.Repeat([]byte{0xCD}, PageSize)
	if err := as.WriteAt(PageSize/2, data); err != nil {
		t.Fatal(err)
	}
	back := make([]byte, len(data))
	if err := as.ReadAt(PageSize/2, back); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(back, data) {
		t.Fatal("cross-page IO corrupted data")
	}
}

func TestDemandPagedStack(t *testing.T) {
	fa := newFA(t)
	as := NewAddressSpace(fa)
	defer as.Release()
	if err := as.SetupStack(DefaultStackVA, 8); err != nil {
		t.Fatal(err)
	}
	if as.PageTable().Pages() != 1 {
		t.Fatalf("stack pre-mapped %d pages, want 1", as.PageTable().Pages())
	}
	// Touch three pages down: two demand faults beyond the premapped one.
	va := DefaultStackVA - 3*PageSize
	if err := as.WriteAt(va, []byte{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	demand, _, pages := as.Stats()
	if demand < 2 {
		t.Fatalf("demand faults = %d, want >= 2", demand)
	}
	if pages < 2 {
		t.Fatalf("pages = %d", pages)
	}
	// Below the stack floor: segfault.
	low, _ := as.StackRange()
	err := as.WriteAt(low-PageSize, []byte{9})
	if !errors.Is(err, ErrSegfault) {
		t.Fatalf("err = %v, want segfault", err)
	}
}

func TestSbrkGrowsHeap(t *testing.T) {
	fa := newFA(t)
	as := NewAddressSpace(fa)
	defer as.Release()
	if err := as.MapSegment(0, []byte("x"), PageSize, FlagValid); err != nil {
		t.Fatal(err)
	}
	old, err := as.Sbrk(3 * PageSize)
	if err != nil {
		t.Fatal(err)
	}
	if old != PageSize {
		t.Fatalf("old brk = %#x, want %#x", old, PageSize)
	}
	// The new heap must be usable.
	if err := as.WriteAt(old, bytes.Repeat([]byte{7}, 3*PageSize)); err != nil {
		t.Fatal(err)
	}
	if as.Brk() != PageSize+3*PageSize {
		t.Fatalf("brk = %#x", as.Brk())
	}
}

func TestForkEagerCopies(t *testing.T) {
	fa := newFA(t)
	parent := NewAddressSpace(fa)
	defer parent.Release()
	parent.MapSegment(0, []byte("shared start"), PageSize, FlagValid|FlagWrite)
	child, err := parent.Fork(false)
	if err != nil {
		t.Fatal(err)
	}
	defer child.Release()
	// Writes in the child must not appear in the parent.
	if err := child.WriteAt(0, []byte("CHILD")); err != nil {
		t.Fatal(err)
	}
	p := make([]byte, 5)
	parent.ReadAt(0, p)
	if string(p) == "CHILD" {
		t.Fatal("eager fork shared memory with parent")
	}
}

func TestForkCOWSharesUntilWrite(t *testing.T) {
	fa := newFA(t)
	parent := NewAddressSpace(fa)
	defer parent.Release()
	parent.MapSegment(0, []byte("shared start"), PageSize, FlagValid|FlagWrite)
	allocsBefore := fa.TotalAllocs()
	child, err := parent.Fork(true)
	if err != nil {
		t.Fatal(err)
	}
	defer child.Release()
	if fa.TotalAllocs() != allocsBefore {
		t.Fatalf("COW fork allocated %d frames, want 0", fa.TotalAllocs()-allocsBefore)
	}
	// Reads see the same bytes.
	c := make([]byte, 6)
	if err := child.ReadAt(0, c); err != nil {
		t.Fatal(err)
	}
	if string(c) != "shared" {
		t.Fatalf("child read %q", c)
	}
	// Child write breaks the share.
	if err := child.WriteAt(0, []byte("CHILD!")); err != nil {
		t.Fatal(err)
	}
	p := make([]byte, 6)
	parent.ReadAt(0, p)
	if string(p) != "shared" {
		t.Fatalf("parent sees child write: %q", p)
	}
	_, cow, _ := child.Stats()
	if cow != 1 {
		t.Fatalf("cow breaks = %d, want 1", cow)
	}
	// Parent write after the break must also work (its page went read-only).
	if err := parent.WriteAt(0, []byte("PARENT")); err != nil {
		t.Fatal(err)
	}
	parent.ReadAt(0, p)
	if string(p) != "PARENT" {
		t.Fatalf("parent readback %q", p)
	}
}

func TestForkPreservesSharedDeviceMappings(t *testing.T) {
	fa := newFA(t)
	as := NewAddressSpace(fa)
	defer as.Release()
	// Identity-map a fake framebuffer region (not owned).
	const fbPA = 6 << 20
	if err := as.MapShared(0x1000_0000, fbPA, 2*PageSize, FlagValid|FlagWrite|FlagCached); err != nil {
		t.Fatal(err)
	}
	child, err := as.Fork(false)
	if err != nil {
		t.Fatal(err)
	}
	defer child.Release()
	pa, _, ok := child.PageTable().Translate(0x1000_0000)
	if !ok || pa != fbPA {
		t.Fatalf("child fb mapping pa=%#x ok=%v", pa, ok)
	}
	// Writes through either space hit the same physical bytes.
	child.WriteAt(0x1000_0000, []byte{0xEE})
	var b [1]byte
	as.ReadAt(0x1000_0000, b[:])
	if b[0] != 0xEE {
		t.Fatal("shared mapping not actually shared")
	}
}

func TestReleaseFreesFrames(t *testing.T) {
	fa := newFA(t)
	free0 := fa.FreeFrames()
	as := NewAddressSpace(fa)
	as.MapSegment(0, make([]byte, 3*PageSize), 3*PageSize, FlagValid|FlagWrite)
	as.SetupStack(DefaultStackVA, 4)
	if fa.FreeFrames() >= free0 {
		t.Fatal("no frames consumed")
	}
	as.Release()
	if fa.FreeFrames() != free0 {
		t.Fatalf("leak: %d frames free, started with %d", fa.FreeFrames(), free0)
	}
}

func TestThreadSharingViaRefs(t *testing.T) {
	fa := newFA(t)
	free0 := fa.FreeFrames()
	as := NewAddressSpace(fa)
	as.MapSegment(0, []byte("t"), PageSize, FlagValid|FlagWrite)
	as.Ref() // clone(CLONE_VM)
	if as.Refs() != 2 {
		t.Fatalf("refs = %d", as.Refs())
	}
	as.Release() // thread exits
	if fa.FreeFrames() == free0 {
		t.Fatal("frames freed while space still shared")
	}
	as.Release() // process exits
	if fa.FreeFrames() != free0 {
		t.Fatal("frames leaked after last release")
	}
}

func TestKernelPageNotUserAccessible(t *testing.T) {
	fa := newFA(t)
	as := NewAddressSpace(fa)
	defer as.Release()
	f, _ := fa.Alloc()
	as.PageTable().Map(0x5000, f*PageSize, FlagValid|FlagWrite) // no FlagUser
	err := as.ReadAt(0x5000, make([]byte, 1))
	if !errors.Is(err, ErrSegfault) {
		t.Fatalf("err = %v, want segfault on EL0->kernel access", err)
	}
	fa.Free(f)
}

func TestFaultStormTerminates(t *testing.T) {
	fa := newFA(t)
	as := NewAddressSpace(fa)
	defer as.Release()
	as.SetupStack(DefaultStackVA, 4)
	va := DefaultStackVA - 2*PageSize
	var last error
	for i := 0; i < faultStormLimit+2; i++ {
		last = as.HandleFault(va, true)
	}
	if !errors.Is(last, ErrFaultStorm) {
		t.Fatalf("err = %v, want fault storm", last)
	}
}

func TestKAllocBasic(t *testing.T) {
	k := NewKAlloc(0x100000, 4096)
	a, err := k.Alloc(100)
	if err != nil {
		t.Fatal(err)
	}
	b, err := k.Alloc(200)
	if err != nil {
		t.Fatal(err)
	}
	if a == b {
		t.Fatal("overlapping allocations")
	}
	if a%kallocAlign != 0 || b%kallocAlign != 0 {
		t.Fatal("unaligned allocation")
	}
	k.Free(a)
	k.Free(b)
	if k.InUse() != 0 {
		t.Fatalf("inuse = %d", k.InUse())
	}
	// After freeing everything, the arena must coalesce back to one span.
	if k.LargestFree() != 4096 {
		t.Fatalf("largest free = %d, want 4096 (coalescing broken)", k.LargestFree())
	}
}

func TestKAllocExhaustion(t *testing.T) {
	k := NewKAlloc(0, 256)
	if _, err := k.Alloc(512); !errors.Is(err, ErrKAllocExhausted) {
		t.Fatalf("err = %v", err)
	}
}

func TestKAllocFreeUnknownPanics(t *testing.T) {
	k := NewKAlloc(0, 256)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	k.Free(64)
}

// Property: any alloc/free interleaving keeps regions disjoint and ends
// with full coalescing when everything is freed.
func TestKAllocProperty(t *testing.T) {
	check := func(sizes []uint8) bool {
		k := NewKAlloc(0x8000, 64<<10)
		type alloc struct{ pa, n int }
		var live []alloc
		for _, sz := range sizes {
			n := int(sz)%1024 + 1
			pa, err := k.Alloc(n)
			if err != nil {
				return false
			}
			for _, a := range live {
				if pa < a.pa+a.n && a.pa < pa+n {
					return false // overlap
				}
			}
			live = append(live, alloc{pa, n})
			if len(live) > 4 { // free the oldest to churn the free list
				k.Free(live[0].pa)
				live = live[1:]
			}
		}
		for _, a := range live {
			k.Free(a.pa)
		}
		return k.InUse() == 0 && k.LargestFree() == 64<<10
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestKAllocPeakTracking(t *testing.T) {
	k := NewKAlloc(0, 4096)
	a, _ := k.Alloc(1000)
	b, _ := k.Alloc(1000)
	k.Free(a)
	k.Free(b)
	if k.Peak() < 2000 {
		t.Fatalf("peak = %d", k.Peak())
	}
}
