package mm

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
)

// User address-space layout, as in §3: user space starts at 0; the stack
// sits at the top of the user region and demand-pages downward.
const (
	UserTop        = uint64(1 << 30) // 1 GB of user VA
	DefaultStackVA = UserTop         // stack top (exclusive)
	MaxStackPages  = 64
)

// Fault outcomes.
var (
	ErrSegfault   = errors.New("mm: segmentation fault")
	ErrFaultStorm = errors.New("mm: repeated page faults at same address")
)

// faultStormLimit is how many faults at one address the kernel tolerates
// before terminating the task (Prototype 3's policy). Legitimate sequences
// (demand map, then a COW break after each of a few forks) fault the same
// page a handful of times; a task stuck re-faulting blows past this.
const faultStormLimit = 16

// accessRetryLimit bounds the fault-retry loop inside a single access, so
// a resolution that claims success without fixing the translation cannot
// spin forever.
const accessRetryLimit = 4

// AddressSpace is one process's memory image: page table, heap, demand-
// paged stack, and the bookkeeping to share (threads, COW) and destroy it.
type AddressSpace struct {
	fa *FrameAllocator
	pt *PageTable

	mu       sync.Mutex
	heapBase uint64
	heapBrk  uint64
	stackTop uint64 // exclusive upper bound of stack region
	stackMax int    // pages the stack may grow to

	owned  map[uint64]int // va -> frame we must free (not shared/device maps)
	faults map[uint64]int

	refs atomic.Int32 // CLONE_VM sharers

	demandFaults atomic.Int64
	cowBreaks    atomic.Int64
}

// NewAddressSpace returns an empty space backed by fa.
func NewAddressSpace(fa *FrameAllocator) *AddressSpace {
	as := &AddressSpace{
		fa:     fa,
		pt:     NewPageTable(),
		owned:  make(map[uint64]int),
		faults: make(map[uint64]int),
	}
	as.refs.Store(1)
	return as
}

// PageTable exposes the underlying table (the kernel needs it for maps).
func (as *AddressSpace) PageTable() *PageTable { return as.pt }

// Ref adds a sharer (clone with CLONE_VM: threads share the mm struct).
func (as *AddressSpace) Ref() { as.refs.Add(1) }

// Refs returns the number of tasks sharing this space.
func (as *AddressSpace) Refs() int { return int(as.refs.Load()) }

// Release drops one sharer; the last release frees all owned frames.
func (as *AddressSpace) Release() {
	if as.refs.Add(-1) != 0 {
		return
	}
	as.mu.Lock()
	defer as.mu.Unlock()
	for va, frame := range as.owned {
		as.fa.Free(frame)
		delete(as.owned, va)
	}
}

// MapSegment allocates frames for [va, va+len(data)) rounded to pages,
// copies data in, and maps it (exec's code/data loading).
func (as *AddressSpace) MapSegment(va uint64, data []byte, size int, flags PTEFlags) error {
	if va%PageSize != 0 {
		return ErrAlignment
	}
	if size < len(data) {
		size = len(data)
	}
	npages := (size + PageSize - 1) / PageSize
	as.mu.Lock()
	defer as.mu.Unlock()
	for p := 0; p < npages; p++ {
		frame, err := as.fa.Alloc()
		if err != nil {
			return err
		}
		pva := va + uint64(p)*PageSize
		if err := as.pt.Map(pva, frame*PageSize, flags|FlagUser|FlagCached); err != nil {
			as.fa.Free(frame)
			return err
		}
		as.owned[pva] = frame
		lo := p * PageSize
		if lo < len(data) {
			hi := lo + PageSize
			if hi > len(data) {
				hi = len(data)
			}
			copy(as.fa.mem.Frame(frame), data[lo:hi])
		}
	}
	if end := va + uint64(npages)*PageSize; end > as.heapBase {
		as.heapBase, as.heapBrk = end, end
	}
	return nil
}

// MapShared maps [va, va+n) to existing physical memory without taking
// ownership — the framebuffer identity map of Prototype 3 (§4.3).
func (as *AddressSpace) MapShared(va uint64, pa, n int, flags PTEFlags) error {
	if va%PageSize != 0 || pa%PageSize != 0 {
		return ErrAlignment
	}
	npages := (n + PageSize - 1) / PageSize
	for p := 0; p < npages; p++ {
		if err := as.pt.Map(va+uint64(p)*PageSize, pa+p*PageSize, flags|FlagUser); err != nil {
			return err
		}
	}
	return nil
}

// SetupStack defines the demand-paged stack region ending at top and maps
// only the first page — Prototype 3 maps "code pages and one stack page".
func (as *AddressSpace) SetupStack(top uint64, maxPages int) error {
	if top%PageSize != 0 || maxPages < 1 {
		return ErrAlignment
	}
	as.mu.Lock()
	as.stackTop = top
	as.stackMax = maxPages
	as.mu.Unlock()
	return as.demandMap(top - PageSize)
}

// StackRange returns the stack's reserved [low, top) bounds.
func (as *AddressSpace) StackRange() (low, top uint64) {
	as.mu.Lock()
	defer as.mu.Unlock()
	return as.stackTop - uint64(as.stackMax)*PageSize, as.stackTop
}

// Sbrk grows (or shrinks, delta<0 unsupported as in Proto) the heap and
// returns the previous break.
func (as *AddressSpace) Sbrk(delta int) (uint64, error) {
	as.mu.Lock()
	old := as.heapBrk
	if delta == 0 {
		as.mu.Unlock()
		return old, nil
	}
	if delta < 0 {
		as.mu.Unlock()
		return 0, fmt.Errorf("mm: negative sbrk unsupported")
	}
	newBrk := old + uint64(delta)
	firstNew := (old + PageSize - 1) / PageSize
	lastNew := (newBrk + PageSize - 1) / PageSize
	as.heapBrk = newBrk
	as.mu.Unlock()
	for p := firstNew; p < lastNew; p++ {
		va := p * PageSize
		frame, err := as.fa.Alloc()
		if err != nil {
			return 0, err
		}
		if err := as.pt.Map(va, frame*PageSize, FlagValid|FlagWrite|FlagUser|FlagCached); err != nil {
			as.fa.Free(frame)
			return 0, err
		}
		as.mu.Lock()
		as.owned[va] = frame
		as.mu.Unlock()
	}
	return old, nil
}

// Brk returns the current heap break.
func (as *AddressSpace) Brk() uint64 {
	as.mu.Lock()
	defer as.mu.Unlock()
	return as.heapBrk
}

// demandMap services a stack fault by mapping a fresh zero page.
func (as *AddressSpace) demandMap(va uint64) error {
	page := va &^ uint64(PageSize-1)
	frame, err := as.fa.Alloc()
	if err != nil {
		return err
	}
	if err := as.pt.Map(page, frame*PageSize, FlagValid|FlagWrite|FlagUser|FlagCached); err != nil {
		as.fa.Free(frame)
		return err
	}
	as.mu.Lock()
	as.owned[page] = frame
	as.mu.Unlock()
	as.demandFaults.Add(1)
	return nil
}

// inStack reports whether va falls in the demand-paged stack region.
func (as *AddressSpace) inStack(va uint64) bool {
	as.mu.Lock()
	defer as.mu.Unlock()
	if as.stackTop == 0 {
		return false
	}
	low := as.stackTop - uint64(as.stackMax)*PageSize
	return va >= low && va < as.stackTop
}

// HandleFault resolves a translation or permission fault at va. It
// implements Prototype 3's policy: demand-page the stack, break COW on
// write, and terminate tasks that fault repeatedly at one address.
func (as *AddressSpace) HandleFault(va uint64, write bool) error {
	page := va &^ uint64(PageSize-1)
	as.mu.Lock()
	as.faults[page]++
	n := as.faults[page]
	as.mu.Unlock()
	if n >= faultStormLimit {
		return fmt.Errorf("%w: va %#x faulted %d times", ErrFaultStorm, va, n)
	}

	e, mapped := as.pt.Lookup(page)
	switch {
	case !mapped && as.inStack(va):
		return as.demandMap(va)
	case mapped && write && e.Flags&FlagCOW != 0:
		return as.breakCOW(page, e)
	default:
		return fmt.Errorf("%w: va %#x (write=%v)", ErrSegfault, va, write)
	}
}

// breakCOW gives the faulting space its own copy of a shared page.
func (as *AddressSpace) breakCOW(va uint64, e PTE) error {
	as.cowBreaks.Add(1)
	frame := e.PA / PageSize
	if as.fa.Refs(frame) == 1 {
		// Last sharer: just make it writable again.
		return as.pt.SetFlags(va, (e.Flags&^FlagCOW)|FlagWrite)
	}
	newFrame, err := as.fa.Alloc()
	if err != nil {
		return err
	}
	copy(as.fa.mem.Frame(newFrame), as.fa.mem.Frame(frame))
	if err := as.pt.SetPA(va, newFrame*PageSize); err != nil {
		as.fa.Free(newFrame)
		return err
	}
	if err := as.pt.SetFlags(va, (e.Flags&^FlagCOW)|FlagWrite); err != nil {
		return err
	}
	as.mu.Lock()
	as.owned[va] = newFrame
	as.mu.Unlock()
	as.fa.Free(frame) // drop our reference to the shared frame
	return nil
}

// Fork clones the address space for fork(). With cow=false every private
// page is eagerly copied (Proto's fork — the reason Figure 9 shows it 17×
// slower than Linux); with cow=true pages are shared read-only and copied
// on write (the production-OS baseline).
func (as *AddressSpace) Fork(cow bool) (*AddressSpace, error) {
	child := NewAddressSpace(as.fa)
	as.mu.Lock()
	child.heapBase, child.heapBrk = as.heapBase, as.heapBrk
	child.stackTop, child.stackMax = as.stackTop, as.stackMax
	as.mu.Unlock()

	var copyErr error
	as.pt.VisitPages(func(va uint64, e PTE) {
		if copyErr != nil {
			return
		}
		as.mu.Lock()
		frame, ownedByUs := as.owned[va]
		as.mu.Unlock()
		if !ownedByUs {
			// Shared/device mapping (framebuffer): map the same PA.
			copyErr = child.pt.Map(va, e.PA, e.Flags&^FlagValid)
			return
		}
		if cow {
			// Share the frame read-only in both spaces.
			as.fa.Ref(frame)
			newFlags := (e.Flags &^ (FlagWrite | FlagValid)) | FlagCOW
			if err := child.pt.Map(va, e.PA, newFlags); err != nil {
				copyErr = err
				return
			}
			child.mu.Lock()
			child.owned[va] = frame
			child.mu.Unlock()
			if e.Flags&FlagWrite != 0 {
				if err := as.pt.SetFlags(va, (e.Flags&^FlagWrite)|FlagCOW); err != nil {
					copyErr = err
				}
			}
			return
		}
		// Eager copy.
		newFrame, err := as.fa.Alloc()
		if err != nil {
			copyErr = err
			return
		}
		copy(as.fa.mem.Frame(newFrame), as.fa.mem.Frame(frame))
		if err := child.pt.Map(va, newFrame*PageSize, e.Flags&^FlagValid); err != nil {
			as.fa.Free(newFrame)
			copyErr = err
			return
		}
		child.mu.Lock()
		child.owned[va] = newFrame
		child.mu.Unlock()
	})
	if copyErr != nil {
		child.Release()
		return nil, copyErr
	}
	return child, nil
}

// access performs a user-mode load or store of len(buf) bytes at va,
// walking the page table page by page and taking faults as hardware would.
func (as *AddressSpace) access(va uint64, buf []byte, write bool) error {
	off := 0
	retries := 0
	for off < len(buf) {
		cur := va + uint64(off)
		pa, flags, ok := as.pt.Translate(cur)
		if !ok || (write && flags&FlagWrite == 0) {
			retries++
			if retries > accessRetryLimit {
				return fmt.Errorf("%w: access at %#x", ErrFaultStorm, cur)
			}
			if err := as.HandleFault(cur, write); err != nil {
				return err
			}
			continue // retry the access, as the CPU would
		}
		retries = 0
		if flags&FlagUser == 0 {
			return fmt.Errorf("%w: EL0 access to kernel page %#x", ErrSegfault, cur)
		}
		pageEnd := (cur | uint64(PageSize-1)) + 1
		n := int(pageEnd - cur)
		if n > len(buf)-off {
			n = len(buf) - off
		}
		phys := as.fa.mem.Bytes(pa, n)
		if write {
			copy(phys, buf[off:off+n])
		} else {
			copy(buf[off:off+n], phys)
		}
		off += n
	}
	return nil
}

// ReadAt loads len(buf) bytes from user va.
func (as *AddressSpace) ReadAt(va uint64, buf []byte) error { return as.access(va, buf, false) }

// WriteAt stores buf at user va.
func (as *AddressSpace) WriteAt(va uint64, buf []byte) error { return as.access(va, buf, true) }

// Stats reports fault activity.
func (as *AddressSpace) Stats() (demandFaults, cowBreaks int64, pages int) {
	return as.demandFaults.Load(), as.cowBreaks.Load(), as.pt.Pages()
}

// OwnedPages reports how many frames this space owns (memory accounting).
func (as *AddressSpace) OwnedPages() int {
	as.mu.Lock()
	defer as.mu.Unlock()
	return len(as.owned)
}
