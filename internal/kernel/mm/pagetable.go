package mm

import (
	"errors"
	"fmt"
	"sync"

	"protosim/internal/hw"
)

// PTEFlags carry the permission and attribute bits Proto's page tables use.
type PTEFlags uint8

// Flag bits.
const (
	FlagValid  PTEFlags = 1 << iota
	FlagWrite           // writable
	FlagUser            // EL0-accessible
	FlagCached          // normal cached memory (framebuffer wants this!)
	FlagCOW             // shared copy-on-write frame; write faults copy
	FlagDevice          // device memory (IO registers, uncached)
)

// KernelBase is the bottom of kernel virtual addresses: Proto prefixes
// kernel space with 0xffff (§3).
const KernelBase = uint64(0xffff_0000_0000_0000)

// BlockSize is the kernel's coarse mapping granularity (1 MB).
const BlockSize = hw.BlockSize

// Errors from mapping operations.
var (
	ErrMapped    = errors.New("mm: address already mapped")
	ErrNotMapped = errors.New("mm: address not mapped")
	ErrAlignment = errors.New("mm: misaligned address")
)

// PTE is one translation entry.
type PTE struct {
	PA    int
	Flags PTEFlags
}

// l1slot is one 1 MB region: either a block mapping or a table of 4 KB
// pages — the exact two granularities Proto uses (1 MB kernel blocks, 4 KB
// user pages).
type l1slot struct {
	block *PTE
	l2    []PTE // BlockSize/PageSize entries, indexed by page within block
}

// PageTable is one address space's translation table. It is structured
// like the two-granularity ARMv8 setup the paper describes rather than a
// flat map, so table walks, block vs page conflicts, and unmap bookkeeping
// behave faithfully.
type PageTable struct {
	mu    sync.RWMutex
	slots map[uint64]*l1slot // key: va / BlockSize
	pages int                // live 4 KB mappings
}

// NewPageTable returns an empty table.
func NewPageTable() *PageTable {
	return &PageTable{slots: make(map[uint64]*l1slot)}
}

// MapBlock installs a 1 MB block mapping (kernel linear map, IO windows).
func (pt *PageTable) MapBlock(va uint64, pa int, flags PTEFlags) error {
	if va%BlockSize != 0 || pa%BlockSize != 0 {
		return ErrAlignment
	}
	pt.mu.Lock()
	defer pt.mu.Unlock()
	key := va / BlockSize
	if pt.slots[key] != nil {
		return fmt.Errorf("%w: block at %#x", ErrMapped, va)
	}
	pt.slots[key] = &l1slot{block: &PTE{PA: pa, Flags: flags | FlagValid}}
	return nil
}

// Map installs a 4 KB page mapping.
func (pt *PageTable) Map(va uint64, pa int, flags PTEFlags) error {
	if va%PageSize != 0 || pa%PageSize != 0 {
		return ErrAlignment
	}
	pt.mu.Lock()
	defer pt.mu.Unlock()
	key := va / BlockSize
	slot := pt.slots[key]
	if slot == nil {
		slot = &l1slot{l2: make([]PTE, BlockSize/PageSize)}
		pt.slots[key] = slot
	}
	if slot.block != nil {
		return fmt.Errorf("%w: page %#x inside block mapping", ErrMapped, va)
	}
	idx := (va % BlockSize) / PageSize
	if slot.l2[idx].Flags&FlagValid != 0 {
		return fmt.Errorf("%w: page at %#x", ErrMapped, va)
	}
	slot.l2[idx] = PTE{PA: pa, Flags: flags | FlagValid}
	pt.pages++
	return nil
}

// Unmap removes a 4 KB mapping, returning its old entry.
func (pt *PageTable) Unmap(va uint64) (PTE, error) {
	if va%PageSize != 0 {
		return PTE{}, ErrAlignment
	}
	pt.mu.Lock()
	defer pt.mu.Unlock()
	slot := pt.slots[va/BlockSize]
	if slot == nil || slot.block != nil {
		return PTE{}, fmt.Errorf("%w: %#x", ErrNotMapped, va)
	}
	idx := (va % BlockSize) / PageSize
	e := slot.l2[idx]
	if e.Flags&FlagValid == 0 {
		return PTE{}, fmt.Errorf("%w: %#x", ErrNotMapped, va)
	}
	slot.l2[idx] = PTE{}
	pt.pages--
	return e, nil
}

// SetFlags rewrites the flags of an existing 4 KB mapping (COW break).
func (pt *PageTable) SetFlags(va uint64, flags PTEFlags) error {
	pt.mu.Lock()
	defer pt.mu.Unlock()
	slot := pt.slots[va/BlockSize]
	if slot == nil || slot.block != nil {
		return fmt.Errorf("%w: %#x", ErrNotMapped, va)
	}
	idx := (va % BlockSize) / PageSize
	if slot.l2[idx].Flags&FlagValid == 0 {
		return fmt.Errorf("%w: %#x", ErrNotMapped, va)
	}
	slot.l2[idx].Flags = flags | FlagValid
	return nil
}

// SetPA rewrites the physical address of an existing mapping (COW copy).
func (pt *PageTable) SetPA(va uint64, pa int) error {
	pt.mu.Lock()
	defer pt.mu.Unlock()
	slot := pt.slots[va/BlockSize]
	if slot == nil || slot.block != nil {
		return fmt.Errorf("%w: %#x", ErrNotMapped, va)
	}
	idx := (va % BlockSize) / PageSize
	if slot.l2[idx].Flags&FlagValid == 0 {
		return fmt.Errorf("%w: %#x", ErrNotMapped, va)
	}
	slot.l2[idx].PA = pa
	return nil
}

// Translate walks the table: returns the physical address for va and the
// entry's flags. ok is false on a translation fault.
func (pt *PageTable) Translate(va uint64) (pa int, flags PTEFlags, ok bool) {
	pt.mu.RLock()
	defer pt.mu.RUnlock()
	slot := pt.slots[va/BlockSize]
	if slot == nil {
		return 0, 0, false
	}
	if slot.block != nil {
		return slot.block.PA + int(va%BlockSize), slot.block.Flags, true
	}
	idx := (va % BlockSize) / PageSize
	e := slot.l2[idx]
	if e.Flags&FlagValid == 0 {
		return 0, 0, false
	}
	return e.PA + int(va%PageSize), e.Flags, true
}

// Lookup returns the 4 KB PTE covering va (not blocks).
func (pt *PageTable) Lookup(va uint64) (PTE, bool) {
	pt.mu.RLock()
	defer pt.mu.RUnlock()
	slot := pt.slots[va/BlockSize]
	if slot == nil || slot.block != nil {
		return PTE{}, false
	}
	e := slot.l2[(va%BlockSize)/PageSize]
	return e, e.Flags&FlagValid != 0
}

// Pages counts live 4 KB mappings.
func (pt *PageTable) Pages() int {
	pt.mu.RLock()
	defer pt.mu.RUnlock()
	return pt.pages
}

// VisitPages calls fn for every 4 KB mapping (fork copies use this).
func (pt *PageTable) VisitPages(fn func(va uint64, e PTE)) {
	pt.mu.RLock()
	type pair struct {
		va uint64
		e  PTE
	}
	var all []pair
	for key, slot := range pt.slots {
		if slot.block != nil {
			continue
		}
		for i, e := range slot.l2 {
			if e.Flags&FlagValid != 0 {
				all = append(all, pair{key*BlockSize + uint64(i)*PageSize, e})
			}
		}
	}
	pt.mu.RUnlock()
	for _, p := range all {
		fn(p.va, p.e)
	}
}
