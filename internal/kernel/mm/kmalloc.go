package mm

import (
	"errors"
	"fmt"
	"sort"
	"sync"
)

// ErrKAllocExhausted is returned when the kmalloc arena is full.
var ErrKAllocExhausted = errors.New("mm: kmalloc arena exhausted")

// KAlloc is the byte-granular kernel allocator Prototypes 4–5 add on top of
// the page allocator (Table 1 footnote 6: "kmalloc"). It is a first-fit
// free-list allocator over a physical arena, with coalescing on free —
// deliberately simple, like Proto's.
type KAlloc struct {
	base int // physical base of the arena
	size int

	mu    sync.Mutex
	free  []span      // sorted by offset, coalesced
	used  map[int]int // offset -> length
	inUse int
	peak  int
}

type span struct{ off, len int }

// NewKAlloc manages the physical range [base, base+size).
func NewKAlloc(base, size int) *KAlloc {
	if size <= 0 {
		panic("mm: kmalloc arena must be non-empty")
	}
	return &KAlloc{
		base: base,
		size: size,
		free: []span{{0, size}},
		used: make(map[int]int),
	}
}

const kallocAlign = 16

// Alloc returns the physical address of an n-byte region (16-aligned).
func (k *KAlloc) Alloc(n int) (int, error) {
	if n <= 0 {
		return 0, fmt.Errorf("mm: kmalloc of %d bytes", n)
	}
	n = (n + kallocAlign - 1) &^ (kallocAlign - 1)
	k.mu.Lock()
	defer k.mu.Unlock()
	for i, s := range k.free {
		if s.len < n {
			continue
		}
		off := s.off
		if s.len == n {
			k.free = append(k.free[:i], k.free[i+1:]...)
		} else {
			k.free[i] = span{s.off + n, s.len - n}
		}
		k.used[off] = n
		k.inUse += n
		if k.inUse > k.peak {
			k.peak = k.inUse
		}
		return k.base + off, nil
	}
	return 0, ErrKAllocExhausted
}

// Free releases a region previously returned by Alloc. Freeing an unknown
// address panics: that bug class must be loud in a kernel.
func (k *KAlloc) Free(pa int) {
	off := pa - k.base
	k.mu.Lock()
	defer k.mu.Unlock()
	n, ok := k.used[off]
	if !ok {
		panic(fmt.Sprintf("mm: kfree of unallocated %#x", pa))
	}
	delete(k.used, off)
	k.inUse -= n
	k.free = append(k.free, span{off, n})
	sort.Slice(k.free, func(i, j int) bool { return k.free[i].off < k.free[j].off })
	// Coalesce neighbours.
	out := k.free[:1]
	for _, s := range k.free[1:] {
		last := &out[len(out)-1]
		if last.off+last.len == s.off {
			last.len += s.len
		} else {
			out = append(out, s)
		}
	}
	k.free = out
}

// InUse returns currently allocated bytes.
func (k *KAlloc) InUse() int {
	k.mu.Lock()
	defer k.mu.Unlock()
	return k.inUse
}

// Peak returns the high-water mark.
func (k *KAlloc) Peak() int {
	k.mu.Lock()
	defer k.mu.Unlock()
	return k.peak
}

// LargestFree returns the biggest allocatable request (fragmentation probe).
func (k *KAlloc) LargestFree() int {
	k.mu.Lock()
	defer k.mu.Unlock()
	max := 0
	for _, s := range k.free {
		if s.len > max {
			max = s.len
		}
	}
	return max
}
