package bcache

import (
	"bytes"
	"sync"
	"testing"
	"time"

	"protosim/internal/kernel/fs"
	"protosim/internal/kernel/sched"
)

func newCache(t *testing.T, blocks, bufs int) (*Cache, *fs.Ramdisk) {
	t.Helper()
	rd := fs.NewRamdisk(512, blocks)
	return New(rd, bufs), rd
}

// cmdDev wraps a device and records every command (lba, blocks) so tests
// can assert coalescing and ordering, not just byte counts.
type cmdDev struct {
	fs.BlockDevice
	mu     sync.Mutex
	reads  [][2]int
	writes [][2]int
}

func (d *cmdDev) ReadBlocks(lba, n int, dst []byte) error {
	d.mu.Lock()
	d.reads = append(d.reads, [2]int{lba, n})
	d.mu.Unlock()
	return d.BlockDevice.ReadBlocks(lba, n, dst)
}

func (d *cmdDev) WriteBlocks(lba, n int, src []byte) error {
	d.mu.Lock()
	d.writes = append(d.writes, [2]int{lba, n})
	d.mu.Unlock()
	return d.BlockDevice.WriteBlocks(lba, n, src)
}

func (d *cmdDev) writeCmds() [][2]int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return append([][2]int(nil), d.writes...)
}

func (d *cmdDev) readCmds() [][2]int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return append([][2]int(nil), d.reads...)
}

func TestHitAvoidsDeviceRead(t *testing.T) {
	c, rd := newCache(t, 16, 4)
	b, err := c.Get(nil, 3)
	if err != nil {
		t.Fatal(err)
	}
	c.Release(b)
	r0, _ := rd.Stats()
	b2, _ := c.Get(nil, 3)
	c.Release(b2)
	r1, _ := rd.Stats()
	if r1 != r0 {
		t.Fatal("cache hit still read the device")
	}
	hits, misses, _, _ := c.Stats()
	if hits != 1 || misses != 1 {
		t.Fatalf("hits=%d misses=%d", hits, misses)
	}
}

func TestDirtyWritebackOnEviction(t *testing.T) {
	c, rd := newCache(t, 16, 2)
	b, _ := c.Get(nil, 0)
	b.Data[0] = 0xAB
	c.MarkDirty(b)
	c.Release(b)
	// Evict block 0 by touching two other blocks (0 and 2 share a shard).
	for lba := 1; lba <= 2; lba++ {
		b, _ := c.Get(nil, lba)
		c.Release(b)
	}
	// The write must have reached the device.
	raw := make([]byte, 512)
	rd.ReadBlocks(0, 1, raw)
	if raw[0] != 0xAB {
		t.Fatal("dirty block lost on eviction")
	}
}

func TestFlushWritesAllDirty(t *testing.T) {
	c, rd := newCache(t, 16, 8)
	for lba := 0; lba < 4; lba++ {
		b, _ := c.Get(nil, lba)
		b.Data[0] = byte(0x10 + lba)
		c.MarkDirty(b)
		c.Release(b)
	}
	if err := c.Flush(nil); err != nil {
		t.Fatal(err)
	}
	raw := make([]byte, 512)
	for lba := 0; lba < 4; lba++ {
		rd.ReadBlocks(lba, 1, raw)
		if raw[0] != byte(0x10+lba) {
			t.Fatalf("block %d not flushed", lba)
		}
	}
}

func TestNoAliasingOfSameBlock(t *testing.T) {
	// Two tasks getting the same block must converge on one buffer.
	s := sched.New(sched.Config{Cores: 2})
	s.Start()
	defer s.Shutdown(5 * time.Second)
	c, _ := newCache(t, 16, 4)

	var mu sync.Mutex
	var bufs []*Buf
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		s.Go("getter", 0, func(t *sched.Task) {
			defer wg.Done()
			b, err := c.Get(t, 7)
			if err != nil {
				return
			}
			mu.Lock()
			bufs = append(bufs, b)
			mu.Unlock()
			t.SleepFor(time.Millisecond)
			c.Release(b)
		})
	}
	wg.Wait()
	if len(bufs) != 2 || bufs[0] != bufs[1] {
		t.Fatalf("same block served by different buffers: %p %p", bufs[0], bufs[1])
	}
}

// TestAllBuffersReferencedWaits pins the exhaustion contract the per-inode
// locking era needs: a Get that finds every buffer pinned backs off and
// waits for capacity instead of failing — concurrent range claims from
// independent files make transient exhaustion routine, and it always
// clears because claims are transient.
func TestAllBuffersReferencedWaits(t *testing.T) {
	c, _ := newCache(t, 16, 2)
	b0, _ := c.Get(nil, 0)
	b1, _ := c.Get(nil, 1)
	got := make(chan *Buf)
	go func() {
		b, err := c.Get(nil, 2) // must wait, not error
		if err != nil {
			t.Error(err)
		}
		got <- b
	}()
	select {
	case <-got:
		t.Fatal("Get returned while every buffer was referenced")
	case <-time.After(20 * time.Millisecond):
	}
	c.Release(b0)
	c.Release(b1)
	select {
	case b := <-got:
		if b == nil {
			t.Fatal("Get failed after capacity freed")
		}
		c.Release(b)
	case <-time.After(5 * time.Second):
		t.Fatal("Get still blocked after buffers were released")
	}
}

// TestConcurrentClaimsOverTinyPool floods a pool far smaller than the
// combined claim demand with overlapping range IO from many goroutines —
// the shape per-inode locking produces. Release-before-retry must keep it
// live (no resource deadlock, no spurious errors) and end coherent.
func TestConcurrentClaimsOverTinyPool(t *testing.T) {
	rd := fs.NewRamdisk(512, 256)
	c := NewWithOptions(rd, Options{Buffers: 8, Shards: 2, Readahead: -1})
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			base := w * 32
			src := make([]byte, 4*512)
			for i := range src {
				src[i] = byte(w)
			}
			dst := make([]byte, 4*512)
			for r := 0; r < 30; r++ {
				if err := c.WriteRange(nil, base+(r%8)*4, 4, src); err != nil {
					t.Errorf("w%d write: %v", w, err)
					return
				}
				if err := c.ReadRange(nil, base+(r%8)*4, 4, dst); err != nil {
					t.Errorf("w%d read: %v", w, err)
					return
				}
				for i, b := range dst {
					if b != byte(w) {
						t.Errorf("w%d byte %d = %d, ranges bled", w, i, b)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
}

func TestLRUEvictsOldest(t *testing.T) {
	// Single shard so the LRU order is observable.
	rd := fs.NewRamdisk(512, 16)
	c := NewWithOptions(rd, Options{Buffers: 3, Shards: 1, Readahead: -1})
	for lba := 0; lba < 3; lba++ {
		b, _ := c.Get(nil, lba)
		c.Release(b)
	}
	// Touch 0 to refresh it, then force one eviction.
	b, _ := c.Get(nil, 0)
	c.Release(b)
	b, _ = c.Get(nil, 9)
	c.Release(b)
	// Block 0 should still hit; block 1 (oldest) was evicted.
	h0, _, _, _ := c.Stats()
	b, _ = c.Get(nil, 0)
	c.Release(b)
	h1, _, _, _ := c.Stats()
	if h1 != h0+1 {
		t.Fatal("recently used block was evicted")
	}
}

// --- range operations ---

// fillPattern stamps every device block with a recognizable pattern.
func fillPattern(t *testing.T, rd *fs.Ramdisk) {
	t.Helper()
	blk := make([]byte, 512)
	for lba := 0; lba < rd.Blocks(); lba++ {
		for i := range blk {
			blk[i] = byte(lba ^ i)
		}
		if err := rd.WriteBlocks(lba, 1, blk); err != nil {
			t.Fatal(err)
		}
	}
}

func checkPattern(t *testing.T, lba int, data []byte) {
	t.Helper()
	for i, got := range data {
		want := byte((lba + i/512) ^ (i % 512))
		if got != want {
			t.Fatalf("block %d byte %d: got %#x want %#x", lba+i/512, i%512, got, want)
		}
	}
}

func TestRangeReadSpansShards(t *testing.T) {
	rd := fs.NewRamdisk(512, 64)
	fillPattern(t, rd)
	c := NewWithOptions(rd, Options{Buffers: 32, Shards: 4, Readahead: -1})
	// 24 blocks starting at 5: crosses every shard several times.
	dst := make([]byte, 24*512)
	if err := c.ReadRange(nil, 5, 24, dst); err != nil {
		t.Fatal(err)
	}
	checkPattern(t, 5, dst)
	// Seed a few blocks as cache hits mid-range, then re-read: content
	// identical, mixing cached and device blocks.
	dst2 := make([]byte, 24*512)
	if err := c.ReadRange(nil, 5, 24, dst2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(dst, dst2) {
		t.Fatal("warm range read returned different data")
	}
}

func TestRangeReadWarmServedFromCache(t *testing.T) {
	rd := fs.NewRamdisk(512, 64)
	fillPattern(t, rd)
	c := NewWithOptions(rd, Options{Buffers: 32, Shards: 4, Readahead: -1})
	dst := make([]byte, 16*512)
	if err := c.ReadRange(nil, 0, 16, dst); err != nil {
		t.Fatal(err)
	}
	r0, _ := rd.Stats()
	if err := c.ReadRange(nil, 0, 16, dst); err != nil {
		t.Fatal(err)
	}
	r1, _ := rd.Stats()
	if r1 != r0 {
		t.Fatalf("warm range read hit the device: %d -> %d block reads", r0, r1)
	}
}

func TestRangeReadCoalescesMisses(t *testing.T) {
	rd := fs.NewRamdisk(512, 64)
	fillPattern(t, rd)
	dev := &cmdDev{BlockDevice: rd}
	c := NewWithOptions(dev, Options{Buffers: 32, Shards: 4, Readahead: -1})
	dst := make([]byte, 16*512)
	if err := c.ReadRange(nil, 0, 16, dst); err != nil {
		t.Fatal(err)
	}
	if cmds := dev.readCmds(); len(cmds) != 1 || cmds[0] != [2]int{0, 16} {
		t.Fatalf("cold 16-block range read issued %v, want one [0 16] command", cmds)
	}
}

func TestRangeWriteThroughAndCoherent(t *testing.T) {
	rd := fs.NewRamdisk(512, 64)
	dev := &cmdDev{BlockDevice: rd}
	c := NewWithOptions(dev, Options{Buffers: 32, Shards: 4, Readahead: -1, Policy: WritePolicyThrough})
	src := make([]byte, 10*512)
	for i := range src {
		src[i] = byte(i * 7)
	}
	if err := c.WriteRange(nil, 3, 10, src); err != nil {
		t.Fatal(err)
	}
	// One batched device command.
	if cmds := dev.writeCmds(); len(cmds) != 1 || cmds[0] != [2]int{3, 10} {
		t.Fatalf("range write issued %v, want one [3 10] command", cmds)
	}
	// Device holds the data.
	raw := make([]byte, 10*512)
	rd.ReadBlocks(3, 10, raw)
	if !bytes.Equal(raw, src) {
		t.Fatal("device missing range-written data")
	}
	// Cache holds it too: reading back performs no device reads.
	r0, _ := rd.Stats()
	dst := make([]byte, 10*512)
	if err := c.ReadRange(nil, 3, 10, dst); err != nil {
		t.Fatal(err)
	}
	r1, _ := rd.Stats()
	if !bytes.Equal(dst, src) {
		t.Fatal("cache returned wrong data after range write")
	}
	if r1 != r0 {
		t.Fatal("read after range write went to the device")
	}
}

func TestRangeWriteUpdatesDirtyBuffer(t *testing.T) {
	rd := fs.NewRamdisk(512, 64)
	c := NewWithOptions(rd, Options{Buffers: 16, Shards: 4, Readahead: -1, Policy: WritePolicyThrough})
	b, _ := c.Get(nil, 5)
	b.Data[0] = 0xEE
	c.MarkDirty(b)
	c.Release(b)
	src := make([]byte, 512)
	src[0] = 0x11
	if err := c.WriteRange(nil, 5, 1, src); err != nil {
		t.Fatal(err)
	}
	// The overwritten buffer is clean now — Flush must write nothing.
	if err := c.Flush(nil); err != nil {
		t.Fatal(err)
	}
	b, _ = c.Get(nil, 5)
	if b.Data[0] != 0x11 {
		t.Fatalf("cached copy = %#x, want range-written 0x11", b.Data[0])
	}
	c.Release(b)
	raw := make([]byte, 512)
	rd.ReadBlocks(5, 1, raw)
	if raw[0] != 0x11 {
		t.Fatalf("device = %#x, want 0x11", raw[0])
	}
}

func TestReadaheadPopulates(t *testing.T) {
	rd := fs.NewRamdisk(512, 64)
	fillPattern(t, rd)
	c := NewWithOptions(rd, Options{Buffers: 32, Shards: 4, Readahead: 8})
	// A cold random read must NOT trigger readahead — only a request
	// that continues exactly where the previous one ended does.
	dst := make([]byte, 4*512)
	if err := c.ReadRange(nil, 0, 4, dst); err != nil {
		t.Fatal(err)
	}
	if _, _, ra := c.RangeStats(); ra != 0 {
		t.Fatalf("cold random read pulled %d readahead blocks, want 0", ra)
	}
	// The sequential continuation fires readahead behind its tail.
	if err := c.ReadRange(nil, 4, 4, dst); err != nil {
		t.Fatal(err)
	}
	checkPattern(t, 4, dst)
	if _, _, ra := c.RangeStats(); ra != 8 {
		t.Fatalf("sequential read pulled %d readahead blocks, want 8", ra)
	}
	// Blocks 8..15 must now be cache hits.
	r0, _ := rd.Stats()
	for lba := 8; lba < 16; lba++ {
		b, err := c.Get(nil, lba)
		if err != nil {
			t.Fatal(err)
		}
		checkPattern(t, lba, b.Data)
		c.Release(b)
	}
	r1, _ := rd.Stats()
	if r1 != r0 {
		t.Fatalf("reads within the readahead window hit the device (%d -> %d)", r0, r1)
	}
}

func TestFlushCoalescesContiguousRuns(t *testing.T) {
	rd := fs.NewRamdisk(512, 64)
	dev := &cmdDev{BlockDevice: rd}
	c := NewWithOptions(dev, Options{Buffers: 32, Shards: 4, Readahead: -1})
	// Dirty a contiguous run (10..20) and one isolated block (40).
	dirty := func(lba int, v byte) {
		b, err := c.Get(nil, lba)
		if err != nil {
			t.Fatal(err)
		}
		b.Data[0] = v
		c.MarkDirty(b)
		c.Release(b)
	}
	for lba := 10; lba <= 20; lba++ {
		dirty(lba, byte(lba))
	}
	dirty(40, 0x40)
	dev.mu.Lock()
	dev.writes = nil
	dev.mu.Unlock()
	if err := c.Flush(nil); err != nil {
		t.Fatal(err)
	}
	cmds := dev.writeCmds()
	if len(cmds) != 2 {
		t.Fatalf("flush issued %d write commands (%v), want 2 coalesced runs", len(cmds), cmds)
	}
	// Writeback ordering: ascending LBA, run before isolated block.
	if cmds[0] != [2]int{10, 11} || cmds[1] != [2]int{40, 1} {
		t.Fatalf("flush commands %v, want [[10 11] [40 1]]", cmds)
	}
	if c.FlushBatches() != 2 {
		t.Fatalf("FlushBatches = %d, want 2", c.FlushBatches())
	}
	// Contents landed.
	raw := make([]byte, 512)
	for lba := 10; lba <= 20; lba++ {
		rd.ReadBlocks(lba, 1, raw)
		if raw[0] != byte(lba) {
			t.Fatalf("block %d not flushed", lba)
		}
	}
	// Second flush: nothing dirty, no commands.
	dev.mu.Lock()
	dev.writes = nil
	dev.mu.Unlock()
	if err := c.Flush(nil); err != nil {
		t.Fatal(err)
	}
	if cmds := dev.writeCmds(); len(cmds) != 0 {
		t.Fatalf("idle flush issued %v", cmds)
	}
}

func TestConcurrentShardedAccess(t *testing.T) {
	// Hammer Get/Release, range reads and range writes from many
	// goroutines across all shards; run under -race. Each goroutine owns a
	// disjoint block region for writes so final contents are checkable.
	rd := fs.NewRamdisk(512, 256)
	fillPattern(t, rd)
	// Budget is comfortably above the worst-case simultaneous pin count
	// (8 workers × one 8-block claimed segment): range ops pin their
	// whole segment, so an exact-fit budget could hit pin exhaustion.
	c := NewWithOptions(rd, Options{Buffers: 128, Shards: 8, Readahead: 4})

	const workers = 8
	const perWorker = 16 // blocks owned by each worker
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			base := 64 + w*perWorker // write region, disjoint per worker
			for iter := 0; iter < 30; iter++ {
				// Single-block read-modify-write in the owned region.
				lba := base + iter%perWorker
				b, err := c.Get(nil, lba)
				if err != nil {
					t.Error(err)
					return
				}
				b.Data[0] = byte(w)
				b.Data[1] = byte(iter)
				c.MarkDirty(b)
				c.Release(b)
				// Shared read-only region [0,64): ranges spanning shards.
				dst := make([]byte, 8*512)
				start := (w*7 + iter) % 56
				if err := c.ReadRange(nil, start, 8, dst); err != nil {
					t.Error(err)
					return
				}
				checkPattern(t, start, dst)
				// Range write inside the owned region.
				src := make([]byte, 4*512)
				for i := range src {
					src[i] = byte(w ^ iter)
				}
				if err := c.WriteRange(nil, base+4, 4, src); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if err := c.Flush(nil); err != nil {
		t.Fatal(err)
	}
	// Every worker's last single-block write must be on the device.
	raw := make([]byte, 512)
	for w := 0; w < workers; w++ {
		lba := 64 + w*perWorker + 29%perWorker
		rd.ReadBlocks(lba, 1, raw)
		if raw[0] != byte(w) || raw[1] != 29 {
			t.Fatalf("worker %d block %d: got (%d,%d) want (%d,29)", w, lba, raw[0], raw[1], w)
		}
	}
}

func TestShardAndBufferAccounting(t *testing.T) {
	rd := fs.NewRamdisk(512, 64)
	c := NewWithOptions(rd, Options{Buffers: 10, Shards: 4})
	if c.Shards() != 4 {
		t.Fatalf("Shards() = %d", c.Shards())
	}
	if c.Buffers() != 10 {
		t.Fatalf("Buffers() = %d", c.Buffers())
	}
	// More shards than buffers clamps.
	c2 := NewWithOptions(rd, Options{Buffers: 3, Shards: 16})
	if c2.Shards() != 3 {
		t.Fatalf("clamped Shards() = %d", c2.Shards())
	}
}
