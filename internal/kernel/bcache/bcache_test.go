package bcache

import (
	"sync"
	"testing"
	"time"

	"protosim/internal/kernel/fs"
	"protosim/internal/kernel/sched"
)

func newCache(t *testing.T, blocks, bufs int) (*Cache, *fs.Ramdisk) {
	t.Helper()
	rd := fs.NewRamdisk(512, blocks)
	return New(rd, bufs), rd
}

func TestHitAvoidsDeviceRead(t *testing.T) {
	c, rd := newCache(t, 16, 4)
	b, err := c.Get(nil, 3)
	if err != nil {
		t.Fatal(err)
	}
	c.Release(b)
	r0, _ := rd.Stats()
	b2, _ := c.Get(nil, 3)
	c.Release(b2)
	r1, _ := rd.Stats()
	if r1 != r0 {
		t.Fatal("cache hit still read the device")
	}
	hits, misses, _, _ := c.Stats()
	if hits != 1 || misses != 1 {
		t.Fatalf("hits=%d misses=%d", hits, misses)
	}
}

func TestDirtyWritebackOnEviction(t *testing.T) {
	c, rd := newCache(t, 16, 2)
	b, _ := c.Get(nil, 0)
	b.Data[0] = 0xAB
	c.MarkDirty(b)
	c.Release(b)
	// Evict block 0 by touching two other blocks.
	for lba := 1; lba <= 2; lba++ {
		b, _ := c.Get(nil, lba)
		c.Release(b)
	}
	// The write must have reached the device.
	raw := make([]byte, 512)
	rd.ReadBlocks(0, 1, raw)
	if raw[0] != 0xAB {
		t.Fatal("dirty block lost on eviction")
	}
}

func TestFlushWritesAllDirty(t *testing.T) {
	c, rd := newCache(t, 16, 8)
	for lba := 0; lba < 4; lba++ {
		b, _ := c.Get(nil, lba)
		b.Data[0] = byte(0x10 + lba)
		c.MarkDirty(b)
		c.Release(b)
	}
	if err := c.Flush(nil); err != nil {
		t.Fatal(err)
	}
	raw := make([]byte, 512)
	for lba := 0; lba < 4; lba++ {
		rd.ReadBlocks(lba, 1, raw)
		if raw[0] != byte(0x10+lba) {
			t.Fatalf("block %d not flushed", lba)
		}
	}
}

func TestNoAliasingOfSameBlock(t *testing.T) {
	// Two tasks getting the same block must converge on one buffer.
	s := sched.New(sched.Config{Cores: 2})
	s.Start()
	defer s.Shutdown(5 * time.Second)
	c, _ := newCache(t, 16, 4)

	var mu sync.Mutex
	var bufs []*Buf
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		s.Go("getter", 0, func(t *sched.Task) {
			defer wg.Done()
			b, err := c.Get(t, 7)
			if err != nil {
				return
			}
			mu.Lock()
			bufs = append(bufs, b)
			mu.Unlock()
			t.SleepFor(time.Millisecond)
			c.Release(b)
		})
	}
	wg.Wait()
	if len(bufs) != 2 || bufs[0] != bufs[1] {
		t.Fatalf("same block served by different buffers: %p %p", bufs[0], bufs[1])
	}
}

func TestAllBuffersReferencedFails(t *testing.T) {
	c, _ := newCache(t, 16, 2)
	b0, _ := c.Get(nil, 0)
	b1, _ := c.Get(nil, 1)
	if _, err := c.Get(nil, 2); err == nil {
		t.Fatal("expected buffer exhaustion")
	}
	c.Release(b0)
	c.Release(b1)
	if b, err := c.Get(nil, 2); err != nil {
		t.Fatal(err)
	} else {
		c.Release(b)
	}
}

func TestLRUEvictsOldest(t *testing.T) {
	c, _ := newCache(t, 16, 3)
	for lba := 0; lba < 3; lba++ {
		b, _ := c.Get(nil, lba)
		c.Release(b)
	}
	// Touch 0 to refresh it, then force one eviction.
	b, _ := c.Get(nil, 0)
	c.Release(b)
	b, _ = c.Get(nil, 9)
	c.Release(b)
	// Block 0 should still hit; block 1 (oldest) was evicted.
	h0, _, _, _ := c.Stats()
	b, _ = c.Get(nil, 0)
	c.Release(b)
	h1, _, _, _ := c.Stats()
	if h1 != h0+1 {
		t.Fatal("recently used block was evicted")
	}
}
