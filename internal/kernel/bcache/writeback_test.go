package bcache

import (
	"bytes"
	"errors"
	"sync"
	"testing"
	"time"

	"protosim/internal/kernel/blkq"
	"protosim/internal/kernel/fs"
)

// TestWriteBehindDefersDevice pins the write-behind contract: WriteRange
// returns with the device untouched, a read hits the cached copy, and the
// Flush barrier makes it durable.
func TestWriteBehindDefersDevice(t *testing.T) {
	rd := fs.NewRamdisk(512, 64)
	c := NewWithOptions(rd, Options{Buffers: 32, Shards: 4, Readahead: -1})
	if !c.WriteBehind() {
		t.Fatal("write-behind is not the default policy")
	}
	src := make([]byte, 8*512)
	for i := range src {
		src[i] = byte(i * 3)
	}
	if err := c.WriteRange(nil, 4, 8, src); err != nil {
		t.Fatal(err)
	}
	if _, w := rd.Stats(); w != 0 {
		t.Fatalf("write-behind WriteRange issued %d device block writes", w)
	}
	if d := c.DirtyBuffers(); d != 8 {
		t.Fatalf("DirtyBuffers = %d, want 8", d)
	}
	dst := make([]byte, 8*512)
	if err := c.ReadRange(nil, 4, 8, dst); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(dst, src) {
		t.Fatal("cached read after write-behind returned wrong data")
	}
	if err := c.Flush(nil); err != nil {
		t.Fatal(err)
	}
	if d := c.DirtyBuffers(); d != 0 {
		t.Fatalf("DirtyBuffers = %d after Flush, want 0", d)
	}
	raw := make([]byte, 8*512)
	rd.ReadBlocks(4, 8, raw)
	if !bytes.Equal(raw, src) {
		t.Fatal("Flush barrier did not make the write durable")
	}
}

// TestRewriteAbsorbed is the perf contract the write-heavy benchmark
// leans on: rewriting a still-dirty block costs no extra device traffic —
// N overwrites flush as one block write.
func TestRewriteAbsorbed(t *testing.T) {
	rd := fs.NewRamdisk(512, 16)
	c := NewWithOptions(rd, Options{Buffers: 8, Shards: 1, Readahead: -1})
	src := make([]byte, 512)
	for round := 0; round < 10; round++ {
		src[0] = byte(round)
		if err := c.WriteRange(nil, 3, 1, src); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Flush(nil); err != nil {
		t.Fatal(err)
	}
	if _, w := rd.Stats(); w != 1 {
		t.Fatalf("10 rewrites flushed as %d block writes, want 1", w)
	}
	raw := make([]byte, 512)
	rd.ReadBlocks(3, 1, raw)
	if raw[0] != 9 {
		t.Fatalf("device holds round %d, want the last round 9", raw[0])
	}
}

// flakyRD injects write errors on demand.
type flakyRD struct {
	*fs.Ramdisk
	mu   sync.Mutex
	fail int
}

var errWB = errors.New("flaky: injected writeback error")

func (d *flakyRD) WriteBlocks(lba, n int, src []byte) error {
	d.mu.Lock()
	if d.fail > 0 {
		d.fail--
		d.mu.Unlock()
		return errWB
	}
	d.mu.Unlock()
	return d.Ramdisk.WriteBlocks(lba, n, src)
}

// TestDaemonWritebackErrorSurfacesAtSync is the async error-propagation
// contract: an error in a daemon writeback pass — which no caller waits
// on — must surface at the NEXT Flush (the fsync path), even though the
// retry that Flush performs succeeds; and the failed buffer must stay
// dirty until a writeback lands, so the data is never silently dropped.
func TestDaemonWritebackErrorSurfacesAtSync(t *testing.T) {
	dev := &flakyRD{Ramdisk: fs.NewRamdisk(512, 64)}
	c := NewWithOptions(dev, Options{Buffers: 16, Shards: 2, Readahead: -1,
		FlushInterval: 5 * time.Millisecond})
	go c.RunDaemon(nil, nil)
	defer c.StopDaemon()

	dev.mu.Lock()
	dev.fail = 1
	dev.mu.Unlock()
	src := make([]byte, 512)
	src[0] = 0x5A
	if err := c.WriteRange(nil, 7, 1, src); err != nil {
		t.Fatal(err)
	}
	c.kickDaemon()
	deadline := time.Now().Add(5 * time.Second)
	for !c.WritebackErrPending() {
		if time.Now().After(deadline) {
			t.Fatal("daemon never hit the injected write error")
		}
		time.Sleep(time.Millisecond)
	}
	// The data must still be dirty in the cache (not dropped) until a
	// later pass lands it; the injector is disarmed, so the next Flush
	// retry succeeds — and must STILL report the latched error.
	if err := c.Flush(nil); !errors.Is(err, errWB) {
		t.Fatalf("Flush after daemon write error returned %v, want %v", err, errWB)
	}
	raw := make([]byte, 512)
	dev.Ramdisk.ReadBlocks(7, 1, raw)
	if raw[0] != 0x5A {
		t.Fatal("data lost across the failed daemon writeback")
	}
	// Error reported once: the following Flush is clean.
	if err := c.Flush(nil); err != nil {
		t.Fatalf("second Flush = %v, want nil", err)
	}
}

// lbaFlakyRD injects write errors only for commands overlapping an LBA
// range — the per-owner attribution tests need to fail one file's blocks
// while another's flush cleanly.
type lbaFlakyRD struct {
	*fs.Ramdisk
	mu     sync.Mutex
	lo, hi int
	fail   int
}

func (d *lbaFlakyRD) arm(lo, hi, count int) {
	d.mu.Lock()
	d.lo, d.hi, d.fail = lo, hi, count
	d.mu.Unlock()
}

func (d *lbaFlakyRD) WriteBlocks(lba, n int, src []byte) error {
	d.mu.Lock()
	if d.fail > 0 && lba < d.hi && lba+n > d.lo {
		d.fail--
		d.mu.Unlock()
		return errWB
	}
	d.mu.Unlock()
	return d.Ramdisk.WriteBlocks(lba, n, src)
}

// TestOwnerErrSeqIsolation is the cache-level errseq contract: a daemon
// write failure on owner A's buffers advances A's stream and the
// device-wide stream, never B's. Observation is per-cursor — each
// descriptor-style observer of A's stream reports the failure exactly
// once even though the flush retry succeeds, independently of every
// other observer; so does the device-wide observer (Flush); B stays
// clean throughout.
func TestOwnerErrSeqIsolation(t *testing.T) {
	dev := &lbaFlakyRD{Ramdisk: fs.NewRamdisk(512, 256)}
	c := NewWithOptions(dev, Options{Buffers: 64, Shards: 4, Readahead: -1,
		FlushInterval: 2 * time.Millisecond})
	go c.RunDaemon(nil, nil)
	defer c.StopDaemon()

	var a, b Owner
	// Two "descriptors" on A and one on B, opened before the failure:
	// each samples its own cursor, the way fs.NewOpenFile does.
	ca1, ca2, cb := a.Sample(), a.Sample(), b.Sample()
	blk := make([]byte, 4*512)
	dev.arm(8, 12, 1) // A's range fails once
	if err := c.WriteRangeOwned(nil, 8, 4, blk, &a); err != nil {
		t.Fatal(err)
	}
	if err := c.WriteRangeOwned(nil, 40, 4, blk, &b); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for !a.Pending() {
		if time.Now().After(deadline) {
			t.Fatal("daemon never hit the injected error")
		}
		time.Sleep(time.Millisecond)
	}
	if b.Pending() {
		t.Fatal("B's stream advanced on A's failure")
	}
	// B's fsync: flush clean, observation clean.
	if err := c.FlushOwner(nil, &b); err != nil {
		t.Fatalf("B's flush = %v, want nil", err)
	}
	if err := b.Observe(&cb); err != nil {
		t.Fatalf("B's observer = %v, want nil", err)
	}
	// A's fsync via the first descriptor: the flush retry succeeds, the
	// observation still reports the epoch — exactly once.
	if err := c.FlushOwner(nil, &a); err != nil {
		t.Fatalf("A's flush = %v, want nil (retry succeeded)", err)
	}
	if err := a.Observe(&ca1); !errors.Is(err, errWB) {
		t.Fatalf("A's first observer = %v, want %v", err, errWB)
	}
	if err := a.Observe(&ca1); err != nil {
		t.Fatalf("A's first observer again = %v, want nil (exactly-once)", err)
	}
	// The second descriptor's cursor was not consumed by the first.
	if err := a.Observe(&ca2); !errors.Is(err, errWB) {
		t.Fatalf("A's second observer = %v, want %v", err, errWB)
	}
	if err := a.Observe(&ca2); err != nil {
		t.Fatalf("A's second observer again = %v, want nil", err)
	}
	// A descriptor opened AFTER the epoch was reported samples the
	// current position and stays silent.
	late := a.Sample()
	if err := a.Observe(&late); err != nil {
		t.Fatalf("late observer = %v, want nil", err)
	}
	// The device-wide observer is independent: Flush still reports once.
	if err := c.Flush(nil); !errors.Is(err, errWB) {
		t.Fatalf("Flush = %v, want %v", err, errWB)
	}
	if err := c.Flush(nil); err != nil {
		t.Fatalf("second Flush = %v, want nil", err)
	}
	if c.WritebackErrPending() {
		t.Fatal("device stream still pending after its observer reported")
	}
}

// TestFlushOwnerSelective: FlushOwner writes back only the owner's
// buffers plus the caller-named extra blocks, leaving everyone else's
// dirty state for the daemon/Flush.
func TestFlushOwnerSelective(t *testing.T) {
	rd := fs.NewRamdisk(512, 256)
	c := NewWithOptions(rd, Options{Buffers: 64, Shards: 4, Readahead: -1,
		WritebackRatio: -1, FlushInterval: time.Hour})
	var a, b Owner
	blk := bytes.Repeat([]byte{0x11}, 512)
	for lba := 8; lba < 12; lba++ {
		if err := c.WriteRangeOwned(nil, lba, 1, blk, &a); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.WriteRangeOwned(nil, 40, 1, blk, &b); err != nil {
		t.Fatal(err)
	}
	if err := c.WriteRange(nil, 60, 1, blk); err != nil { // unowned "metadata"
		t.Fatal(err)
	}
	if err := c.FlushOwner(nil, &a, 60); err != nil {
		t.Fatal(err)
	}
	raw := make([]byte, 512)
	for _, lba := range []int{8, 9, 10, 11, 60} {
		rd.ReadBlocks(lba, 1, raw)
		if !bytes.Equal(raw, blk) {
			t.Fatalf("block %d not durable after FlushOwner", lba)
		}
	}
	rd.ReadBlocks(40, 1, raw)
	if bytes.Equal(raw, blk) {
		t.Fatal("FlushOwner flushed B's buffer")
	}
	if d := c.DirtyBuffers(); d != 1 {
		t.Fatalf("DirtyBuffers = %d after owner flush, want 1 (B's)", d)
	}
}

// TestDaemonFlushesByRatio checks the dirty-ratio trigger: crossing it
// wakes the daemon without waiting for the age interval.
func TestDaemonFlushesByRatio(t *testing.T) {
	rd := fs.NewRamdisk(512, 256)
	c := NewWithOptions(rd, Options{Buffers: 32, Shards: 2, Readahead: -1,
		WritebackRatio: 25, FlushInterval: time.Hour}) // interval can't fire in-test
	go c.RunDaemon(nil, nil)
	defer c.StopDaemon()

	src := make([]byte, 512)
	for lba := 0; lba < 16; lba++ { // 16 > 32*25%
		if err := c.WriteRange(nil, lba, 1, src); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for c.DirtyBuffers() > 0 {
		if time.Now().After(deadline) {
			t.Fatalf("ratio kick never flushed: %d dirty", c.DirtyBuffers())
		}
		time.Sleep(time.Millisecond)
	}
	if c.DaemonFlushes() == 0 {
		t.Fatal("no daemon pass recorded")
	}
}

// TestEvictionHandsDirtyToDaemon: with a daemon attached, a claim that
// finds only dirty victims backs off while the daemon cleans, instead of
// writing inline from the claiming task — and eventually succeeds.
func TestEvictionHandsDirtyToDaemon(t *testing.T) {
	rd := fs.NewRamdisk(512, 256)
	c := NewWithOptions(rd, Options{Buffers: 8, Shards: 1, Readahead: -1,
		WritebackRatio: -1, FlushInterval: 2 * time.Millisecond})
	go c.RunDaemon(nil, nil)
	defer c.StopDaemon()

	src := make([]byte, 512)
	// Dirty the whole pool, then keep claiming fresh blocks: every claim
	// must evict, every victim starts dirty, and progress depends on the
	// daemon cleaning them.
	for lba := 0; lba < 64; lba++ {
		if err := c.WriteRange(nil, lba, 1, src); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Flush(nil); err != nil {
		t.Fatal(err)
	}
}

// TestWarmRangeReadZeroAllocs asserts the pooled steady-state path: a
// warm ReadRange (claim, copy, release) allocates nothing per call.
func TestWarmRangeReadZeroAllocs(t *testing.T) {
	rd := fs.NewRamdisk(512, 64)
	fillPattern(t, rd)
	c := NewWithOptions(rd, Options{Buffers: 32, Shards: 4, Readahead: -1})
	dst := make([]byte, 16*512)
	if err := c.ReadRange(nil, 0, 16, dst); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(100, func() {
		if err := c.ReadRange(nil, 0, 16, dst); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("warm 16-block ReadRange allocates %.1f objects/op, want 0", allocs)
	}
}

// TestFlushOverQueueMergesAndIsDurable runs the barrier over a real blkq
// request queue: per-block submissions merge into multi-block device
// commands, and the barrier semantics (all durable on return) hold.
func TestFlushOverQueueMergesAndIsDurable(t *testing.T) {
	rd := fs.NewRamdisk(512, 256)
	cdev := &cmdDev{BlockDevice: rd}
	q := blkq.New(cdev, blkq.Options{Depth: 2})
	c := NewWithOptions(q, Options{Buffers: 64, Shards: 4, Readahead: -1})
	src := make([]byte, 512)
	for lba := 10; lba < 42; lba++ { // one contiguous 32-block span
		src[0] = byte(lba)
		if err := c.WriteRange(nil, lba, 1, src); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Flush(nil); err != nil {
		t.Fatal(err)
	}
	cmds := cdev.writeCmds()
	blocks := 0
	for _, cmd := range cmds {
		blocks += cmd[1]
	}
	if blocks != 32 {
		t.Fatalf("flush moved %d blocks (%v), want 32", blocks, cmds)
	}
	if len(cmds) > 4 {
		t.Fatalf("32 per-block submissions dispatched as %d device commands (%v); elevator merging missing", len(cmds), cmds)
	}
	sub, disp, merged, _, _ := q.Stats()
	if sub != 32 || merged == 0 || disp >= sub {
		t.Fatalf("queue stats submitted=%d dispatched=%d merged=%d; want merging", sub, disp, merged)
	}
	raw := make([]byte, 512)
	for lba := 10; lba < 42; lba++ {
		rd.ReadBlocks(lba, 1, raw)
		if raw[0] != byte(lba) {
			t.Fatalf("block %d not durable after Flush barrier", lba)
		}
	}
}

// TestOwnerDirtyListTracksState: the per-owner dirty list (what makes
// FlushOwner O(dirty-own) instead of a walk of every shard) must track
// buffer state exactly — grow on owned dirtying, shrink on writeback,
// eviction writeback, and ownership handoff, and ignore unowned metadata.
func TestOwnerDirtyListTracksState(t *testing.T) {
	rd := fs.NewRamdisk(512, 256)
	c := NewWithOptions(rd, Options{Buffers: 64, Shards: 4, Readahead: -1,
		WritebackRatio: -1, FlushInterval: time.Hour})
	var a, b Owner
	blk := bytes.Repeat([]byte{0x22}, 512)
	for lba := 8; lba < 12; lba++ {
		if err := c.WriteRangeOwned(nil, lba, 1, blk, &a); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.WriteRange(nil, 60, 1, blk); err != nil { // unowned
		t.Fatal(err)
	}
	if got := a.DirtyCount(); got != 4 {
		t.Fatalf("A dirty = %d, want 4", got)
	}
	// Rewriting an already-dirty owned block must not double-count.
	if err := c.WriteRangeOwned(nil, 8, 1, blk, &a); err != nil {
		t.Fatal(err)
	}
	if got := a.DirtyCount(); got != 4 {
		t.Fatalf("A dirty after rewrite = %d, want 4", got)
	}
	// Ownership handoff moves the LBA between lists.
	if err := c.WriteRangeOwned(nil, 11, 1, blk, &b); err != nil {
		t.Fatal(err)
	}
	if got, want := a.DirtyCount(), 3; got != want {
		t.Fatalf("A dirty after handoff = %d, want %d", got, want)
	}
	if got := b.DirtyCount(); got != 1 {
		t.Fatalf("B dirty = %d, want 1", got)
	}
	// FlushOwner drains exactly A's list; B's survives.
	if err := c.FlushOwner(nil, &a); err != nil {
		t.Fatal(err)
	}
	if got := a.DirtyCount(); got != 0 {
		t.Fatalf("A dirty after FlushOwner = %d, want 0", got)
	}
	if got := b.DirtyCount(); got != 1 {
		t.Fatalf("B dirty after A's flush = %d, want 1", got)
	}
	// The whole-cache barrier drains the rest.
	if err := c.Flush(nil); err != nil {
		t.Fatal(err)
	}
	if got := b.DirtyCount(); got != 0 {
		t.Fatalf("B dirty after Flush = %d, want 0", got)
	}
}
