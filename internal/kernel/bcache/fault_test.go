// Device-fault behaviour of the cache: transient read errors are
// absorbed, unwritable dirty buffers are given up (recorded, not spun
// on), and — the regression this file exists for — kflushd shuts down
// cleanly over a dead device instead of flushing the same doomed
// buffers forever.
package bcache

import (
	"bytes"
	"errors"
	"sync"
	"testing"
	"time"

	"protosim/internal/hw"
	"protosim/internal/kernel/blkq"
	"protosim/internal/kernel/fs"
)

// TestReadRetryAbsorbsTransient: a transient device read error under a
// cache miss is retried inside devRead and never reaches the caller.
func TestReadRetryAbsorbsTransient(t *testing.T) {
	rd := fs.NewRamdisk(512, 64)
	want := bytes.Repeat([]byte{0x77}, 512)
	if err := rd.WriteBlocks(5, 1, want); err != nil {
		t.Fatal(err)
	}
	fd := hw.NewFaultDisk(rd, hw.FaultPlan{Seed: 1})
	c := NewWithOptions(fd, Options{Buffers: 16, Shards: 2, Readahead: -1})
	fd.InjectTransient(5, 2)
	got := make([]byte, 512)
	if err := c.ReadRange(nil, 5, 1, got); err != nil {
		t.Fatalf("transient read error not absorbed: %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("retried read returned wrong data")
	}
	if n := c.ReadRetries(); n != 2 {
		t.Fatalf("ReadRetries = %d, want 2", n)
	}
}

// TestGiveUpAfterFailureBudget: a buffer whose writeback keeps failing
// with a retryable error is retried giveUpWrites times across flush
// passes, then abandoned — dirty bit dropped, contents still valid and
// readable, give-up counted, OnGiveUp told — so later flushes are clean
// and nothing spins.
func TestGiveUpAfterFailureBudget(t *testing.T) {
	dev := &flakyRD{Ramdisk: fs.NewRamdisk(512, 64)}
	var mu sync.Mutex
	var gaveUp []error
	c := NewWithOptions(dev, Options{Buffers: 16, Shards: 2, Readahead: -1,
		WritebackRatio: -1, FlushInterval: time.Hour,
		OnGiveUp: func(lba int, err error) {
			mu.Lock()
			gaveUp = append(gaveUp, err)
			mu.Unlock()
		}})
	dev.mu.Lock()
	dev.fail = 1 << 20 // never heals
	dev.mu.Unlock()
	want := bytes.Repeat([]byte{0x5A}, 512)
	if err := c.WriteRange(nil, 7, 1, want); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < giveUpWrites; i++ {
		if c.DirtyBuffers() != 1 {
			t.Fatalf("pass %d: buffer abandoned before its budget ran out", i)
		}
		if err := c.Flush(nil); !errors.Is(err, errWB) {
			t.Fatalf("pass %d: Flush = %v, want %v", i, err, errWB)
		}
	}
	if d := c.DirtyBuffers(); d != 0 {
		t.Fatalf("DirtyBuffers = %d after budget exhausted, want 0", d)
	}
	if n := c.GiveUps(); n != 1 {
		t.Fatalf("GiveUps = %d, want 1", n)
	}
	mu.Lock()
	if len(gaveUp) != 1 || !errors.Is(gaveUp[0], errWB) {
		t.Fatalf("OnGiveUp saw %v, want one %v", gaveUp, errWB)
	}
	mu.Unlock()
	// The abandoned data is still served from the cache (valid, clean).
	got := make([]byte, 512)
	if err := c.ReadRange(nil, 7, 1, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("give-up dropped the buffer contents")
	}
	// Nothing dirty, all epochs observed by the flushes above: clean.
	if err := c.Flush(nil); err != nil {
		t.Fatalf("Flush after give-up = %v, want nil", err)
	}
}

// TestBadSectorGivesUpImmediately: a persistent media error is fatal —
// no retry budget, one flush abandons the buffer.
func TestBadSectorGivesUpImmediately(t *testing.T) {
	fd := hw.NewFaultDisk(fs.NewRamdisk(512, 64), hw.FaultPlan{Seed: 1})
	fd.AddBadSector(9)
	var mu sync.Mutex
	var gotErr error
	c := NewWithOptions(fd, Options{Buffers: 16, Shards: 2, Readahead: -1,
		WritebackRatio: -1, FlushInterval: time.Hour,
		OnGiveUp: func(lba int, err error) {
			mu.Lock()
			gotErr = err
			mu.Unlock()
		}})
	if err := c.WriteRange(nil, 9, 1, make([]byte, 512)); err != nil {
		t.Fatal(err)
	}
	if err := c.Flush(nil); !errors.Is(err, fs.ErrBadSector) {
		t.Fatalf("Flush = %v, want ErrBadSector", err)
	}
	if d := c.DirtyBuffers(); d != 0 {
		t.Fatalf("DirtyBuffers = %d after fatal error, want 0 (immediate give-up)", d)
	}
	mu.Lock()
	defer mu.Unlock()
	if !errors.Is(gotErr, fs.ErrBadSector) {
		t.Fatalf("OnGiveUp err = %v, want ErrBadSector", gotErr)
	}
}

// TestKflushdShutdownWithDeadDevice is the hang regression: dirty
// buffers over a request queue, the device dies, and the writeback
// daemon must drain its backlog by giving the buffers up — dirty count
// reaches zero, OnGiveUp reports device death, and StopDaemon returns
// instead of waiting out a daemon that retries forever.
func TestKflushdShutdownWithDeadDevice(t *testing.T) {
	fd := hw.NewFaultDisk(fs.NewRamdisk(512, 256), hw.FaultPlan{Seed: 1})
	q := blkq.New(fd, blkq.Options{Async: fd, PlugDelay: -1})
	fd.SetNotify(func() { q.CompletionIRQ() })
	var sawDead sync.Once
	deadCh := make(chan error, 1)
	c := NewWithOptions(q, Options{Buffers: 32, Shards: 2, Readahead: -1,
		WritebackRatio: -1, FlushInterval: 2 * time.Millisecond,
		OnGiveUp: func(lba int, err error) {
			sawDead.Do(func() { deadCh <- err })
		}})
	go c.RunDaemon(nil, nil)

	src := make([]byte, 512)
	for lba := 4; lba < 12; lba++ {
		if err := c.WriteRange(nil, lba, 1, src); err != nil {
			t.Fatal(err)
		}
	}
	fd.Kill()

	deadline := time.Now().Add(10 * time.Second)
	for c.DirtyBuffers() > 0 {
		if time.Now().After(deadline) {
			t.Fatalf("daemon never gave up on the dead device: %d dirty", c.DirtyBuffers())
		}
		time.Sleep(time.Millisecond)
	}
	select {
	case err := <-deadCh:
		if !errors.Is(err, fs.ErrDeviceDead) {
			t.Fatalf("OnGiveUp err = %v, want ErrDeviceDead", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("OnGiveUp never fired")
	}

	stopped := make(chan struct{})
	go func() { c.StopDaemon(); close(stopped) }()
	select {
	case <-stopped:
	case <-time.After(10 * time.Second):
		t.Fatal("StopDaemon hung over a dead device")
	}
	if c.GiveUps() != 8 {
		t.Fatalf("GiveUps = %d, want 8", c.GiveUps())
	}
	// The deaths were recorded: the next barrier reports them, once.
	if err := c.Flush(nil); !errors.Is(err, fs.ErrDeviceDead) {
		t.Fatalf("Flush = %v, want ErrDeviceDead", err)
	}
}
