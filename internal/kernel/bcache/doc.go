// Package bcache is Proto's buffer cache: the single block-caching layer
// between every filesystem and its block device.
//
// The original xv6-inherited design — one global lock over a fixed pool of
// single-block buffers — only supported single-block Get/Release, which is
// why Prototype 5's FAT32 bypassed it entirely for multi-block range
// accesses (§5.2) and why the ROADMAP called the cache out as the hot-path
// bottleneck. This package replaces it with a sharded, range-capable,
// write-behind design.
//
// # Sharding and the single-block contract
//
// Buffers live in N shards keyed by LBA; each shard has its own lock,
// hash map, and LRU list, so cache traffic on different shards never
// contends. With the filesystems on per-inode locking, N tasks on N files
// reach N shards concurrently on a single mount. Get/MarkDirty/Release
// keep the xv6 single-block contract — per-buffer sleeplocks, identity
// (two Gets of one block converge on one buffer) — so xv6fs metadata code
// is unchanged. ReadRange/WriteRange are first-class multi-block
// operations: ReadRange serves cached blocks from memory and coalesces
// misses into single device commands (plus sequential readahead);
// WriteRange installs a whole claimed segment at once. Range operations
// are atomic per block, not across the range; callers that need
// whole-range atomicity (filesystems) serialize with their own per-inode
// locks.
//
// # Write policies
//
// WritePolicyBehind (the default): WriteRange and MarkDirty leave dirty
// buffers in the cache and return without touching the device; repeated
// writes to a still-dirty block cost one eventual writeback. The device
// catches up at daemon writeback, eviction handoff, or a Flush barrier.
// WritePolicyThrough issues every write's device command before returning
// — the synchronous baseline the paper's measurements compare against —
// and is what kernel.ModeXv6 runs.
//
// # The writeback daemon and the eviction handoff
//
// RunDaemon is the per-mount kflushd task: it flushes dirty buffers when
// the dirty count crosses Options.WritebackRatio (MarkDirty/WriteRange
// kick it) and at least every Options.FlushInterval (the age bound).
// While a daemon runs, eviction never writes back inline: a claim that
// needs a buffer takes the least-recently-used CLEAN victim, and if only
// dirty victims remain it kicks the daemon and backs off with a
// transient-full retry — a writer never stalls behind another file's
// writeback, and the daemon (not a random evictor) pays the device wait.
// Without a daemon (write-through configurations, tests), eviction of a
// dirty victim writes it back inline while the victim stays mapped and
// pinned, so a concurrent Get can never read a stale device copy.
//
// # Flush, fsync, and errseq error semantics
//
// Flush is the whole-device durability barrier (volume Sync, unmount,
// SysSync): every dirty buffer is written back — over a request queue the
// blocks are submitted asynchronously under an explicit plug and the
// elevator merges them; on a plain device contiguous runs go out one
// command each — and every completion is awaited before return.
// FlushOwner is the per-file flush (the work half of fsync): it writes
// back only the buffers tagged with one file's Owner token (plus
// caller-named metadata blocks), found through the Owner's own dirty
// list — O(dirty-own), never a walk of the shards — and submitted
// without an explicit plug: an fsync is the lone, latency-sensitive
// submitter the request queue's anticipatory plug exists for.
//
// Errors from writebacks nobody waits on (daemon passes, eviction) are
// recorded Linux-errseq-style in the owning file's Owner stream
// (errseq.Stream) and in the cache's device-wide stream, not in a
// cache-wide latch: each stream position advances on every failure and
// never rewinds, so a retried write that succeeds does not erase the
// epoch. Observation of a file's stream is per OPEN FILE DESCRIPTION,
// not per file: FlushOwner only flushes, and each fs.OpenFile observes
// its own errseq cursor afterwards — two descriptors on one inode each
// report a failure exactly once (Linux f_wb_err semantics). The
// device-wide stream keeps a single observer, Flush, so the volume
// barrier still reports every failure once. One file's fsync never
// reports another file's daemon error, and failed buffers stay dirty,
// so the data itself is never silently dropped. See the Owner type and
// package errseq for the full semantics.
package bcache
