package bcache

import (
	"testing"

	"protosim/internal/kernel/fs"
)

// TestFreezeBlocksEveryWriteback pins the journal's "nosteal" rule: a
// frozen buffer is dirty but invisible to Flush and FlushBlocks, and only
// Thaw makes it writable home again.
func TestFreezeBlocksEveryWriteback(t *testing.T) {
	c, rd := newCache(t, 64, 8)

	b, err := c.Get(nil, 5)
	if err != nil {
		t.Fatal(err)
	}
	b.Data[0] = 0xAA
	c.Freeze(b)
	if !c.Frozen(b) {
		t.Fatal("Freeze did not mark the buffer frozen")
	}
	c.Release(b)

	// Neither the full flush nor a targeted one may write it home.
	if err := c.Flush(nil); err != nil {
		t.Fatal(err)
	}
	if err := c.FlushBlocks(nil, []int{5}, true); err != nil {
		t.Fatal(err)
	}
	on := make([]byte, 512)
	if err := rd.ReadBlocks(5, 1, on); err != nil {
		t.Fatal(err)
	}
	if on[0] == 0xAA {
		t.Fatal("frozen buffer reached its home location")
	}

	// Thaw (sleeplock held, like the journal's commit) re-opens the path.
	b, err = c.Get(nil, 5)
	if err != nil {
		t.Fatal(err)
	}
	c.Thaw(b)
	if c.Frozen(b) {
		t.Fatal("Thaw did not clear the frozen mark")
	}
	c.Release(b)
	if err := c.Flush(nil); err != nil {
		t.Fatal(err)
	}
	if err := rd.ReadBlocks(5, 1, on); err != nil {
		t.Fatal(err)
	}
	if on[0] != 0xAA {
		t.Fatal("thawed buffer never written home")
	}
}

// TestFreezePinsAgainstEviction pins the reference Freeze takes: with the
// cache under heavy replacement pressure, the frozen buffer's content must
// survive untouched until Thaw.
func TestFreezePinsAgainstEviction(t *testing.T) {
	// One shard so every Get competes for the same buffer pool as the
	// frozen block — maximum replacement pressure on it.
	rd := fs.NewRamdisk(512, 128)
	c := NewWithOptions(rd, Options{Buffers: 8, Shards: 1})

	b, err := c.Get(nil, 3)
	if err != nil {
		t.Fatal(err)
	}
	b.Data[0] = 0x5A
	c.Freeze(b)
	c.Release(b)

	// Churn far more blocks than the cache holds.
	for lba := 16; lba < 48; lba++ {
		x, err := c.Get(nil, lba)
		if err != nil {
			t.Fatal(err)
		}
		c.MarkDirty(x)
		c.Release(x)
		if err := c.FlushBlocks(nil, []int{lba}, false); err != nil {
			t.Fatal(err)
		}
	}

	b, err = c.Get(nil, 3)
	if err != nil {
		t.Fatal(err)
	}
	if b.Data[0] != 0x5A || !c.Frozen(b) {
		t.Fatal("frozen buffer was evicted or recycled under pressure")
	}
	c.Thaw(b)
	c.Release(b)
}

// TestFreezeIdempotent pins that re-freezing (the journal's absorption
// path) takes one reference total: a single Thaw fully releases it.
func TestFreezeIdempotent(t *testing.T) {
	c, rd := newCache(t, 64, 8)
	b, err := c.Get(nil, 7)
	if err != nil {
		t.Fatal(err)
	}
	b.Data[0] = 0x0F
	c.Freeze(b)
	c.Freeze(b)
	c.Freeze(b)
	c.Thaw(b)
	if c.Frozen(b) {
		t.Fatal("one Thaw did not undo repeated Freezes")
	}
	c.Release(b)
	if err := c.Flush(nil); err != nil {
		t.Fatal(err)
	}
	on := make([]byte, 512)
	if err := rd.ReadBlocks(7, 1, on); err != nil {
		t.Fatal(err)
	}
	if on[0] != 0x0F {
		t.Fatal("buffer not flushable after balanced Freeze/Thaw")
	}
}
