package bcache

import (
	"errors"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"protosim/internal/kernel/errseq"
	"protosim/internal/kernel/fs"
	"protosim/internal/kernel/ksync"
	"protosim/internal/kernel/sched"
)

// errShardFull reports transient buffer exhaustion: every buffer in the
// shard is pinned by in-flight operations. It is internal — claim paths
// back off and retry, because pins are transient (a claim releases as soon
// as its device command completes), so capacity reappears on its own. The
// volume-lock era could never see this (one operation in flight per
// mount); per-inode locking makes overlapping claims routine.
var errShardFull = errors.New("bcache: all buffers in shard referenced")

// yieldRetry gives up the CPU between exhaustion retries. For a simulated
// task that MUST be the scheduler's Yield — runtime.Gosched only yields
// the host thread, not the simulated core, so a Gosched spin on a
// single-core configuration would starve the very pin-holder it is
// waiting for. Nil tasks (host contexts) spin-yield, as in SleepLock.
func yieldRetry(t *sched.Task) {
	if t != nil {
		t.Yield()
	} else {
		runtime.Gosched()
	}
}

// Defaults. DefaultBuffers is deliberately far above xv6's NBUF=30: the
// sharded cache is meant to hold working sets (a WAD plus level data, a
// FAT plus hot directory sectors), not just in-flight blocks. 4096 buffers
// is 2 MB over the 512 B SD card sectors.
const (
	DefaultBuffers   = 4096 // total buffers across all shards
	DefaultShards    = 8
	DefaultReadahead = 32 // blocks pulled in behind a sequential miss

	// Xv6Buffers reproduces xv6's NBUF for the paper's baseline mode:
	// pair it with Shards: 1 to get the original single-structure cache.
	Xv6Buffers = 30

	// maxWritebackRun caps how many buffer locks Flush holds at once while
	// assembling one batched write command.
	maxWritebackRun = 128

	// DefaultWritebackRatio is the dirty-buffer percentage that wakes the
	// writeback daemon ahead of its age interval.
	DefaultWritebackRatio = 25

	// DefaultFlushInterval is the daemon's age bound: no buffer stays
	// dirty longer than roughly this once a daemon runs.
	DefaultFlushInterval = 50 * time.Millisecond

	// giveUpWrites is the per-buffer writeback-failure budget: after this
	// many failed attempts (or one fatal error — a dead device, a
	// persistent bad sector) the cache stops retrying the buffer. The
	// error stays recorded on its errseq streams, the contents stay valid
	// in memory, but the dirty bit is dropped so kflushd does not spin on
	// a block that will never land. Without a give-up, a dead device turns
	// the daemon into a busy-loop and StopDaemon into a hang.
	giveUpWrites = 3

	// readRetries is how many extra attempts devRead makes when the
	// device reports a transient error. The request queue below already
	// retries with backoff; this covers caches mounted straight on a
	// device with no queue.
	readRetries = 2
)

// WritePolicy selects what WriteRange does with the device.
type WritePolicy int

// Write policies.
const (
	// WritePolicyBehind (default): WriteRange installs dirty buffers and
	// returns; the device sees the data at daemon writeback, eviction, or
	// Flush. Repeated writes to the same blocks cost one writeback.
	WritePolicyBehind WritePolicy = iota
	// WritePolicyThrough: every WriteRange issues its device command
	// before returning — the pre-queue synchronous baseline.
	WritePolicyThrough
)

// Options configures NewWithOptions. Zero values select defaults.
type Options struct {
	// Buffers is the total buffer count, split evenly across shards.
	Buffers int
	// Shards is the shard count; it is clamped so every shard holds at
	// least one buffer.
	Shards int
	// Readahead is how many blocks a sequential ReadRange miss pulls in
	// beyond the requested range. 0 selects DefaultReadahead; negative
	// disables readahead.
	Readahead int
	// Policy selects write-behind (default) or write-through.
	Policy WritePolicy
	// WritebackRatio is the dirty percentage that wakes the daemon early
	// (0 = DefaultWritebackRatio; negative disables the ratio trigger).
	WritebackRatio int
	// FlushInterval is the daemon's age bound (0 = DefaultFlushInterval).
	FlushInterval time.Duration
	// OnGiveUp, when set, is invoked each time the cache abandons a dirty
	// buffer whose writeback cannot succeed (per-buffer failure budget
	// exhausted, or a fatal device error). The mount uses it to flip
	// degraded / read-only state. Called with the failing buffer's
	// sleeplock held — the hook must not call back into the cache; record
	// the fact and return.
	OnGiveUp func(lba int, err error)
}

// Buf is one cached block. Callers hold the buffer (its sleeplock) between
// Get and Release.
type Buf struct {
	lba   int
	valid bool
	dirty bool
	refs  int
	lock  ksync.SleepLock
	Data  []byte

	// owner is the errseq stream of the file whose write last dirtied this
	// buffer (nil for unowned metadata); asynchronous writeback failures
	// advance it. Written under the shard lock by writers holding the
	// buffer sleeplock, like valid/dirty, so either lock suffices to read.
	owner *Owner

	// fails counts consecutive writeback failures of this buffer; at
	// giveUpWrites the cache abandons the write (see writebackFailed).
	// Guarded by the buffer's sleeplock, which every writeback path holds
	// across its device command.
	fails int

	// nosteal marks a buffer frozen by a journal: its contents belong to
	// an uncommitted transaction and must NOT reach the device until the
	// transaction's log copy is durable. Every writeback path (Flush, the
	// daemon, FlushOwner, FlushBlocks) skips frozen buffers; Freeze holds
	// an extra reference so the buffer never reaches the eviction paths
	// either. Guarded by the shard lock, like valid/dirty.
	nosteal bool

	// Intrusive LRU links; a buffer is on its shard's LRU list exactly
	// when refs == 0. Guarded by the shard lock.
	prev, next *Buf
}

// LBA returns which block the buffer holds.
func (b *Buf) LBA() int { return b.lba }

// Lock acquires the buffer's sleeplock outside the Get/Release pairing.
// The journal's commit path uses it to copy and thaw batch buffers it
// pinned with Freeze; ordinary callers should use Get/Release. The same
// rank rules apply: at most one buffer lock per task unless acquired in
// ascending LBA order.
func (b *Buf) Lock(t *sched.Task) { b.lock.Lock(t) }

// Unlock releases the buffer's sleeplock (pairs with Lock).
func (b *Buf) Unlock() { b.lock.Unlock() }

// shard is one independent slice of the cache: its own lock, map and LRU.
type shard struct {
	mu   sync.Mutex
	bufs map[int]*Buf // lba -> buffer (pinned or LRU)
	max  int          // buffer budget
	n    int          // buffers allocated so far

	// LRU list of unreferenced buffers; head is the eviction candidate.
	head, tail *Buf
}

func (s *shard) lruPushBack(b *Buf) {
	b.prev, b.next = s.tail, nil
	if s.tail != nil {
		s.tail.next = b
	} else {
		s.head = b
	}
	s.tail = b
}

func (s *shard) lruPushFront(b *Buf) {
	b.prev, b.next = nil, s.head
	if s.head != nil {
		s.head.prev = b
	} else {
		s.tail = b
	}
	s.head = b
}

func (s *shard) lruRemove(b *Buf) {
	if b.prev != nil {
		b.prev.next = b.next
	} else {
		s.head = b.next
	}
	if b.next != nil {
		b.next.prev = b.prev
	} else {
		s.tail = b.prev
	}
	b.prev, b.next = nil, nil
}

func (s *shard) lruPopFront() *Buf {
	b := s.head
	if b != nil {
		s.lruRemove(b)
	}
	return b
}

// Cache is the sharded buffer cache over one block device.
type Cache struct {
	dev       fs.BlockDevice
	tdev      fs.TaskBlockDevice   // non-nil when dev carries tasks (blkq)
	qdev      fs.QueuedBlockDevice // non-nil when dev is a request queue
	blockSize int
	shards    []*shard
	readahead int

	writeBehind   bool
	ratioTrigger  int // dirty-buffer count that wakes the daemon; 0 = off
	flushInterval time.Duration

	// lastReadEnd is the block one past the previous ReadRange, the
	// sequentiality signal that gates readahead: only a request picking
	// up exactly where the last one ended looks like a streaming scan.
	lastReadEnd atomic.Int64

	// dirty counts valid+dirty buffers; maintained by setFlags, read by
	// the ratio trigger and /proc/diskstats.
	dirty atomic.Int64

	// devErr is the device-wide writeback-error stream: every asynchronous
	// write failure advances it (alongside the failing buffer's per-file
	// Owner stream), and Flush — the whole-device barrier behind volume
	// Sync and SysSync — is its single observer. Errseq semantics: each
	// failure epoch is reported exactly once, even if the retry succeeded.
	devErr errseq.Stream

	// onGiveUp is Options.OnGiveUp (abandoned-writeback notification).
	onGiveUp func(lba int, err error)

	// idleHook, when set, runs after each daemon writeback pass — the
	// journal registers its opportunistic checkpoint here ("checkpoint on
	// kflushd idle"). Set before the daemon starts; never changed after.
	idleHook func(t *sched.Task)

	// Writeback-daemon state. daemonOn gates the eviction handoff; the
	// kick/stop machinery serves both the sched-task and host-goroutine
	// daemon modes.
	daemonOn   atomic.Bool
	daemonKick atomic.Bool
	daemonStop atomic.Bool
	daemonWQ   sched.WaitQueue
	kickCh     chan struct{}
	stopCh     chan struct{}
	doneCh     chan struct{}
	stopOnce   sync.Once

	// Pools for steady-state IO: claimed-segment slices and the scratch
	// blocks the cache-fill-only read path needs, so the hot paths stop
	// allocating per call.
	segPool     sync.Pool
	scratchPool sync.Pool

	hits, misses, evictions, writebacks atomic.Int64
	rangeOps, rangeBlocks, readaheads   atomic.Int64
	flushBatches, daemonFlushes         atomic.Int64
	giveUps, readRetried                atomic.Int64
}

// New returns a cache of n buffers over dev with default sharding.
func New(dev fs.BlockDevice, n int) *Cache {
	return NewWithOptions(dev, Options{Buffers: n})
}

// NewWithOptions returns a cache configured by opts.
func NewWithOptions(dev fs.BlockDevice, opts Options) *Cache {
	bufs := opts.Buffers
	if bufs <= 0 {
		bufs = DefaultBuffers
	}
	nsh := opts.Shards
	if nsh <= 0 {
		nsh = DefaultShards
	}
	if nsh > bufs {
		nsh = bufs // every shard gets at least one buffer
	}
	ra := opts.Readahead
	switch {
	case ra == 0:
		ra = DefaultReadahead
	case ra < 0:
		ra = 0
	}
	c := &Cache{
		dev:         dev,
		blockSize:   dev.BlockSize(),
		readahead:   ra,
		writeBehind: opts.Policy == WritePolicyBehind,
		kickCh:      make(chan struct{}, 1),
		stopCh:      make(chan struct{}),
		doneCh:      make(chan struct{}),
	}
	c.tdev, _ = dev.(fs.TaskBlockDevice)
	c.qdev, _ = dev.(fs.QueuedBlockDevice)
	c.onGiveUp = opts.OnGiveUp
	ratio := opts.WritebackRatio
	switch {
	case ratio == 0:
		ratio = DefaultWritebackRatio
	case ratio < 0:
		ratio = 0
	}
	if ratio > 0 {
		c.ratioTrigger = bufs * ratio / 100
		if c.ratioTrigger < 1 {
			c.ratioTrigger = 1
		}
	}
	c.flushInterval = opts.FlushInterval
	if c.flushInterval <= 0 {
		c.flushInterval = DefaultFlushInterval
	}
	c.lastReadEnd.Store(-1)
	c.segPool.New = func() any {
		s := make([]*Buf, 0, maxWritebackRun)
		return &s
	}
	c.scratchPool.New = func() any {
		s := make([]byte, maxWritebackRun*c.blockSize)
		return &s
	}
	for i := 0; i < nsh; i++ {
		max := bufs / nsh
		if i < bufs%nsh {
			max++
		}
		c.shards = append(c.shards, &shard{bufs: make(map[int]*Buf), max: max})
	}
	return c
}

// devRead issues a device read, threading the task through when the
// device layer can use it (the request queue sleeps the task until the
// completion IRQ). Transient device errors are retried a bounded number
// of times — persistent ones (bad sector, dead device) are not, since
// retrying cannot help.
func (c *Cache) devRead(t *sched.Task, lba, n int, dst []byte) error {
	for attempt := 0; ; attempt++ {
		var err error
		if c.tdev != nil {
			err = c.tdev.ReadBlocksT(t, lba, n, dst)
		} else {
			err = c.dev.ReadBlocks(lba, n, dst)
		}
		if err == nil || attempt >= readRetries || !errors.Is(err, fs.ErrSDInjected) {
			return err
		}
		c.readRetried.Add(1)
	}
}

// devWrite is devRead's write twin.
func (c *Cache) devWrite(t *sched.Task, lba, n int, src []byte) error {
	if c.tdev != nil {
		return c.tdev.WriteBlocksT(t, lba, n, src)
	}
	return c.dev.WriteBlocks(lba, n, src)
}

func (c *Cache) shard(lba int) *shard { return c.shards[lba%len(c.shards)] }

// Shards reports the shard count.
func (c *Cache) Shards() int { return len(c.shards) }

// Buffers reports the total buffer budget.
func (c *Cache) Buffers() int {
	n := 0
	for _, s := range c.shards {
		n += s.max
	}
	return n
}

// Device exposes the underlying block device. The FAT32 benchmark-baseline
// bypass and raw /dev block files use it; normal IO goes through the cache.
func (c *Cache) Device() fs.BlockDevice { return c.dev }

// Get returns the locked buffer holding block lba, reading it from the
// device on a miss. The caller must Release it. Concurrent Gets of the same
// block converge on one buffer — the identity property a buffer cache must
// provide (two buffers aliasing one disk block is the classic bug).
func (c *Cache) Get(t *sched.Task, lba int) (*Buf, error) {
	for {
		b, err := c.pin(t, lba)
		if err == errShardFull {
			// Transient: racing claims hold the whole shard. They hold no
			// lock we own (a Get pins before locking anything), so
			// yielding until one drains cannot deadlock.
			yieldRetry(t)
			continue
		}
		if err != nil {
			return nil, err
		}
		if err := c.lockAndFill(t, b, lba); err != nil {
			return nil, err
		}
		return b, nil
	}
}

// lockAndFill locks a pinned buffer and, if it holds no valid data (fresh
// install, or a predecessor's fill failed), reads it from the device. On
// error the buffer is unlocked and unpinned.
func (c *Cache) lockAndFill(t *sched.Task, b *Buf, lba int) error {
	b.lock.Lock(t)
	if !b.valid {
		if err := c.devRead(t, lba, 1, b.Data); err != nil {
			b.lock.Unlock()
			c.unpin(b)
			return err
		}
		c.setFlags(b, true, b.dirty)
	}
	return nil
}

// tryPin takes a reference on lba's buffer if one is present, in a single
// shard-lock critical section. The buffer may be invalid; callers lock
// and fill it. Returns nil when the block is not cached.
func (c *Cache) tryPin(lba int) *Buf {
	s := c.shard(lba)
	s.mu.Lock()
	b, ok := s.bufs[lba]
	if !ok {
		s.mu.Unlock()
		return nil
	}
	if b.refs == 0 {
		s.lruRemove(b)
	}
	b.refs++
	s.mu.Unlock()
	return b
}

// setFlags updates a pinned buffer's valid/dirty bits under its shard
// lock, leaving the owner tag alone. The flags are read under the shard
// lock by pin's eviction check and Flush's dirty snapshot, so writes must
// not race past it; the caller holds the buffer's sleeplock, which orders
// the flag change with the Data it describes. Transitions in and out of
// the valid+dirty state maintain the cache-wide dirty count; crossing the
// writeback ratio wakes the daemon.
func (c *Cache) setFlags(b *Buf, valid, dirty bool) {
	c.setState(b, valid, dirty, false, nil)
}

// setFlagsOwned is setFlags plus an ownership transfer: the buffer's
// error stream becomes o's (nil for unowned metadata). Last writer wins —
// files never share data blocks, so the tag only ever moves between one
// file and the metadata pool.
func (c *Cache) setFlagsOwned(b *Buf, valid, dirty bool, o *Owner) {
	c.setState(b, valid, dirty, true, o)
}

func (c *Cache) setState(b *Buf, valid, dirty, setOwner bool, o *Owner) {
	s := c.shard(b.lba)
	s.mu.Lock()
	was := b.valid && b.dirty
	oldOwner := b.owner
	b.valid = valid
	b.dirty = dirty
	if setOwner {
		b.owner = o
	}
	newOwner := b.owner
	now := valid && dirty
	lba := b.lba
	s.mu.Unlock()
	// Per-owner dirty-list maintenance. The caller holds the buffer's
	// sleeplock (the setFlags contract), so per-buffer transitions are
	// ordered and the lists track buffer state exactly: an LBA is on an
	// owner's list iff its buffer is valid+dirty and tagged with it.
	if oldOwner != nil && was && (!now || newOwner != oldOwner) {
		oldOwner.removeDirty(lba)
	}
	if newOwner != nil && now && (!was || newOwner != oldOwner) {
		newOwner.addDirty(lba)
	}
	if now == was {
		return
	}
	if !now {
		c.dirty.Add(-1)
		return
	}
	if d := c.dirty.Add(1); c.ratioTrigger > 0 && d >= int64(c.ratioTrigger) {
		c.kickDaemon()
	}
}

// pin finds or installs the buffer for lba and takes a reference on it.
// The returned buffer may be invalid; the caller fills it under its
// sleeplock. A dirty eviction victim stays visible in the map until its
// writeback completes, so a concurrent Get of the evicted block can never
// read stale data from the device.
func (c *Cache) pin(t *sched.Task, lba int) (*Buf, error) {
	s := c.shard(lba)
	missed := false
	s.mu.Lock()
	for {
		if b, ok := s.bufs[lba]; ok {
			// Present: same as tryPin, but under the lock already held
			// so the miss path's re-check is atomic with the claim.
			if b.refs == 0 {
				s.lruRemove(b)
			}
			b.refs++
			if !missed {
				c.hits.Add(1)
			}
			s.mu.Unlock()
			return b, nil
		}
		if !missed {
			missed = true
			c.misses.Add(1)
		}

		// Room in the budget: allocate a fresh buffer.
		if s.n < s.max {
			b := &Buf{lba: lba, refs: 1, Data: make([]byte, c.blockSize)}
			b.lock.SetRank(ksync.RankBuffer, int64(lba))
			s.n++
			s.bufs[lba] = b
			s.mu.Unlock()
			return b, nil
		}

		// Recycle an unreferenced buffer. With a writeback daemon running,
		// eviction never writes inline: it takes the least-recently-used
		// CLEAN buffer and, if only dirty ones remain, hands the shard to
		// the daemon (kick + transient-full backoff) — the caller retries
		// once the daemon has cleaned a victim, and the writer that made
		// the buffers dirty never stalls behind an unrelated writeback.
		daemon := c.daemonOn.Load()
		var v *Buf
		if daemon {
			// First clean buffer in LRU order; dirty ones keep their place.
			for b := s.head; b != nil; b = b.next {
				if !b.dirty || !b.valid {
					v = b
					break
				}
			}
			if v != nil {
				s.lruRemove(v)
			}
		} else {
			v = s.lruPopFront()
		}
		if v == nil {
			s.mu.Unlock()
			if daemon {
				c.kickDaemon()
			}
			return nil, errShardFull
		}
		if !v.dirty || !v.valid {
			delete(s.bufs, v.lba)
			if v.valid {
				c.evictions.Add(1)
			}
			v.lba = lba
			v.lock.SetRank(ksync.RankBuffer, int64(lba))
			v.valid = false
			v.dirty = false
			v.owner = nil
			v.refs = 1
			s.bufs[lba] = v
			s.mu.Unlock()
			return v, nil
		}

		// Dirty victim, no daemon: write it back while it stays in the map
		// (pinned), then retry. A racing Get of the victim's block pins it
		// too and waits on its sleeplock, so it observes the cached data,
		// never a stale device copy.
		v.refs = 1
		s.mu.Unlock()
		v.lock.Lock(t)
		var err error
		owner := v.owner
		wrote := v.dirty && v.valid
		if wrote {
			err = c.devWrite(t, v.lba, 1, v.Data)
			if err != nil {
				// The error advances the victim's error streams: the caller
				// here is some unlucky evictor, not the file whose data
				// failed to land, and that file's fsync must still hear it.
				// An unwritable victim is given up there, so eviction does
				// not keep tripping over the same doomed buffer.
				c.writebackFailed(v, err)
			}
		}
		s.mu.Lock()
		if wrote && err == nil {
			v.dirty = false
			v.fails = 0
			if owner != nil {
				owner.removeDirty(v.lba)
			}
			c.dirty.Add(-1)
			c.writebacks.Add(1)
		}
		v.lock.Unlock()
		v.refs--
		if v.refs == 0 {
			// Front, not back: the cleaned victim should be the next
			// eviction candidate, not outlive hotter buffers.
			s.lruPushFront(v)
		}
		if err != nil {
			s.mu.Unlock()
			return nil, err
		}
		// Loop: the victim is clean now (or claimed by a racer, in which
		// case the next LRU pop finds another candidate).
	}
}

// unpin drops a reference; at zero the buffer goes to the LRU tail.
func (c *Cache) unpin(b *Buf) {
	s := c.shard(b.lba)
	s.mu.Lock()
	defer s.mu.Unlock()
	if b.refs <= 0 {
		panic("bcache: release of unreferenced buffer")
	}
	b.refs--
	if b.refs == 0 {
		s.lruPushBack(b)
	}
}

// MarkDirty records that the caller modified the buffer — an unowned
// (metadata) write: any async writeback failure lands only on the
// device-wide error stream. The caller must hold the buffer (Get'd, not
// yet Released).
func (c *Cache) MarkDirty(b *Buf) { c.MarkDirtyOwned(b, nil) }

// MarkDirtyOwned is MarkDirty with the writing file's error-stream token:
// if this buffer's asynchronous writeback later fails, the error advances
// o's stream so that file's fsync — and only that file's — reports it.
func (c *Cache) MarkDirtyOwned(b *Buf, o *Owner) {
	c.setFlagsOwned(b, b.valid, true, o)
}

// Release unlocks and unpins a buffer.
func (c *Cache) Release(b *Buf) {
	b.lock.Unlock()
	c.unpin(b)
}

// Freeze marks a buffer dirty and pins it against every writeback and
// eviction path: the write-ahead journal calls it instead of MarkDirty for
// a block recorded in an open transaction, so uncommitted metadata can
// never reach its home location ahead of the commit record (the "nosteal"
// rule). The caller must hold the buffer (Get'd, not yet Released); the
// extra reference Freeze takes survives that Release and is dropped by
// Thaw. Idempotent while frozen.
func (c *Cache) Freeze(b *Buf) {
	c.setFlags(b, true, true)
	s := c.shard(b.lba)
	s.mu.Lock()
	if !b.nosteal {
		b.nosteal = true
		b.refs++
	}
	s.mu.Unlock()
}

// Thaw releases a frozen buffer back to ordinary dirty-buffer life: the
// journal calls it at commit, once the transaction's log copy is durable,
// after which the daemon, Flush, or eviction may write the block home
// whenever convenient (the checkpoint). The caller must hold the buffer's
// sleeplock — like setFlags, so the flush paths' nosteal reads under
// either the shard lock or the sleeplock stay ordered. No-op on an
// unfrozen buffer.
func (c *Cache) Thaw(b *Buf) {
	s := c.shard(b.lba)
	s.mu.Lock()
	if !b.nosteal {
		s.mu.Unlock()
		return
	}
	b.nosteal = false
	s.mu.Unlock()
	c.unpin(b)
}

// Discard unwinds an uncommitted buffer: clean, unfrozen and INVALID, so
// the next Get re-reads the block from the device. The journal's abort
// path calls it for every block of a transaction poisoned by a
// mid-operation device error — the cache copy holds half-applied metadata
// that must never reach the media, and the durable copy on disk is the
// truth again. The caller must hold the buffer's sleeplock (Lock, as in
// the commit path).
func (c *Cache) Discard(b *Buf) {
	c.setFlags(b, false, false)
	c.Thaw(b)
}

// Frozen reports whether the buffer is currently journal-pinned (tests).
func (c *Cache) Frozen(b *Buf) bool {
	s := c.shard(b.lba)
	s.mu.Lock()
	defer s.mu.Unlock()
	return b.nosteal
}

// segmentMax bounds how many blocks a range segment claims at once: the
// lock-holding cap, and half the cache so tiny configurations still fit.
func (c *Cache) segmentMax() int {
	segMax := maxWritebackRun
	if half := c.Buffers() / 2; half < segMax {
		segMax = half
	}
	if segMax < 1 {
		segMax = 1
	}
	return segMax
}

// claimSegment pins and locks blocks [lba, lba+n) in two phases: first
// pin everything (absent blocks get fresh invalid buffers, exactly like
// a Get miss) while holding no sleeplocks — pin may wait on an eviction
// victim's lock, which would invert lock order if we already held some —
// then lock the pinned buffers in ascending LBA order, the same order
// Flush uses.
//
// When concurrent claims exhaust a shard (errShardFull), the whole claim
// is released before retrying — no hold-and-wait, so claims cannot
// resource-deadlock against each other, and a lone claim always fits
// (segmentMax caps a segment at half the cache), so retries terminate once
// racing claims drain. Real pin errors (device writeback failures) abort.
func (c *Cache) claimSegment(t *sched.Task, lba, n int) (*[]*Buf, error) {
	for {
		bufs, err := c.tryClaimSegment(t, lba, n)
		if err == errShardFull {
			yieldRetry(t)
			continue
		}
		return bufs, err
	}
}

func (c *Cache) tryClaimSegment(t *sched.Task, lba, n int) (*[]*Buf, error) {
	sp := c.segPool.Get().(*[]*Buf)
	bufs := (*sp)[:0]
	for i := 0; i < n; i++ {
		b, err := c.pin(t, lba+i)
		if err != nil {
			for _, p := range bufs {
				c.unpin(p)
			}
			*sp = bufs[:0]
			c.segPool.Put(sp)
			return nil, err
		}
		bufs = append(bufs, b)
	}
	for _, b := range bufs {
		b.lock.Lock(t)
	}
	*sp = bufs
	return sp, nil
}

// releaseSegment unlocks and unpins a claimed segment and returns its
// slice to the pool (steady-state range IO allocates nothing: the pooled
// header pointer travels with the claim).
func (c *Cache) releaseSegment(sp *[]*Buf) {
	for _, b := range *sp {
		b.lock.Unlock()
		c.unpin(b)
	}
	c.segPool.Put(sp)
}

// ReadRange reads n blocks starting at lba into dst. Valid cached blocks
// are served from memory; runs of invalid ones are coalesced into single
// device commands that fill the cache on the way through. The whole
// segment is claimed (pinned + locked) across the device reads, so a
// racing writer cannot slip new data onto the device and have this read
// install the pre-write snapshot over it. A request that starts exactly
// where the previous ReadRange ended is a sequential scan: it pulls up to
// Readahead further blocks in behind it. Random reads never pay for
// readahead.
func (c *Cache) ReadRange(t *sched.Task, lba, n int, dst []byte) error {
	bs := c.blockSize
	if len(dst) < n*bs {
		return fmt.Errorf("bcache: range read %d blocks into %d bytes", n, len(dst))
	}
	c.rangeOps.Add(1)
	c.rangeBlocks.Add(int64(n))
	sequential := c.lastReadEnd.Swap(int64(lba+n)) == int64(lba)
	segMax := c.segmentMax()
	missed := 0
	for seg := 0; seg < n; seg += segMax {
		segN := n - seg
		if segN > segMax {
			segN = segMax
		}
		m, err := c.readSegment(t, lba+seg, segN, dst[seg*bs:(seg+segN)*bs])
		missed += m
		if err != nil {
			return err
		}
	}
	// Readahead only for a sequential scan that actually touched the
	// device: a fully warm request implies the window ahead is warm too.
	if sequential && missed > 0 {
		c.readAhead(t, lba+n)
	}
	return nil
}

// readSegment serves one claimed segment: memory for valid buffers,
// coalesced device commands for invalid runs (filling those buffers).
// A nil dst (readahead) fills the cache only, skipping the copies a
// caller-visible read would need. Returns how many blocks came from the
// device.
func (c *Cache) readSegment(t *sched.Task, lba, n int, dst []byte) (int, error) {
	bs := c.blockSize
	sp, err := c.claimSegment(t, lba, n)
	if err != nil {
		return 0, err
	}
	bufs := *sp
	missed := 0
	var scratch *[]byte // pooled, nil-dst (cache-fill-only) mode
	for i := 0; i < n && err == nil; {
		if bufs[i].valid {
			if dst != nil {
				copy(dst[i*bs:(i+1)*bs], bufs[i].Data)
			}
			i++
			continue
		}
		j := i + 1
		for j < n && !bufs[j].valid {
			j++
		}
		run := dst
		if run != nil {
			run = dst[i*bs : j*bs]
		} else {
			if scratch == nil {
				scratch = c.scratchPool.Get().(*[]byte)
			}
			run = (*scratch)[:(j-i)*bs]
		}
		if err = c.devRead(t, lba+i, j-i, run); err == nil {
			missed += j - i
			for k := i; k < j; k++ {
				copy(bufs[k].Data, run[(k-i)*bs:(k-i+1)*bs])
				c.setFlags(bufs[k], true, bufs[k].dirty)
			}
		}
		i = j
	}
	if scratch != nil {
		c.scratchPool.Put(scratch)
	}
	c.releaseSegment(sp)
	return missed, err
}

// readAhead pulls blocks beyond a sequential scan into the cache,
// best-effort: errors are ignored.
func (c *Cache) readAhead(t *sched.Task, start int) {
	ra := c.readahead
	if max := c.dev.Blocks(); start+ra > max {
		ra = max - start
	}
	if sm := c.segmentMax(); ra > sm {
		ra = sm
	}
	if ra <= 0 {
		return
	}
	if missed, err := c.readSegment(t, start, ra, nil); err == nil {
		// Count only blocks the device actually supplied, so the stat
		// reflects prefetch work, not already-warm windows.
		c.readaheads.Add(int64(missed))
	}
}

// WriteRange writes n blocks starting at lba from src, unowned: any async
// writeback failure of these blocks lands only on the device-wide error
// stream. Under the default write-behind policy the blocks are installed
// in the cache dirty (write-allocate) and the call returns — the device
// sees them at daemon writeback, eviction, or the next Flush barrier, and
// rewrites of a still-dirty block cost nothing at the device. Under
// write-through the batched device command is issued before returning,
// while the range's buffer sleeplocks are held, so a concurrent Flush or
// eviction of a stale dirty copy can never land after the new data and
// leave the device stale. Segments are capped at maxWritebackRun blocks
// to bound how many locks are held at once.
func (c *Cache) WriteRange(t *sched.Task, lba, n int, src []byte) error {
	return c.WriteRangeOwned(t, lba, n, src, nil)
}

// WriteRangeOwned is WriteRange with the writing file's error-stream
// token: the dirtied buffers are tagged with o, so an asynchronous
// writeback failure is attributed to that file's fsync stream (see Owner)
// and FlushOwner can find the file's dirty blocks.
func (c *Cache) WriteRangeOwned(t *sched.Task, lba, n int, src []byte, o *Owner) error {
	bs := c.blockSize
	if len(src) < n*bs {
		return fmt.Errorf("bcache: range write %d blocks from %d bytes", n, len(src))
	}
	c.rangeOps.Add(1)
	c.rangeBlocks.Add(int64(n))
	segMax := c.segmentMax()
	for seg := 0; seg < n; seg += segMax {
		segN := n - seg
		if segN > segMax {
			segN = segMax
		}
		if err := c.writeSegment(t, lba+seg, segN, src[seg*bs:(seg+segN)*bs], o); err != nil {
			return err
		}
	}
	return nil
}

// writeSegment is one WriteRange segment. The whole segment is claimed
// (pinned + locked, two-phase, see claimSegment) while the cache copies —
// and, write-through, the device command — land, so a concurrent reader
// of any block waits on its sleeplock rather than observing a torn
// segment, and a concurrent Flush of a stale dirty copy cannot land after
// the new data.
func (c *Cache) writeSegment(t *sched.Task, lba, n int, src []byte, o *Owner) error {
	bs := c.blockSize
	sp, err := c.claimSegment(t, lba, n)
	if err != nil {
		return err
	}
	bufs := *sp
	if c.writeBehind {
		// Install dirty; the device catches up at writeback.
		for i, b := range bufs {
			copy(b.Data, src[i*bs:(i+1)*bs])
			c.setFlagsOwned(b, true, true, o)
		}
		c.releaseSegment(sp)
		return nil
	}
	if err = c.devWrite(t, lba, n, src); err == nil {
		// The device holds the new data; make every cached copy match,
		// clean. On error, invalid buffers stay invalid (a later Get
		// re-reads the device) and valid ones keep their old contents.
		for i, b := range bufs {
			copy(b.Data, src[i*bs:(i+1)*bs])
			c.setFlagsOwned(b, true, false, o)
		}
	}
	c.releaseSegment(sp)
	return err
}

// Flush is the whole-device durability barrier (volume Sync, SysSync,
// unmount): every dirty buffer is written back, batched, before it
// returns — and the device-wide error stream is observed, so any
// asynchronous writeback error recorded since the previous barrier
// (daemon or eviction writeback, any file's) is reported here exactly
// once, even if the data has since been rewritten successfully.
func (c *Cache) Flush(t *sched.Task) error {
	err := c.flushDirty(t)
	if werr := c.devErr.Check(); err == nil {
		err = werr
	}
	return err
}

// FlushOwner is the per-file flush half of fsync. It writes back the
// dirty buffers tagged with o (the file's data) plus any caller-named
// metadata blocks (extra: the file's inode block, its directory-entry
// sector). The owned snapshot comes from o's own dirty list — O(dirty-own),
// not a walk of every shard — so fsync of one small file costs the same
// whether the cache holds nothing or a thousand other files' dirt.
//
// FlushOwner does not OBSERVE o's error stream: observation is per open
// file description (fs.OpenFile.Sync observes its own errseq cursor after
// this flush returns), so two descriptors on one inode each report an
// asynchronous failure exactly once. Synchronous failures of the flush
// itself are both returned and recorded on the stream — every observer
// must hear about a write that never landed, not only the caller that
// happened to run the flush.
//
// Unlike Flush, the queued submissions run without an explicit plug: an
// fsync is the lone, latency-sensitive submitter the request queue's
// anticipatory plug (blkq.Options.PlugDelay) exists for — its burst
// accumulates in the anticipatory window and merges, and the first Wait
// releases the window without paying the full delay.
func (c *Cache) FlushOwner(t *sched.Task, o *Owner, extra ...int) error {
	dirty := o.snapshotDirty()
	for _, lba := range extra {
		// Dedupe against the owned snapshot: a window must never lock one
		// buffer twice.
		dup := false
		for _, have := range dirty {
			if have == lba {
				dup = true
				break
			}
		}
		if !dup {
			dirty = append(dirty, lba)
		}
	}
	if len(dirty) == 0 {
		return nil
	}
	sort.Ints(dirty)
	if c.qdev != nil {
		return c.flushQueued(t, dirty, false)
	}
	return c.flushSync(t, dirty)
}

// FlushBlocks writes back exactly the named blocks (deduplicated, in
// ascending LBA order) and waits for their completions — the journal's
// targeted durability primitive: commit flushes the transaction's log
// slots with it (plugged, so the elevator merges the slot run into one
// group-commit burst), then its header; the ordered-writes FAT32 path
// flushes a new file's data and FAT sectors with it before publishing the
// dirent. Blocks that are absent, clean, or frozen are skipped — absent
// or clean means already durable, frozen means some open transaction owns
// the block and its durability is the journal's job, not this caller's.
func (c *Cache) FlushBlocks(t *sched.Task, lbas []int, plugged bool) error {
	if len(lbas) == 0 {
		return nil
	}
	sorted := make([]int, len(lbas))
	copy(sorted, lbas)
	sort.Ints(sorted)
	dirty := sorted[:1]
	for _, lba := range sorted[1:] {
		if lba != dirty[len(dirty)-1] {
			dirty = append(dirty, lba)
		}
	}
	if c.qdev != nil {
		return c.flushQueued(t, dirty, plugged)
	}
	return c.flushSync(t, dirty)
}

// flushDirty writes every currently-dirty buffer back. Over a request
// queue it is "submit all, wait for all completions": each window's
// blocks are submitted asynchronously under a plug so the elevator merges
// them into multi-block commands and up to the queue depth overlap at the
// device. On a plain device, contiguous runs are assembled and written
// synchronously, one command per run. Every write failure is recorded in
// the failing buffer's error streams (owner + device-wide) as well as
// returned, so fsync observers hear about it no matter who ran the flush.
func (c *Cache) flushDirty(t *sched.Task) error {
	var dirty []int
	for _, s := range c.shards {
		s.mu.Lock()
		for lba, b := range s.bufs {
			if b.valid && b.dirty && !b.nosteal {
				dirty = append(dirty, lba)
			}
		}
		s.mu.Unlock()
	}
	if len(dirty) == 0 {
		return nil
	}
	sort.Ints(dirty)
	if c.qdev != nil {
		return c.flushQueued(t, dirty, true)
	}
	return c.flushSync(t, dirty)
}

// flushQueued writes the given dirty blocks back over the request queue.
// Windows of up to maxWritebackRun buffers are locked (ascending LBA, the
// buffer-rank order), submitted — one request per block, zero-copy out of
// the buffer, merged by the elevator — and waited on before the locks
// drop, so a buffer is never marked clean ahead of its completion. When
// plugged, each window's submissions go out under an explicit
// Plug/Unplug bracket (the batch assemblers: Flush, the daemon);
// FlushOwner passes false and leans on the queue's anticipatory plug.
func (c *Cache) flushQueued(t *sched.Task, dirty []int, plugged bool) error {
	var firstErr error
	type sub struct {
		b  *Buf
		tk fs.BlockTicket
	}
	for i := 0; i < len(dirty); i += maxWritebackRun {
		j := i + maxWritebackRun
		if j > len(dirty) {
			j = len(dirty)
		}
		bufs := make([]*Buf, 0, j-i)
		for _, lba := range dirty[i:j] {
			b := c.tryPin(lba)
			if b == nil {
				continue // evicted (and thus written back) since the snapshot
			}
			b.lock.Lock(t)
			bufs = append(bufs, b)
		}
		subs := make([]sub, 0, len(bufs))
		runs := 0
		if plugged {
			c.qdev.Plug(t)
		}
		for k, b := range bufs {
			if !b.dirty || !b.valid || b.nosteal {
				continue // cleaned by a racing writeback, or journal-frozen
			}
			if k == 0 || bufs[k-1].lba != b.lba-1 {
				runs++ // contiguous-run accounting (flushBatches)
			}
			tk, err := c.qdev.SubmitWrite(t, b.lba, 1, b.Data)
			if err != nil {
				c.writebackFailed(b, err)
				if firstErr == nil {
					firstErr = err
				}
				continue
			}
			subs = append(subs, sub{b: b, tk: tk})
		}
		if plugged {
			c.qdev.Unplug(t)
		}
		for _, s := range subs {
			if err := s.tk.Wait(t); err != nil {
				// Advance the buffer's error streams so the owning file's
				// fsync and the device barrier both hear about it; the
				// buffer stays dirty for a later retry until its failure
				// budget runs out (then writebackFailed gives it up).
				c.writebackFailed(s.b, err)
				if firstErr == nil {
					firstErr = err
				}
				continue
			}
			s.b.fails = 0
			c.setFlags(s.b, true, false)
			c.writebacks.Add(1)
		}
		c.flushBatches.Add(int64(runs))
		for _, b := range bufs {
			b.lock.Unlock()
			c.unpin(b)
		}
	}
	return firstErr
}

// flushSync writes the given dirty blocks back on a plain synchronous
// device: they are gathered into contiguous runs and each run goes out as
// one device command, so flushing a burst of FAT-sector updates costs one
// command setup rather than one per sector.
func (c *Cache) flushSync(t *sched.Task, dirty []int) error {
	bs := c.blockSize
	scratch := c.scratchPool.Get().(*[]byte)
	defer c.scratchPool.Put(scratch)
	for i := 0; i < len(dirty); {
		j := i + 1
		for j < len(dirty) && dirty[j] == dirty[j-1]+1 && j-i < maxWritebackRun {
			j++
		}
		// Pin and lock the run in ascending LBA order (a consistent order
		// keeps concurrent flushers deadlock-free), skipping blocks that
		// were evicted (and thus written back) since the snapshot.
		bufs := make([]*Buf, 0, j-i)
		for _, lba := range dirty[i:j] {
			b := c.tryPin(lba)
			if b == nil {
				continue
			}
			b.lock.Lock(t)
			bufs = append(bufs, b)
		}
		// Write contiguous still-dirty sub-runs with single commands.
		var err error
		for k := 0; k < len(bufs) && err == nil; {
			if !bufs[k].dirty || !bufs[k].valid || bufs[k].nosteal {
				k++
				continue
			}
			m := k + 1
			for m < len(bufs) && bufs[m].lba == bufs[m-1].lba+1 && bufs[m].dirty && bufs[m].valid && !bufs[m].nosteal {
				m++
			}
			for x := k; x < m; x++ {
				copy((*scratch)[(x-k)*bs:], bufs[x].Data)
			}
			if err = c.devWrite(t, bufs[k].lba, m-k, (*scratch)[:(m-k)*bs]); err == nil {
				c.writebacks.Add(int64(m - k))
				c.flushBatches.Add(1)
				for x := k; x < m; x++ {
					bufs[x].fails = 0
					c.setFlags(bufs[x], true, false)
				}
			} else {
				// Advance every member's error streams so each owning
				// file's fsync hears about its own; members stay dirty
				// until their failure budget runs out.
				for x := k; x < m; x++ {
					c.writebackFailed(bufs[x], err)
				}
			}
			k = m
		}
		for _, b := range bufs {
			b.lock.Unlock()
			c.unpin(b)
		}
		if err != nil {
			return err
		}
		i = j
	}
	return nil
}

// --- asynchronous writeback error streams ---

// noteAsyncWriteErr records a write failure no caller owns: the buffer's
// per-file stream (when the buffer is owned) and the device-wide stream
// both advance, so the file's fsync and the whole-device barrier each
// report it exactly once.
func (c *Cache) noteAsyncWriteErr(o *Owner, err error) {
	if o != nil {
		o.Record(err)
	}
	c.devErr.Record(err)
}

// writebackFailed handles one failed writeback attempt of a dirty
// buffer: the error advances the buffer's error streams, and the buffer
// normally stays dirty so a later pass retries it. But retrying cannot go
// on forever — a buffer over a dead device or a persistent bad sector,
// or one that has exhausted its failure budget, is GIVEN UP: its dirty
// bit drops (contents stay valid in memory, so readers still see the
// data), the abandonment is counted, and the OnGiveUp hook tells the
// mount to degrade. This is what keeps kflushd from spinning on
// unwritable blocks and lets StopDaemon return on a dead device; the
// data loss is not silent — it was recorded on the errseq streams, so
// every fsync observer and the Flush barrier still hear about it.
//
// The caller holds the buffer's sleeplock (and no shard lock).
func (c *Cache) writebackFailed(b *Buf, err error) {
	c.noteAsyncWriteErr(b.owner, err)
	b.fails++
	fatal := errors.Is(err, fs.ErrDeviceDead) || errors.Is(err, fs.ErrBadSector)
	if !fatal && b.fails < giveUpWrites {
		return // still worth retrying; stays dirty
	}
	b.fails = 0
	c.setFlags(b, true, false)
	c.giveUps.Add(1)
	if c.onGiveUp != nil {
		c.onGiveUp(b.lba, err)
	}
}

// GiveUps reports how many dirty buffers the cache has abandoned because
// their writeback could not succeed.
func (c *Cache) GiveUps() int64 { return c.giveUps.Load() }

// ReadRetries reports how many transient read errors devRead absorbed.
func (c *Cache) ReadRetries() int64 { return c.readRetried.Load() }

// WritebackErrPending reports whether the device-wide stream holds a
// write error no Flush has reported yet (diagnostics / tests).
func (c *Cache) WritebackErrPending() bool { return c.devErr.Pending() }

// --- the writeback daemon ---

// RunDaemon is the body of the background writeback daemon — the kernel
// runs it as the kflushd task for each mounted cache; tests may run it on
// a plain goroutine with a nil task. It flushes dirty buffers whenever
// the dirty ratio crosses Options.WritebackRatio (MarkDirty/WriteRange
// kick it) and at least every Options.FlushInterval (the age bound).
// While it runs, eviction hands dirty victims to it instead of writing
// them inline.
//
// after schedules a wakeup through the kernel's timer source (nil with a
// nil task: host timers are used). RunDaemon returns after StopDaemon.
func (c *Cache) RunDaemon(t *sched.Task, after func(d time.Duration, fn func()) func() bool) {
	c.daemonOn.Store(true)
	defer func() {
		c.daemonOn.Store(false)
		close(c.doneCh)
	}()
	for {
		c.daemonWait(t, after)
		if c.daemonStop.Load() {
			return
		}
		if c.dirty.Load() != 0 {
			c.daemonFlushes.Add(1)
			// Nobody waits on this pass; write failures were recorded in
			// the failing buffers' error streams by the flush path itself,
			// the failed buffers stay dirty, and the next round (throttled
			// by the interval) retries them — so the pass's return needs no
			// handling.
			_ = c.flushDirty(t)
		}
		if c.idleHook != nil {
			// The daemon is idle (its pass is done, nothing is waiting on
			// it): let the journal checkpoint committed transactions so the
			// log drains during quiet periods instead of on commit's
			// critical path.
			c.idleHook(t)
		}
	}
}

// SetIdleHook registers fn to run after every daemon writeback pass (the
// journal's checkpoint trigger). Must be called before RunDaemon starts.
func (c *Cache) SetIdleHook(fn func(t *sched.Task)) { c.idleHook = fn }

// daemonWait sleeps until a kick, the age interval, or stop.
func (c *Cache) daemonWait(t *sched.Task, after func(d time.Duration, fn func()) func() bool) {
	if c.daemonKick.Swap(false) {
		return // kicked while flushing: go again immediately
	}
	if t != nil && after != nil {
		stop := after(c.flushInterval, func() { c.daemonWQ.WakeAll() })
		c.daemonWQ.SleepUnless(t, func() bool {
			return c.daemonKick.Load() || c.daemonStop.Load()
		})
		stop()
		c.daemonKick.Store(false)
		return
	}
	select {
	case <-c.kickCh:
		c.daemonKick.Store(false)
	case <-time.After(c.flushInterval):
	case <-c.stopCh:
	}
}

// kickDaemon wakes the daemon ahead of its interval (ratio crossings,
// eviction pressure). Harmless when no daemon runs.
func (c *Cache) kickDaemon() {
	c.daemonKick.Store(true)
	c.daemonWQ.WakeAll()
	select {
	case c.kickCh <- struct{}{}:
	default:
	}
}

// StopDaemon signals the daemon to exit and waits for it. Callers must
// have started (or irrevocably scheduled) RunDaemon: the stop flag is
// honoured even by a daemon that has not begun running yet — it exits on
// its first wait — but a cache that never runs RunDaemon at all would
// block here forever. The kernel tracks which caches got daemons;
// calling twice is fine (the second wait returns immediately).
func (c *Cache) StopDaemon() {
	c.daemonStop.Store(true)
	c.stopOnce.Do(func() { close(c.stopCh) })
	c.daemonWQ.WakeAll()
	<-c.doneCh
}

// DaemonFlushes reports how many background writeback passes have run.
func (c *Cache) DaemonFlushes() int64 { return c.daemonFlushes.Load() }

// DirtyBuffers reports how many valid+dirty buffers the cache holds.
func (c *Cache) DirtyBuffers() int64 { return c.dirty.Load() }

// WriteBehind reports whether the cache runs the write-behind policy.
func (c *Cache) WriteBehind() bool { return c.writeBehind }

// Invalidate drops every clean, unreferenced buffer. Callers that are
// about to route IO around the cache (the FAT32 benchmark bypass) use it
// so no stale copy can be served — or survive — across the switch; dirty
// and pinned buffers are kept (Flush first for a full drop).
func (c *Cache) Invalidate() {
	for _, s := range c.shards {
		s.mu.Lock()
		for lba, b := range s.bufs {
			if b.refs == 0 && !(b.dirty && b.valid) {
				s.lruRemove(b)
				delete(s.bufs, lba)
				s.n--
			}
		}
		s.mu.Unlock()
	}
}

// Stats reports single-block cache behaviour: hits, misses (device block
// reads), evictions, and blocks written back (eviction + flush).
func (c *Cache) Stats() (hits, misses, evictions, writebacks int64) {
	return c.hits.Load(), c.misses.Load(), c.evictions.Load(), c.writebacks.Load()
}

// RangeStats reports multi-block activity: range operations served, blocks
// moved by them, and blocks pulled in by readahead.
func (c *Cache) RangeStats() (ops, blocks, readahead int64) {
	return c.rangeOps.Load(), c.rangeBlocks.Load(), c.readaheads.Load()
}

// FlushBatches reports how many batched writeback commands Flush has
// issued (tests assert coalescing through this).
func (c *Cache) FlushBatches() int64 { return c.flushBatches.Load() }
