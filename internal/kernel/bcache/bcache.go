// Package bcache is the xv6-inherited buffer cache: a fixed pool of
// single-block buffers with LRU recycling and per-buffer sleeplocks. It
// only supports single-block operations — sufficient for xv6fs, but a
// bottleneck for FAT32's multi-block ranges, which is why Prototype 5
// bypasses it for range accesses (§5.2); the FAT32 package takes that
// bypass, and Figure 9/Fig 8 benchmarks measure the difference.
package bcache

import (
	"fmt"
	"sync"

	"protosim/internal/kernel/fs"
	"protosim/internal/kernel/ksync"
	"protosim/internal/kernel/sched"
)

// DefaultBuffers matches xv6's NBUF=30.
const DefaultBuffers = 30

// Buf is one cached block. Callers hold the buffer (its sleeplock) between
// Get and Release.
type Buf struct {
	lba   int
	valid bool
	dirty bool
	refs  int
	lock  ksync.SleepLock
	Data  []byte
	lru   int64 // last-release tick
}

// LBA returns which block the buffer holds.
func (b *Buf) LBA() int { return b.lba }

// Cache is the buffer cache over one block device.
type Cache struct {
	dev fs.BlockDevice

	mu   sync.Mutex
	bufs []*Buf
	tick int64

	hits, misses, evictions, writebacks int64
}

// New returns a cache of n buffers over dev.
func New(dev fs.BlockDevice, n int) *Cache {
	if n <= 0 {
		n = DefaultBuffers
	}
	c := &Cache{dev: dev}
	for i := 0; i < n; i++ {
		c.bufs = append(c.bufs, &Buf{lba: -1, Data: make([]byte, dev.BlockSize())})
	}
	return c
}

// Get returns the locked buffer holding block lba, reading it from the
// device on a miss. The caller must Release it. Concurrent Gets of the same
// block converge on one buffer — the identity property a buffer cache must
// provide (two buffers aliasing one disk block is the classic bug).
func (c *Cache) Get(t *sched.Task, lba int) (*Buf, error) {
	c.mu.Lock()
	// Hit — including a buffer another task is mid-way through filling
	// (refs > 0): wait on its lock rather than aliasing the block.
	for _, b := range c.bufs {
		if b.lba == lba && (b.valid || b.refs > 0) {
			b.refs++
			c.hits++
			c.mu.Unlock()
			b.lock.Lock(t)
			if !b.valid { // predecessor's read failed; retry ourselves
				if err := c.dev.ReadBlocks(lba, 1, b.Data); err != nil {
					b.lock.Unlock()
					c.put(b)
					return nil, err
				}
				b.valid = true
			}
			return b, nil
		}
	}
	c.misses++
	// Recycle the least-recently-released unreferenced buffer.
	var victim *Buf
	for _, b := range c.bufs {
		if b.refs != 0 {
			continue
		}
		if victim == nil || b.lru < victim.lru {
			victim = b
		}
	}
	if victim == nil {
		c.mu.Unlock()
		return nil, fmt.Errorf("bcache: all %d buffers referenced", len(c.bufs))
	}
	if victim.valid {
		c.evictions++
	}
	needWriteback := victim.dirty && victim.valid
	oldLBA := victim.lba
	victim.refs++
	victim.lba = lba
	victim.valid = false
	c.mu.Unlock()

	victim.lock.Lock(t)
	// Write the evicted block back before reusing the buffer.
	if needWriteback {
		if err := c.dev.WriteBlocks(oldLBA, 1, victim.Data); err != nil {
			victim.lock.Unlock()
			c.put(victim)
			return nil, err
		}
		c.mu.Lock()
		c.writebacks++
		c.mu.Unlock()
		victim.dirty = false
	}
	if err := c.dev.ReadBlocks(lba, 1, victim.Data); err != nil {
		victim.lock.Unlock()
		c.put(victim)
		return nil, err
	}
	victim.valid = true
	return victim, nil
}

// MarkDirty records that the caller modified the buffer.
func (c *Cache) MarkDirty(b *Buf) { b.dirty = true }

// Release unlocks and unpins a buffer.
func (c *Cache) Release(b *Buf) {
	b.lock.Unlock()
	c.put(b)
}

func (c *Cache) put(b *Buf) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if b.refs <= 0 {
		panic("bcache: release of unreferenced buffer")
	}
	b.refs--
	c.tick++
	b.lru = c.tick
}

// Flush writes every dirty buffer back to the device (unmount/shutdown).
func (c *Cache) Flush(t *sched.Task) error {
	c.mu.Lock()
	dirty := make([]*Buf, 0)
	for _, b := range c.bufs {
		if b.valid && b.dirty {
			b.refs++
			dirty = append(dirty, b)
		}
	}
	c.mu.Unlock()
	for _, b := range dirty {
		b.lock.Lock(t)
		if b.dirty && b.valid {
			if err := c.dev.WriteBlocks(b.lba, 1, b.Data); err != nil {
				c.Release(b)
				return err
			}
			c.mu.Lock()
			c.writebacks++
			c.mu.Unlock()
			b.dirty = false
		}
		c.Release(b)
	}
	return nil
}

// Stats reports cache behaviour.
func (c *Cache) Stats() (hits, misses, evictions, writebacks int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses, c.evictions, c.writebacks
}

// Device exposes the underlying block device (FAT32's range bypass needs
// it; that is the point of §5.2's optimization).
func (c *Cache) Device() fs.BlockDevice { return c.dev }
