package bcache

import (
	"sync"

	"protosim/internal/kernel/errseq"
)

// Owner is a file's writeback identity inside the cache: the errseq
// Stream its asynchronous write failures advance, plus the list of the
// file's own dirty buffers, so fsync can find them without scanning the
// whole cache.
//
// Filesystems keep one Owner per file identity — xv6fs keyed by inum,
// FAT32 by first cluster, in registries that OUTLIVE the in-memory inode,
// since write-behind buffers keep their owner tag past the last close and
// a reopened file's fsync must still find them — and tag the buffers that
// file dirties with it (MarkDirtyOwned/WriteRangeOwned). When a writeback
// nobody is waiting on fails — a kflushd daemon pass, an eviction
// writeback — the error advances the owning file's stream (and the
// cache's device-wide stream), instead of a single cache-wide latch: an
// fsync of file B can no longer be handed file A's daemon error.
//
// Error OBSERVATION is per open file description, not per Owner: each
// OpenFile samples the stream at open and observes its own cursor at
// fsync (fs.OpenFile.Sync), so two descriptors on one inode each hear
// about a failure exactly once — Linux's f_wb_err refinement of the
// per-inode stream. The embedded Stream's own Check remains for
// single-observer streams (the cache's device-wide stream, tests).
//
// The dirty list is maintained by the cache under each buffer's state
// transitions: an LBA is listed exactly while some cached buffer is
// valid+dirty and tagged with this Owner. Cache.FlushOwner snapshots it,
// making fsync O(dirty-own) instead of O(cache).
//
// The zero value is a ready, clean Owner. An Owner must not be copied
// after first use.
type Owner struct {
	errseq.Stream

	mu    sync.Mutex
	dirty map[int]struct{} // LBAs of this owner's valid+dirty buffers
}

// addDirty records that the buffer at lba is dirty and owned.
func (o *Owner) addDirty(lba int) {
	o.mu.Lock()
	if o.dirty == nil {
		o.dirty = make(map[int]struct{})
	}
	o.dirty[lba] = struct{}{}
	o.mu.Unlock()
}

// removeDirty records that lba's buffer is no longer this owner's dirty
// buffer (cleaned, or re-tagged to another owner).
func (o *Owner) removeDirty(lba int) {
	o.mu.Lock()
	delete(o.dirty, lba)
	o.mu.Unlock()
}

// snapshotDirty returns the owner's dirty LBAs at this instant. The
// snapshot is advisory: the flush path re-validates each buffer under its
// lock, so concurrent cleans and evictions are harmless.
func (o *Owner) snapshotDirty() []int {
	o.mu.Lock()
	defer o.mu.Unlock()
	if len(o.dirty) == 0 {
		return nil
	}
	out := make([]int, 0, len(o.dirty))
	for lba := range o.dirty {
		out = append(out, lba)
	}
	return out
}

// DirtyCount reports how many of the owner's buffers are dirty (tests:
// the per-owner list must track buffer state exactly).
func (o *Owner) DirtyCount() int {
	o.mu.Lock()
	defer o.mu.Unlock()
	return len(o.dirty)
}
