package bcache

import "sync"

// Owner is a per-file writeback-error stream, modeled on Linux's errseq_t.
// Filesystems keep one per file identity — xv6fs keyed by inum, FAT32 by
// first cluster, in registries that OUTLIVE the in-memory inode, since
// write-behind buffers keep their owner tag past the last close and a
// reopened file's fsync must still find them — and tag the buffers that
// file dirties with it (MarkDirtyOwned/WriteRangeOwned). When a writeback
// nobody is waiting on fails — a kflushd daemon pass, an eviction
// writeback — the error advances the owning file's stream (and the
// cache's device-wide stream), instead of a single cache-wide latch: an
// fsync of file B can no longer be handed file A's daemon error.
//
// The stream carries a sequence number that advances on every recorded
// failure and never rewinds — a later successful retry does not erase the
// epoch, so fsync semantics hold: once data failed to reach the device
// asynchronously, the next observation reports it even though the
// re-issued write landed. Each Owner has one observer, the file's fsync
// path (Cache.FlushOwner): it compares the stream position against the
// cursor of its last observation and advances the cursor, so every error
// epoch is reported exactly once to that observer and a clean stream
// stays silent. The cache itself holds an Owner as the whole-device
// stream, observed the same way by Cache.Flush (volume Sync / SysSync) —
// a second, independent observer, so a daemon error is reported once to
// the file that owned the buffer and once to the device-wide barrier.
//
// The zero value is a ready, clean stream. An Owner must not be copied
// after first use.
type Owner struct {
	mu    sync.Mutex
	seq   uint64 // stream position: advances on every recorded failure
	err   error  // the error recorded at seq
	since uint64 // the observer's cursor: stream position last reported
}

// record advances the stream with an asynchronous write failure.
func (o *Owner) record(err error) {
	o.mu.Lock()
	o.seq++
	o.err = err
	o.mu.Unlock()
}

// check is the observer's sample-and-compare: if the stream advanced past
// the cursor, report the recorded error once and move the cursor up.
func (o *Owner) check() error {
	o.mu.Lock()
	defer o.mu.Unlock()
	if o.since == o.seq {
		return nil
	}
	o.since = o.seq
	return o.err
}

// Pending reports whether the stream holds an error its observer has not
// yet seen (diagnostics and tests; a Sync/fsync path uses check via
// Flush/FlushOwner instead).
func (o *Owner) Pending() bool {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.since != o.seq
}
