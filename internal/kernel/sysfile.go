package kernel

import (
	"fmt"
	"strings"

	"protosim/internal/kernel/blkq"
	"protosim/internal/kernel/fs"
	"protosim/internal/kernel/sched"
	"protosim/internal/kernel/uring"
)

// count tallies a syscall entry (Fig 8's counters) and gives the scheduler
// a preemption checkpoint, as real syscall entry/exit paths do.
func (k *Kernel) count() { k.syscalls.Add(1) }

// resolvePath makes path absolute against the process cwd.
func (p *Proc) resolvePath(path string) string {
	if strings.HasPrefix(path, "/") {
		return fs.Clean(path)
	}
	return fs.Clean(p.cwd + "/" + path)
}

// --- File syscalls (11–23) ---
//
// Every descriptor resolves to a *fs.OpenFile — the kernel-owned open
// file description — and every operation dispatches through it. There are
// no type assertions left on this path: capabilities are the OpenFile's
// Caps bitmask, and unsupported operations fail with the right error
// (ErrBadSeek on a pipe lseek, ErrNotDir on a file readdir) inside the
// file layer.

// installOF wraps bare file ops in a fresh open file description and
// installs it, closing the description if the table is full — the one
// descriptor-minting helper for every kernel-created file (pipes,
// surfaces, surface event streams).
func (p *Proc) installOF(ops fs.FileOps, flags int) (int, error) {
	of := fs.NewOpenFile(ops, flags)
	fd, err := p.fds.Install(of)
	if err != nil {
		of.Close(p.Task)
		return -1, err
	}
	return fd, nil
}

// SysOpen opens path with flags and returns a descriptor.
func (p *Proc) SysOpen(path string, flags int) (int, error) {
	p.k.count()
	if p.fds == nil || p.k.VFS == nil {
		return -1, ErrNoFiles
	}
	of, err := p.k.VFS.Open(p.Task, p.resolvePath(path), flags)
	if err != nil {
		return -1, err
	}
	fd, err := p.fds.Install(of)
	if err != nil {
		of.Close(p.Task)
		return -1, err
	}
	return fd, nil
}

// SysClose releases a descriptor.
func (p *Proc) SysClose(fd int) error {
	p.k.count()
	if p.fds == nil {
		return ErrNoFiles
	}
	return p.fds.Close(p.Task, fd)
}

// SysRead reads up to len(buf) bytes from fd at the shared offset.
func (p *Proc) SysRead(fd int, buf []byte) (int, error) {
	p.k.count()
	if p.fds == nil {
		return 0, ErrNoFiles
	}
	of, err := p.fds.Get(fd)
	if err != nil {
		return 0, err
	}
	defer p.Task.CheckPreempt()
	return of.Read(p.Task, buf)
}

// SysWrite writes buf to fd at the shared offset (or at EOF under
// O_APPEND, atomically).
func (p *Proc) SysWrite(fd int, buf []byte) (int, error) {
	p.k.count()
	if p.fds == nil {
		return 0, ErrNoFiles
	}
	of, err := p.fds.Get(fd)
	if err != nil {
		return 0, err
	}
	defer p.Task.CheckPreempt()
	return of.Write(p.Task, buf)
}

// SysPread reads up to len(buf) bytes at absolute offset off, leaving the
// shared file offset untouched — no seek round-trip and no offset lock,
// so concurrent positional readers of one descriptor never serialize on
// the descriptor at all.
func (p *Proc) SysPread(fd int, buf []byte, off int64) (int, error) {
	p.k.count()
	if p.fds == nil {
		return 0, ErrNoFiles
	}
	of, err := p.fds.Get(fd)
	if err != nil {
		return 0, err
	}
	defer p.Task.CheckPreempt()
	return of.Pread(p.Task, buf, off)
}

// SysPwrite writes buf at absolute offset off, leaving the shared file
// offset untouched.
func (p *Proc) SysPwrite(fd int, buf []byte, off int64) (int, error) {
	p.k.count()
	if p.fds == nil {
		return 0, ErrNoFiles
	}
	of, err := p.fds.Get(fd)
	if err != nil {
		return 0, err
	}
	defer p.Task.CheckPreempt()
	return of.Pwrite(p.Task, buf, off)
}

// SysReadv reads into the vector of buffers as one contiguous operation
// at the shared offset (readv).
func (p *Proc) SysReadv(fd int, iovs [][]byte) (int, error) {
	p.k.count()
	if p.fds == nil {
		return 0, ErrNoFiles
	}
	of, err := p.fds.Get(fd)
	if err != nil {
		return 0, err
	}
	defer p.Task.CheckPreempt()
	return of.Readv(p.Task, iovs)
}

// SysPreadv scatters one contiguous read at absolute offset off into the
// vector of buffers (preadv): Readv's coalescing with Pread's offset
// discipline — the shared offset is never consulted or advanced.
func (p *Proc) SysPreadv(fd int, iovs [][]byte, off int64) (int, error) {
	p.k.count()
	if p.fds == nil {
		return 0, ErrNoFiles
	}
	of, err := p.fds.Get(fd)
	if err != nil {
		return 0, err
	}
	defer p.Task.CheckPreempt()
	return of.Preadv(p.Task, iovs, off)
}

// SysPwritev gathers the vector of buffers into ONE contiguous write at
// absolute offset off (pwritev), leaving the shared offset untouched.
func (p *Proc) SysPwritev(fd int, iovs [][]byte, off int64) (int, error) {
	p.k.count()
	if p.fds == nil {
		return 0, ErrNoFiles
	}
	of, err := p.fds.Get(fd)
	if err != nil {
		return 0, err
	}
	defer p.Task.CheckPreempt()
	return of.Pwritev(p.Task, iovs, off)
}

// SysWritev gathers the vector of buffers and writes them as ONE
// contiguous span at the shared offset (writev): one inode lock, one
// coalesced cache range-write — and under O_APPEND the whole vector is
// one atomic record.
func (p *Proc) SysWritev(fd int, iovs [][]byte) (int, error) {
	p.k.count()
	if p.fds == nil {
		return 0, ErrNoFiles
	}
	of, err := p.fds.Get(fd)
	if err != nil {
		return 0, err
	}
	defer p.Task.CheckPreempt()
	return of.Writev(p.Task, iovs)
}

// SysLseek repositions fd's shared offset.
func (p *Proc) SysLseek(fd int, off int64, whence int) (int64, error) {
	p.k.count()
	if p.fds == nil {
		return 0, ErrNoFiles
	}
	of, err := p.fds.Get(fd)
	if err != nil {
		return 0, err
	}
	return of.Seek(p.Task, off, whence)
}

// SysDup duplicates fd: both descriptors share one open file description —
// offset, flags and writeback-error cursor move together, as POSIX
// specifies for dup/fork.
func (p *Proc) SysDup(fd int) (int, error) {
	p.k.count()
	if p.fds == nil {
		return -1, ErrNoFiles
	}
	return p.fds.Dup(fd)
}

// SysPipe creates a pipe, returning (readFD, writeFD).
func (p *Proc) SysPipe() (int, int, error) {
	p.k.count()
	if p.fds == nil {
		return -1, -1, ErrNoFiles
	}
	r, w := fs.NewPipe()
	rfd, err := p.installOF(r, fs.ORdOnly)
	if err != nil {
		w.Close(p.Task)
		return -1, -1, err
	}
	wfd, err := p.installOF(w, fs.OWrOnly)
	if err != nil {
		p.fds.Close(p.Task, rfd)
		return -1, -1, err
	}
	return rfd, wfd, nil
}

// SysMkdir creates a directory.
func (p *Proc) SysMkdir(path string) error {
	p.k.count()
	if p.k.VFS == nil {
		return ErrNoFiles
	}
	return p.k.VFS.Mkdir(p.Task, p.resolvePath(path))
}

// SysUnlink removes a file or empty directory.
func (p *Proc) SysUnlink(path string) error {
	p.k.count()
	if p.k.VFS == nil {
		return ErrNoFiles
	}
	return p.k.VFS.Unlink(p.Task, p.resolvePath(path))
}

// SysSync flushes every mounted filesystem's dirty state to its device —
// the durability barrier user programs need now that writes are
// write-behind. It reports asynchronous writeback errors (daemon or
// eviction write failures since the last sync), fsync-style.
func (p *Proc) SysSync() error {
	p.k.count()
	if p.k.VFS == nil {
		return ErrNoFiles
	}
	return p.k.VFS.SyncAll(p.Task)
}

// SysFsync flushes one open file's data (and its reachable metadata) to
// stable storage — fsync(2), the per-file durability barrier. Error
// reporting is per DESCRIPTOR: the open file description observes its own
// errseq cursor, so an asynchronous writeback failure of this file is
// reported exactly once to each descriptor that fsyncs — another
// descriptor's earlier fsync does not consume this one's report, and
// another file's failure is never seen here. Descriptors with nothing to
// flush (devices, pipes) return nil.
func (p *Proc) SysFsync(fd int) error {
	p.k.count()
	if p.fds == nil {
		return ErrNoFiles
	}
	of, err := p.fds.Get(fd)
	if err != nil {
		return err
	}
	defer p.Task.CheckPreempt()
	return of.Sync(p.Task)
}

// SysRename atomically moves a file or directory within one filesystem,
// replacing an existing target (POSIX rename semantics).
func (p *Proc) SysRename(oldPath, newPath string) error {
	p.k.count()
	if p.k.VFS == nil {
		return ErrNoFiles
	}
	return p.k.VFS.Rename(p.Task, p.resolvePath(oldPath), p.resolvePath(newPath))
}

// SysFstat stats an open descriptor.
func (p *Proc) SysFstat(fd int) (fs.Stat, error) {
	p.k.count()
	if p.fds == nil {
		return fs.Stat{}, ErrNoFiles
	}
	of, err := p.fds.Get(fd)
	if err != nil {
		return fs.Stat{}, err
	}
	return of.Stat(p.Task)
}

// SysStat stats a path (convenience wrapper the shell uses; counted under
// fstat in the syscall tally).
func (p *Proc) SysStat(path string) (fs.Stat, error) {
	p.k.count()
	if p.k.VFS == nil {
		return fs.Stat{}, ErrNoFiles
	}
	return p.k.VFS.Stat(p.Task, p.resolvePath(path))
}

// SysChdir changes the working directory.
func (p *Proc) SysChdir(path string) error {
	p.k.count()
	if p.k.VFS == nil {
		return ErrNoFiles
	}
	abs := p.resolvePath(path)
	st, err := p.k.VFS.Stat(p.Task, abs)
	if err != nil {
		return err
	}
	if st.Type != fs.TypeDir {
		return fs.ErrNotDir
	}
	p.cwd = abs
	return nil
}

// Cwd returns the working directory.
func (p *Proc) Cwd() string { return p.cwd }

// SysReadDir lists an open directory.
func (p *Proc) SysReadDir(fd int) ([]fs.DirEntry, error) {
	p.k.count()
	if p.fds == nil {
		return nil, ErrNoFiles
	}
	of, err := p.fds.Get(fd)
	if err != nil {
		return nil, err
	}
	return of.ReadDir(p.Task)
}

// Ioctl operation numbers.
const (
	IoctlFBFlush    = 1 // /dev/fb: flush the whole framebuffer
	IoctlFBInfo     = 2 // /dev/fb: returns (width<<32 | height)
	IoctlNonblock   = 3 // /dev/events, /dev/event1: toggle non-blocking
	IoctlSurfSize   = 4 // /dev/surface: arg = width<<32 | height
	IoctlSurfAlpha  = 5 // /dev/surface: arg = alpha 0..255
	IoctlSoundDrain = 6 // /dev/sb: block until the audio ring drains
)

// SysIoctl issues a device control operation on fd.
func (p *Proc) SysIoctl(fd int, op int, arg int64) (int64, error) {
	p.k.count()
	if p.fds == nil {
		return 0, ErrNoFiles
	}
	of, err := p.fds.Get(fd)
	if err != nil {
		return 0, err
	}
	return of.Ioctl(p.Task, op, arg)
}

// --- Ring syscalls (batched file IO, internal/kernel/uring) ---

// SysRingSetup creates the process group's submission/completion ring
// with `entries` pooled SQE slots and returns its handle. The handle's
// Queue/Reap faces are the "shared memory" halves — user code stages
// SQEs and reaps CQEs without entering the kernel; only SysRingEnter is
// a syscall. One ring per process group (threads share it, like the FD
// table); a second setup fails with ErrRingExists. The ring is closed
// automatically on process exit, before the descriptor table is torn
// down.
func (p *Proc) SysRingSetup(entries int) (*uring.Ring, error) {
	p.k.count()
	if p.fds == nil {
		return nil, ErrNoFiles
	}
	k := p.k
	// The drain bracket plugs every request queue in the system: a batch's
	// first dispatches accumulate and merge regardless of which device the
	// descriptors resolve to.
	var queues []*blkq.Queue
	for _, d := range k.blockDevs {
		if q := d.Queue(); q != nil {
			queues = append(queues, q)
		}
	}
	g := p.group
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.ring != nil {
		return nil, ErrRingExists
	}
	r, err := uring.New(entries, p.fds, uring.Options{
		Spawn: func(name string, fn func(t *sched.Task)) *sched.Task {
			// Ring workers are kernel tasks at the kflushd priority: batch
			// IO runs above bulk user compute but below the interactive
			// tier.
			return k.Sched.Go(fmt.Sprintf("uring-%d-%s", g.PID, name), 1, fn)
		},
		Plug: func(t *sched.Task) {
			for _, q := range queues {
				q.Plug(t)
			}
		},
		Unplug: func(t *sched.Task) {
			for _, q := range queues {
				q.Unplug(t)
			}
		},
	})
	if err != nil {
		return nil, err
	}
	g.ring = r
	return r, nil
}

// SysRingEnter is the ring's one kernel entry: it hands up to toSubmit
// staged SQEs to the worker pool — the whole batch under ONE scheduler
// entry and one Plug/Unplug bracket, however many operations it carries —
// and blocks until at least minComplete completions are reapable
// (clamped to the number that can still arrive). It returns how many
// entries were handed off. Compare SysPread and friends, which pay this
// entry per operation.
func (p *Proc) SysRingEnter(toSubmit, minComplete int) (int, error) {
	p.k.count()
	if p.fds == nil {
		return 0, ErrNoFiles
	}
	g := p.group
	g.mu.Lock()
	r := g.ring
	g.mu.Unlock()
	if r == nil {
		return 0, ErrNoRing
	}
	defer p.Task.CheckPreempt()
	return r.Enter(p.Task, toSubmit, minComplete)
}

// Ring returns the group's ring handle (nil before SysRingSetup) — the
// accessor user code uses to Queue/Reap after a fork/exec boundary where
// the setup-time handle was not threaded through.
func (p *Proc) Ring() *uring.Ring {
	g := p.group
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.ring
}

// readAll slurps a file (the exec loader path).
func (p *Proc) readAll(path string) ([]byte, error) {
	of, err := p.k.VFS.Open(p.Task, p.resolvePath(path), fs.ORdOnly)
	if err != nil {
		return nil, err
	}
	defer of.Close(p.Task)
	st, err := of.Stat(p.Task)
	if err != nil {
		return nil, err
	}
	out := make([]byte, 0, st.Size)
	buf := make([]byte, 32*1024)
	for {
		n, err := of.Read(p.Task, buf)
		if err != nil {
			return nil, err
		}
		if n == 0 {
			return out, nil
		}
		out = append(out, buf[:n]...)
	}
}
