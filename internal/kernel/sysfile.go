package kernel

import (
	"fmt"
	"strings"

	"protosim/internal/kernel/fs"
)

// count tallies a syscall entry (Fig 8's counters) and gives the scheduler
// a preemption checkpoint, as real syscall entry/exit paths do.
func (k *Kernel) count() { k.syscalls.Add(1) }

// resolvePath makes path absolute against the process cwd.
func (p *Proc) resolvePath(path string) string {
	if strings.HasPrefix(path, "/") {
		return fs.Clean(path)
	}
	return fs.Clean(p.cwd + "/" + path)
}

// --- File syscalls (11–23) ---

// SysOpen opens path with flags and returns a descriptor.
func (p *Proc) SysOpen(path string, flags int) (int, error) {
	p.k.count()
	if p.fds == nil || p.k.VFS == nil {
		return -1, ErrNoFiles
	}
	f, err := p.k.VFS.Open(p.Task, p.resolvePath(path), flags)
	if err != nil {
		return -1, err
	}
	return p.fds.Install(f, flags)
}

// SysClose releases a descriptor.
func (p *Proc) SysClose(fd int) error {
	p.k.count()
	if p.fds == nil {
		return ErrNoFiles
	}
	return p.fds.CloseTask(p.Task, fd)
}

// SysRead reads up to len(buf) bytes from fd.
func (p *Proc) SysRead(fd int, buf []byte) (int, error) {
	p.k.count()
	if p.fds == nil {
		return 0, ErrNoFiles
	}
	f, err := p.fds.Get(fd)
	if err != nil {
		return 0, err
	}
	defer p.Task.CheckPreempt()
	return f.Read(p.Task, buf)
}

// SysWrite writes buf to fd.
func (p *Proc) SysWrite(fd int, buf []byte) (int, error) {
	p.k.count()
	if p.fds == nil {
		return 0, ErrNoFiles
	}
	f, err := p.fds.Get(fd)
	if err != nil {
		return 0, err
	}
	defer p.Task.CheckPreempt()
	return f.Write(p.Task, buf)
}

// SysLseek repositions fd.
func (p *Proc) SysLseek(fd int, off int64, whence int) (int64, error) {
	p.k.count()
	if p.fds == nil {
		return 0, ErrNoFiles
	}
	f, err := p.fds.Get(fd)
	if err != nil {
		return 0, err
	}
	sk, ok := f.(fs.Seeker)
	if !ok {
		return 0, fs.ErrBadSeek
	}
	return sk.Lseek(off, whence)
}

// SysDup duplicates fd.
func (p *Proc) SysDup(fd int) (int, error) {
	p.k.count()
	if p.fds == nil {
		return -1, ErrNoFiles
	}
	return p.fds.Dup(fd)
}

// SysPipe creates a pipe, returning (readFD, writeFD).
func (p *Proc) SysPipe() (int, int, error) {
	p.k.count()
	if p.fds == nil {
		return -1, -1, ErrNoFiles
	}
	r, w := fs.NewPipe()
	rfd, err := p.fds.Install(r, fs.ORdOnly)
	if err != nil {
		return -1, -1, err
	}
	wfd, err := p.fds.Install(w, fs.OWrOnly)
	if err != nil {
		p.fds.Close(rfd)
		return -1, -1, err
	}
	return rfd, wfd, nil
}

// SysMkdir creates a directory.
func (p *Proc) SysMkdir(path string) error {
	p.k.count()
	if p.k.VFS == nil {
		return ErrNoFiles
	}
	return p.k.VFS.Mkdir(p.Task, p.resolvePath(path))
}

// SysUnlink removes a file or empty directory.
func (p *Proc) SysUnlink(path string) error {
	p.k.count()
	if p.k.VFS == nil {
		return ErrNoFiles
	}
	return p.k.VFS.Unlink(p.Task, p.resolvePath(path))
}

// SysSync flushes every mounted filesystem's dirty state to its device —
// the durability barrier user programs need now that writes are
// write-behind. It reports asynchronous writeback errors (daemon or
// eviction write failures since the last sync), fsync-style.
func (p *Proc) SysSync() error {
	p.k.count()
	if p.k.VFS == nil {
		return ErrNoFiles
	}
	return p.k.VFS.SyncAll(p.Task)
}

// SysFsync flushes one open file's data (and its reachable metadata) to
// stable storage — fsync(2), the per-file durability barrier. Unlike
// SysSync it reports only this file's asynchronous writeback errors:
// another file's daemon write failure stays on that file's stream and the
// whole-device barrier, never here. Descriptors with nothing to flush
// (devices, pipes) return nil.
func (p *Proc) SysFsync(fd int) error {
	p.k.count()
	if p.fds == nil {
		return ErrNoFiles
	}
	f, err := p.fds.Get(fd)
	if err != nil {
		return err
	}
	fsy, ok := f.(fs.FileSyncer)
	if !ok {
		return nil
	}
	defer p.Task.CheckPreempt()
	return fsy.SyncT(p.Task)
}

// SysRename atomically moves a file or directory within one filesystem.
func (p *Proc) SysRename(oldPath, newPath string) error {
	p.k.count()
	if p.k.VFS == nil {
		return ErrNoFiles
	}
	return p.k.VFS.Rename(p.Task, p.resolvePath(oldPath), p.resolvePath(newPath))
}

// SysFstat stats an open descriptor.
func (p *Proc) SysFstat(fd int) (fs.Stat, error) {
	p.k.count()
	if p.fds == nil {
		return fs.Stat{}, ErrNoFiles
	}
	f, err := p.fds.Get(fd)
	if err != nil {
		return fs.Stat{}, err
	}
	if ts, ok := f.(fs.TaskStater); ok {
		return ts.StatT(p.Task)
	}
	return f.Stat()
}

// SysStat stats a path (convenience wrapper the shell uses; counted under
// fstat in the syscall tally).
func (p *Proc) SysStat(path string) (fs.Stat, error) {
	p.k.count()
	if p.k.VFS == nil {
		return fs.Stat{}, ErrNoFiles
	}
	return p.k.VFS.Stat(p.Task, p.resolvePath(path))
}

// SysChdir changes the working directory.
func (p *Proc) SysChdir(path string) error {
	p.k.count()
	if p.k.VFS == nil {
		return ErrNoFiles
	}
	abs := p.resolvePath(path)
	st, err := p.k.VFS.Stat(p.Task, abs)
	if err != nil {
		return err
	}
	if st.Type != fs.TypeDir {
		return fs.ErrNotDir
	}
	p.cwd = abs
	return nil
}

// Cwd returns the working directory.
func (p *Proc) Cwd() string { return p.cwd }

// SysReadDir lists an open directory.
func (p *Proc) SysReadDir(fd int) ([]fs.DirEntry, error) {
	p.k.count()
	if p.fds == nil {
		return nil, ErrNoFiles
	}
	f, err := p.fds.Get(fd)
	if err != nil {
		return nil, err
	}
	if tdr, ok := f.(fs.TaskDirReader); ok {
		return tdr.ReadDirT(p.Task)
	}
	dr, ok := f.(fs.DirReader)
	if !ok {
		return nil, fs.ErrNotDir
	}
	return dr.ReadDir()
}

// Ioctl operation numbers.
const (
	IoctlFBFlush    = 1 // /dev/fb: flush the whole framebuffer
	IoctlFBInfo     = 2 // /dev/fb: returns (width<<32 | height)
	IoctlNonblock   = 3 // /dev/events, /dev/event1: toggle non-blocking
	IoctlSurfSize   = 4 // /dev/surface: arg = width<<32 | height
	IoctlSurfAlpha  = 5 // /dev/surface: arg = alpha 0..255
	IoctlSoundDrain = 6 // /dev/sb: block until the audio ring drains
)

// SysIoctl issues a device control operation on fd.
func (p *Proc) SysIoctl(fd int, op int, arg int64) (int64, error) {
	p.k.count()
	if p.fds == nil {
		return 0, ErrNoFiles
	}
	f, err := p.fds.Get(fd)
	if err != nil {
		return 0, err
	}
	ic, ok := f.(fs.Ioctler)
	if !ok {
		return 0, fmt.Errorf("kernel: fd %d does not support ioctl", fd)
	}
	return ic.Ioctl(p.Task, op, arg)
}

// readAll slurps a file (the exec loader path).
func (p *Proc) readAll(path string) ([]byte, error) {
	f, err := p.k.VFS.Open(p.Task, p.resolvePath(path), fs.ORdOnly)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return nil, err
	}
	out := make([]byte, 0, st.Size)
	buf := make([]byte, 32*1024)
	for {
		n, err := f.Read(p.Task, buf)
		if err != nil {
			return nil, err
		}
		if n == 0 {
			return out, nil
		}
		out = append(out, buf[:n]...)
	}
}
