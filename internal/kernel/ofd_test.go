package kernel

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"testing"

	"protosim/internal/kernel/fs"
)

// These tests pin down the open-file-description contract the fs.OpenFile
// redesign introduced: dup/fork share ONE offset, O_APPEND appends are
// atomic across concurrent writers, pread takes no offset lock (so it can
// race lseek on a shared descriptor without ever seeing its effects), and
// the vectored calls move whole iovecs as single operations.

func TestDupSharesOffset(t *testing.T) {
	k := bootKernel(t, 2, nil)
	code := run(t, k, "dup-offset", func(p *Proc, _ []string) int {
		fd, err := p.SysOpen("/shared.txt", fs.OCreate|fs.ORdWr)
		if err != nil {
			return 1
		}
		if _, err := p.SysWrite(fd, []byte("abcdef")); err != nil {
			return 2
		}
		if _, err := p.SysLseek(fd, 0, fs.SeekSet); err != nil {
			return 3
		}
		fd2, err := p.SysDup(fd)
		if err != nil {
			return 4
		}
		b := make([]byte, 2)
		p.SysRead(fd, b) // "ab" through fd
		if _, err := p.SysRead(fd2, b); err != nil {
			return 5
		}
		if string(b) != "cd" { // fd2 continues where fd left off
			return 6
		}
		// Seeking through one descriptor moves the other.
		if _, err := p.SysLseek(fd2, 1, fs.SeekSet); err != nil {
			return 7
		}
		p.SysRead(fd, b)
		if string(b) != "bc" {
			return 8
		}
		p.SysClose(fd)
		// The description survives the sibling close, offset intact.
		p.SysRead(fd2, b)
		if string(b) != "de" {
			return 9
		}
		p.SysClose(fd2)
		return 0
	})
	if code != 0 {
		t.Fatalf("exit = %d", code)
	}
}

func TestForkSharesOffset(t *testing.T) {
	k := bootKernel(t, 2, nil)
	code := run(t, k, "fork-offset", func(p *Proc, _ []string) int {
		fd, err := p.SysOpen("/forked.txt", fs.OCreate|fs.ORdWr)
		if err != nil {
			return 1
		}
		p.SysWrite(fd, []byte("0123456789"))
		p.SysLseek(fd, 0, fs.SeekSet)
		b := make([]byte, 2)
		p.SysRead(fd, b) // parent consumes "01"
		childRead := make(chan string, 1)
		if _, err := p.SysFork(func(c *Proc) {
			cb := make([]byte, 2)
			c.SysRead(fd, cb) // child continues at "23" — xv6/POSIX fork
			childRead <- string(cb)
		}); err != nil {
			return 2
		}
		p.SysWait()
		if got := <-childRead; got != "23" {
			return 3
		}
		// And the child's read moved the parent's offset too.
		p.SysRead(fd, b)
		if string(b) != "45" {
			return 4
		}
		return 0
	})
	if code != 0 {
		t.Fatalf("exit = %d", code)
	}
}

// TestAppendAtomicConcurrentWriters is the O_APPEND contract: 8 forked
// writers blast distinctive records through ONE shared O_APPEND
// description plus their own private descriptions, and every record must
// land contiguous and whole — the EOF resolution happens under the inode
// lock inside Pwrite(OffAppend), so no two appends can interleave.
func TestAppendAtomicConcurrentWriters(t *testing.T) {
	const (
		writers = 8
		rounds  = 12
		recSize = 700 // straddles block boundaries
	)
	k := bootKernel(t, 4, nil)
	code := run(t, k, "append-atomic", func(p *Proc, _ []string) int {
		shared, err := p.SysOpen("/log.dat", fs.OCreate|fs.OWrOnly|fs.OAppend)
		if err != nil {
			return 1
		}
		for w := 0; w < writers; w++ {
			w := w
			if _, err := p.SysFork(func(c *Proc) {
				// Half the writers use the fork-shared description, half
				// open their own — append atomicity must hold either way.
				fd := shared
				if w%2 == 1 {
					own, err := c.SysOpen("/log.dat", fs.OWrOnly|fs.OAppend)
					if err != nil {
						c.SysExit(10)
					}
					fd = own
				}
				rec := bytes.Repeat([]byte{byte('A' + w)}, recSize)
				for r := 0; r < rounds; r++ {
					n, err := c.SysWrite(fd, rec)
					if err != nil || n != recSize {
						c.SysExit(11)
					}
				}
				c.SysExit(0)
			}); err != nil {
				return 2
			}
		}
		for w := 0; w < writers; w++ {
			if _, status, err := p.SysWait(); err != nil || status != 0 {
				return 20 + status
			}
		}
		return 0
	})
	if code != 0 {
		t.Fatalf("writer exit = %d", code)
	}
	// Verify: every record contiguous, counts exact.
	code = run(t, k, "append-verify", func(p *Proc, _ []string) int {
		fd, err := p.SysOpen("/log.dat", fs.ORdOnly)
		if err != nil {
			return 1
		}
		st, err := p.SysFstat(fd)
		if err != nil || st.Size != int64(writers*rounds*recSize) {
			return 2
		}
		counts := make(map[byte]int)
		rec := make([]byte, recSize)
		for off := int64(0); off < st.Size; off += recSize {
			if n, err := p.SysPread(fd, rec, off); err != nil || n != recSize {
				return 3
			}
			for _, b := range rec[1:] {
				if b != rec[0] {
					return 4 // torn record: two appenders interleaved
				}
			}
			counts[rec[0]]++
		}
		for w := 0; w < writers; w++ {
			if counts[byte('A'+w)] != rounds {
				return 5
			}
		}
		return 0
	})
	if code != 0 {
		t.Fatalf("verify exit = %d", code)
	}
}

// TestPreadRacesLseek: pread never touches the shared offset, so a
// positional reader racing an lseek+read loop on the SAME description
// must always see the bytes at its explicit offset — and the offset lock
// never serializes it.
func TestPreadRacesLseek(t *testing.T) {
	k := bootKernel(t, 4, nil)
	code := run(t, k, "pread-race", func(p *Proc, _ []string) int {
		fd, err := p.SysOpen("/race.bin", fs.OCreate|fs.ORdWr)
		if err != nil {
			return 1
		}
		// 16 blocks, each filled with its own index byte.
		blk := make([]byte, 512)
		for i := 0; i < 16; i++ {
			for j := range blk {
				blk[j] = byte(i)
			}
			if _, err := p.SysWrite(fd, blk); err != nil {
				return 2
			}
		}
		const iters = 300
		if _, err := p.SysFork(func(c *Proc) {
			// The seeker thrashes the shared offset.
			b := make([]byte, 64)
			for i := 0; i < iters; i++ {
				c.SysLseek(fd, int64((i%16)*512), fs.SeekSet)
				c.SysRead(fd, b)
			}
			c.SysExit(0)
		}); err != nil {
			return 3
		}
		// The positional reader: offset 7*512 always holds 0x07.
		b := make([]byte, 128)
		for i := 0; i < iters; i++ {
			n, err := p.SysPread(fd, b, 7*512)
			if err != nil || n != len(b) {
				return 4
			}
			for _, x := range b[:n] {
				if x != 7 {
					return 5 // pread was dragged off its offset
				}
			}
		}
		p.SysWait()
		// The shared offset was moved by the seeker child, never by pread:
		// it must be block-aligned, not 7*512+128-aligned.
		if off, err := p.SysLseek(fd, 0, fs.SeekCur); err != nil || off%512 == 128 {
			return 6
		}
		return 0
	})
	if code != 0 {
		t.Fatalf("exit = %d", code)
	}
}

func TestPreadPwriteAndVectored(t *testing.T) {
	k := bootKernel(t, 2, nil)
	code := run(t, k, "pio", func(p *Proc, _ []string) int {
		fd, err := p.SysOpen("/pio.bin", fs.OCreate|fs.ORdWr)
		if err != nil {
			return 1
		}
		// Pwrite at an offset past EOF, then pread it back; the shared
		// offset must still be 0.
		if n, err := p.SysPwrite(fd, []byte("hello"), 1000); err != nil || n != 5 {
			return 2
		}
		b := make([]byte, 5)
		if n, err := p.SysPread(fd, b, 1000); err != nil || n != 5 || string(b) != "hello" {
			return 3
		}
		if off, _ := p.SysLseek(fd, 0, fs.SeekCur); off != 0 {
			return 4
		}
		// The gap reads back as zeros.
		gap := make([]byte, 4)
		if n, _ := p.SysPread(fd, gap, 500); n != 4 || !bytes.Equal(gap, make([]byte, 4)) {
			return 5
		}
		// Writev gathers one contiguous span; readv scatters it back.
		if n, err := p.SysWritev(fd, [][]byte{[]byte("vec"), []byte("tor"), []byte("ed!")}); err != nil || n != 9 {
			return 6
		}
		p.SysLseek(fd, 0, fs.SeekSet)
		v1, v2 := make([]byte, 4), make([]byte, 5)
		if n, err := p.SysReadv(fd, [][]byte{v1, v2}); err != nil || n != 9 {
			return 7
		}
		if string(v1) != "vect" || string(v2) != "ored!" {
			return 8
		}
		// Negative offsets are rejected.
		if _, err := p.SysPread(fd, b, -1); !errors.Is(err, fs.ErrBadSeek) {
			return 9
		}
		return 0
	})
	if code != 0 {
		t.Fatalf("exit = %d", code)
	}
}

// TestPreadvPwritevPositional: the positional vectored calls move whole
// iovecs at an absolute offset — gathered/scattered as single operations
// like writev/readv, offset-silent like pwrite/pread — and inherit both
// families' error contracts (ESPIPE on streams, EINVAL on negative
// offsets, mode checks even for empty vectors).
func TestPreadvPwritevPositional(t *testing.T) {
	k := bootKernel(t, 2, nil)
	code := run(t, k, "pvec", func(p *Proc, _ []string) int {
		fd, err := p.SysOpen("/pvec.bin", fs.OCreate|fs.ORdWr)
		if err != nil {
			return 1
		}
		// Park the shared offset mid-file to prove the vectored
		// positional calls never consult or move it.
		if _, err := p.SysWrite(fd, []byte("0123456789")); err != nil {
			return 2
		}
		if _, err := p.SysLseek(fd, 4, fs.SeekSet); err != nil {
			return 3
		}
		if n, err := p.SysPwritev(fd, [][]byte{[]byte("gath"), []byte("ered")}, 100); err != nil || n != 8 {
			return 4
		}
		v1, v2, v3 := make([]byte, 3), make([]byte, 3), make([]byte, 2)
		if n, err := p.SysPreadv(fd, [][]byte{v1, v2, v3}, 100); err != nil || n != 8 {
			return 5
		}
		if string(v1)+string(v2)+string(v3) != "gathered" {
			return 6
		}
		if off, _ := p.SysLseek(fd, 0, fs.SeekCur); off != 4 {
			return 7
		}
		// A short vector at EOF fills what exists and reports the truth.
		tail := make([]byte, 16)
		if n, err := p.SysPreadv(fd, [][]byte{tail}, 104); err != nil || n != 4 {
			return 8
		}
		if string(tail[:4]) != "ered" {
			return 9
		}
		// Negative offsets are rejected, as for pread/pwrite.
		if _, err := p.SysPreadv(fd, [][]byte{v1}, -1); !errors.Is(err, fs.ErrBadSeek) {
			return 10
		}
		if _, err := p.SysPwritev(fd, [][]byte{v1}, -1); !errors.Is(err, fs.ErrBadSeek) {
			return 11
		}
		// Streams have no position: ESPIPE, even for an empty vector.
		r, w, err := p.SysPipe()
		if err != nil {
			return 12
		}
		if _, err := p.SysPreadv(r, nil, 0); !errors.Is(err, fs.ErrBadSeek) {
			return 13
		}
		if _, err := p.SysPwritev(w, nil, 0); !errors.Is(err, fs.ErrBadSeek) {
			return 14
		}
		// Mode checks: a read-only descriptor refuses pwritev.
		ro, err := p.SysOpen("/pvec.bin", fs.ORdOnly)
		if err != nil {
			return 15
		}
		if _, err := p.SysPwritev(ro, [][]byte{[]byte("x")}, 0); !errors.Is(err, fs.ErrPerm) {
			return 16
		}
		p.SysClose(ro)
		p.SysClose(r)
		p.SysClose(w)
		p.SysClose(fd)
		return 0
	})
	if code != 0 {
		t.Fatalf("exit = %d", code)
	}
}

// TestStreamFilesRejectPositional: pipes have no position — lseek and
// pread fail with ErrBadSeek (ESPIPE), via the Caps bitmask rather than a
// type assertion.
func TestStreamFilesRejectPositional(t *testing.T) {
	k := bootKernel(t, 2, nil)
	code := run(t, k, "espipe", func(p *Proc, _ []string) int {
		r, w, err := p.SysPipe()
		if err != nil {
			return 1
		}
		if _, err := p.SysLseek(r, 0, fs.SeekSet); !errors.Is(err, fs.ErrBadSeek) {
			return 2
		}
		if _, err := p.SysPread(r, make([]byte, 4), 0); !errors.Is(err, fs.ErrBadSeek) {
			return 3
		}
		if _, err := p.SysPwrite(w, []byte("x"), 0); !errors.Is(err, fs.ErrBadSeek) {
			return 4
		}
		// Writing the read end is refused by the OFD's access mode.
		if _, err := p.SysWrite(r, []byte("x")); !errors.Is(err, fs.ErrPerm) {
			return 5
		}
		p.SysClose(r)
		p.SysClose(w)
		return 0
	})
	if code != 0 {
		t.Fatalf("exit = %d", code)
	}
}

// TestWritevAppendIsOneRecord: a vectored append lands as one contiguous
// record even with a rival appender between every syscall — the gather
// happens before a single Pwrite(OffAppend).
func TestWritevAppendIsOneRecord(t *testing.T) {
	k := bootKernel(t, 4, nil)
	code := run(t, k, "writev-append", func(p *Proc, _ []string) int {
		fd, err := p.SysOpen("/wv.log", fs.OCreate|fs.OWrOnly|fs.OAppend)
		if err != nil {
			return 1
		}
		const rounds = 40
		var wg sync.WaitGroup
		errs := make(chan int, 2)
		wg.Add(1)
		if _, err := p.SysFork(func(c *Proc) {
			defer wg.Done()
			own, err := c.SysOpen("/wv.log", fs.OWrOnly|fs.OAppend)
			if err != nil {
				errs <- 2
				return
			}
			rec := bytes.Repeat([]byte{'z'}, 90)
			for i := 0; i < rounds; i++ {
				if _, err := c.SysWrite(own, rec); err != nil {
					errs <- 3
					return
				}
			}
		}); err != nil {
			return 4
		}
		for i := 0; i < rounds; i++ {
			n, err := p.SysWritev(fd, [][]byte{
				bytes.Repeat([]byte{'x'}, 30),
				bytes.Repeat([]byte{'y'}, 60),
			})
			if err != nil || n != 90 {
				return 5
			}
		}
		p.SysWait()
		wg.Wait()
		select {
		case c := <-errs:
			return c
		default:
		}
		// Every 90-byte record is either all-z or exactly 30 x then 60 y.
		data, err := readWhole(p, "/wv.log")
		if err != nil || len(data) != 2*rounds*90 {
			return 6
		}
		for off := 0; off < len(data); off += 90 {
			rec := data[off : off+90]
			if rec[0] == 'z' {
				if !bytes.Equal(rec, bytes.Repeat([]byte{'z'}, 90)) {
					return 7
				}
				continue
			}
			want := append(bytes.Repeat([]byte{'x'}, 30), bytes.Repeat([]byte{'y'}, 60)...)
			if !bytes.Equal(rec, want) {
				return 8 // the vector was torn across the append
			}
		}
		return 0
	})
	if code != 0 {
		t.Fatalf("exit = %d", code)
	}
}

// readWhole slurps a file through pread, fstat-sized.
func readWhole(p *Proc, path string) ([]byte, error) {
	fd, err := p.SysOpen(path, fs.ORdOnly)
	if err != nil {
		return nil, err
	}
	defer p.SysClose(fd)
	st, err := p.SysFstat(fd)
	if err != nil {
		return nil, err
	}
	out := make([]byte, st.Size)
	for off := int64(0); off < st.Size; {
		n, err := p.SysPread(fd, out[off:], off)
		if err != nil {
			return nil, err
		}
		if n == 0 {
			return nil, fmt.Errorf("short file: %d of %d", off, st.Size)
		}
		off += int64(n)
	}
	return out, nil
}
