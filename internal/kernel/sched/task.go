// Package sched implements Proto's task model and CPU scheduler.
//
// A task is the kernel's unit of execution: Prototype 2's cooperative
// printers, Prototype 3's user processes, and Prototype 5's clone()d
// threads are all tasks. In this reproduction each task is a goroutine
// *gated* by the scheduler: a simulated core grants the CPU through an
// unbuffered channel handshake, and the task gives it back when it blocks,
// exits, or notices a preemption tick. At most one task per core runs at a
// time, so "context switch", "runqueue", and "timeslice" are real,
// observable code paths, and with N cores there is genuine N-way
// parallelism (Figure 10's scaling experiment depends on this).
package sched

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// State is a task's lifecycle state, following xv6's naming as Proto does.
type State int32

// Task states.
const (
	StateEmbryo   State = iota // created, never run
	StateRunnable              // on a runqueue
	StateRunning               // owns a core
	StateSleeping              // blocked on a wait queue or timer
	StateZombie                // exited, not yet reaped
)

func (s State) String() string {
	switch s {
	case StateEmbryo:
		return "embryo"
	case StateRunnable:
		return "runnable"
	case StateRunning:
		return "running"
	case StateSleeping:
		return "sleeping"
	case StateZombie:
		return "zombie"
	}
	return fmt.Sprintf("state%d", int32(s))
}

// releaseReason says why a task gave the CPU back.
type releaseReason int

const (
	releasePreempt releaseReason = iota // tick or voluntary yield: requeue me
	releaseBlocked                      // sleeping: a waker will requeue me
	releaseExit                         // zombie: never run me again
)

// killedSentinel unwinds a task goroutine when the kernel kills it. It is
// panicked from preemption checkpoints and recovered by the task wrapper —
// the moral equivalent of the kernel destroying a task at a safe point.
type killedSentinel struct{ id int }

// TaskFunc is a task body. It runs with the CPU granted and must call
// t.CheckPreempt (directly or via syscalls) inside compute loops so the
// scheduler's ticks can take effect, exactly where timer IRQs would land.
type TaskFunc func(t *Task)

// Task is one schedulable entity.
type Task struct {
	ID       int
	Name     string
	Priority int // higher runs first; Proto's donut-priority lab uses this

	sched *Scheduler
	state atomic.Int32
	core  atomic.Int32 // core currently running this task, -1 otherwise

	grant   chan struct{}      // scheduler -> task: the CPU is yours
	release chan releaseReason // task -> scheduler: I stopped

	needResched atomic.Bool
	killed      atomic.Bool
	wakePending atomic.Bool // wake arrived before the task finished blocking

	// waitingOn lets Kill find and remove a sleeping task.
	waitMu    sync.Mutex
	waitingOn *WaitQueue

	// Kernel payload: the process structure (internal/kernel attaches it).
	Data any

	// Accounting.
	startedAt  time.Time
	lastGrant  atomic.Int64 // monoNow() at the latest CPU grant
	cpuTime    atomic.Int64 // nanoseconds on CPU
	switches   atomic.Int64 // times scheduled in
	preemptths atomic.Int64 // involuntary preemptions

	done chan struct{} // closed when the goroutine has fully exited
}

// State returns the task's current lifecycle state.
func (t *Task) State() State { return State(t.state.Load()) }

// Done returns a channel closed when the task's goroutine has fully
// exited — including a task killed before its first dispatch, whose
// function never ran at all. Watchers that must account for every
// spawned task (the uring worker-pool teardown) wait on this instead of
// instrumenting the task function, which a pre-dispatch kill skips.
func (t *Task) Done() <-chan struct{} { return t.done }

// Core returns the core the task is running on, or -1.
func (t *Task) Core() int { return int(t.core.Load()) }

// CPUTime returns accumulated on-CPU time.
func (t *Task) CPUTime() time.Duration { return time.Duration(t.cpuTime.Load()) }

// Switches returns how many times the task has been scheduled in.
func (t *Task) Switches() int64 { return t.switches.Load() }

// Preemptions returns how many involuntary context switches the task took.
func (t *Task) Preemptions() int64 { return t.preemptths.Load() }

// monoBase anchors grant timestamps to Go's monotonic clock: deltas from
// it are immune to wall-clock steps (NTP, suspend), unlike UnixNano.
var monoBase = time.Now()

// monoNow is nanoseconds since monoBase, monotonic.
func monoNow() int64 { return int64(time.Since(monoBase)) }

// chargeCPU accumulates on-CPU time since the latest grant. It runs on the
// task side immediately before every release send, so the accounting is
// already visible to anyone who observes the task leaving the CPU (the
// dispatcher's own measurement only feeds the power model).
func (t *Task) chargeCPU() {
	if start := t.lastGrant.Load(); start != 0 {
		t.cpuTime.Add(monoNow() - start)
	}
}

// Killed reports whether the kernel has condemned this task.
func (t *Task) Killed() bool { return t.killed.Load() }

// MarkResched flags the task to yield at its next preemption checkpoint.
// The per-core timer IRQ handler calls this (via Scheduler.Tick).
func (t *Task) MarkResched() { t.needResched.Store(true) }

// CheckPreempt is the preemption checkpoint: if a tick arrived, the task
// releases the CPU and waits to be rescheduled; if the task was killed, it
// unwinds. App compute loops call this exactly where a real kernel would
// take a timer IRQ.
func (t *Task) CheckPreempt() {
	t.exitIfKilled()
	if !t.needResched.CompareAndSwap(true, false) {
		return
	}
	t.preemptths.Add(1)
	t.state.Store(int32(StateRunnable))
	t.chargeCPU()
	t.release <- releasePreempt
	<-t.grant
	t.exitIfKilled()
}

// Yield voluntarily gives up the CPU (the sched_yield syscall path).
func (t *Task) Yield() {
	t.exitIfKilled()
	t.needResched.Store(false)
	t.state.Store(int32(StateRunnable))
	t.chargeCPU()
	t.release <- releasePreempt
	<-t.grant
	t.exitIfKilled()
}

// exitIfKilled unwinds the goroutine when the task has been condemned.
func (t *Task) exitIfKilled() {
	if t.killed.Load() {
		panic(killedSentinel{id: t.ID})
	}
}

// block releases the CPU with "a waker will requeue me" semantics. The
// caller must already have published the task on a wait structure. A wake
// that raced ahead of the block (the lost-wakeup hazard xv6 solves with the
// sleep lock) is absorbed by wakePending; consumers of WaitQueue therefore
// re-check their condition in a loop, condition-variable style.
func (t *Task) block() {
	t.state.Store(int32(StateSleeping))
	if t.wakePending.CompareAndSwap(true, false) {
		t.state.Store(int32(StateRunning))
		t.exitIfKilled()
		return
	}
	t.chargeCPU()
	t.release <- releaseBlocked
	<-t.grant
	t.exitIfKilled()
}

// blockNoKill is block without the kill checkpoints: the uninterruptible
// sleep under WaitQueue.SleepUnless. A Kill's wake still ends the block
// (the caller re-checks its condition and, not being unwound, eventually
// reaches a killable checkpoint); the task just never unwinds while a
// caller up-stack holds locks across an IO wait.
func (t *Task) blockNoKill() {
	t.state.Store(int32(StateSleeping))
	if t.wakePending.CompareAndSwap(true, false) {
		t.state.Store(int32(StateRunning))
		return
	}
	t.chargeCPU()
	t.release <- releaseBlocked
	<-t.grant
}

// SleepFor blocks the task for at least d (the sleep/msleep syscall). The
// wakeup comes from the scheduler's timer source — in a booted kernel,
// ktime's virtual timers over the hardware timer.
func (t *Task) SleepFor(d time.Duration) {
	t.exitIfKilled()
	if d <= 0 {
		t.Yield()
		return
	}
	stop := t.sched.after(d, func() { t.sched.wake(t) })
	defer stop()
	t.block()
}

// String identifies the task in traces and panic dumps.
func (t *Task) String() string {
	return fmt.Sprintf("task %d (%s) %s", t.ID, t.Name, t.State())
}
