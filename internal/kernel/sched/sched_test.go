package sched

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func newTestSched(t *testing.T, cores int, mode RunqueueMode) *Scheduler {
	t.Helper()
	s := New(Config{Cores: cores, Mode: mode})
	s.Start()
	t.Cleanup(func() {
		if err := s.Shutdown(5 * time.Second); err != nil {
			t.Errorf("shutdown: %v", err)
		}
	})
	return s
}

func TestTaskRunsAndExits(t *testing.T) {
	s := newTestSched(t, 1, RunqueueGlobal)
	var ran atomic.Bool
	tk := s.Go("hello", 0, func(t *Task) { ran.Store(true) })
	select {
	case <-tk.done:
	case <-time.After(2 * time.Second):
		t.Fatal("task never finished")
	}
	if !ran.Load() {
		t.Fatal("body did not run")
	}
	if tk.State() != StateZombie {
		t.Fatalf("state = %v, want zombie", tk.State())
	}
}

func TestCooperativeInterleaving(t *testing.T) {
	// Two printers on one core must interleave via Yield — Prototype 2's
	// first milestone.
	s := newTestSched(t, 1, RunqueueGlobal)
	var mu sync.Mutex
	var order []string
	var wg sync.WaitGroup
	printer := func(name string) TaskFunc {
		return func(t *Task) {
			defer wg.Done()
			for i := 0; i < 3; i++ {
				mu.Lock()
				order = append(order, name)
				mu.Unlock()
				t.Yield()
			}
		}
	}
	wg.Add(2)
	s.Go("a", 0, printer("a"))
	s.Go("b", 0, printer("b"))
	wg.Wait()
	mu.Lock()
	defer mu.Unlock()
	if len(order) != 6 {
		t.Fatalf("order = %v", order)
	}
	// With a single core and FIFO runqueue, strict alternation holds.
	for i := 0; i < 6; i++ {
		want := "a"
		if i%2 == 1 {
			want = "b"
		}
		if order[i] != want {
			t.Fatalf("order = %v, want strict a/b alternation", order)
		}
	}
}

func TestPreemptionViaTick(t *testing.T) {
	s := newTestSched(t, 1, RunqueueGlobal)
	var spun, other atomic.Bool
	var wg sync.WaitGroup
	wg.Add(1)
	spinner := s.Go("spinner", 0, func(t *Task) {
		for !other.Load() {
			spun.Store(true)
			t.CheckPreempt() // checkpoint, as a compute loop must
		}
	})
	s.Go("other", 0, func(t *Task) {
		defer wg.Done()
		other.Store(true)
	})
	// Without a tick the spinner would hog the single core forever;
	// deliver ticks until the other task has run.
	deadline := time.Now().Add(5 * time.Second)
	for !other.Load() && time.Now().Before(deadline) {
		s.Tick(0)
		time.Sleep(100 * time.Microsecond)
	}
	wg.Wait()
	if !other.Load() {
		t.Fatal("tick preemption never let the second task run")
	}
	if spinner.Preemptions() == 0 {
		t.Fatal("spinner shows no involuntary preemptions")
	}
	other.Store(true)
	<-spinner.done
}

func TestPriorityOrdering(t *testing.T) {
	// Fast/slow donuts: a higher-priority runnable task is dispatched
	// before a lower-priority one.
	s := New(Config{Cores: 1, Mode: RunqueueGlobal})
	var mu sync.Mutex
	var order []string
	var wg sync.WaitGroup
	wg.Add(2)
	rec := func(name string) TaskFunc {
		return func(t *Task) {
			mu.Lock()
			order = append(order, name)
			mu.Unlock()
			wg.Done()
		}
	}
	// Enqueue before starting the core so the dispatch order is decided
	// purely by priority.
	s.Go("low", 1, rec("low"))
	s.Go("high", 5, rec("high"))
	s.Start()
	wg.Wait()
	defer s.Shutdown(5 * time.Second)
	mu.Lock()
	defer mu.Unlock()
	if order[0] != "high" {
		t.Fatalf("dispatch order = %v, want high first", order)
	}
}

func TestSleepForWakesUp(t *testing.T) {
	s := newTestSched(t, 1, RunqueueGlobal)
	start := time.Now()
	done := make(chan time.Duration, 1)
	s.Go("sleeper", 0, func(t *Task) {
		t.SleepFor(20 * time.Millisecond)
		done <- time.Since(start)
	})
	select {
	case d := <-done:
		if d < 15*time.Millisecond {
			t.Fatalf("woke after %v, want >= ~20ms", d)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("sleeper never woke")
	}
}

func TestWFIWhenIdle(t *testing.T) {
	s := newTestSched(t, 2, RunqueueGlobal)
	done := make(chan struct{})
	s.Go("blip", 0, func(t *Task) { close(done) })
	<-done
	// Give the cores a moment to go idle.
	time.Sleep(5 * time.Millisecond)
	if s.IdleWFI() == 0 {
		t.Fatal("idle cores never executed WFI")
	}
}

func TestWaitQueueSleepWake(t *testing.T) {
	s := newTestSched(t, 2, RunqueueGlobal)
	var wq WaitQueue
	var got atomic.Int32
	var data atomic.Int32
	consumerDone := make(chan struct{})
	s.Go("consumer", 0, func(t *Task) {
		defer close(consumerDone)
		for data.Load() == 0 { // condition re-check loop
			wq.Sleep(t)
		}
		got.Store(data.Load())
	})
	// Wait until the consumer is blocked.
	deadline := time.Now().Add(2 * time.Second)
	for wq.Waiting() == 0 && time.Now().Before(deadline) {
		time.Sleep(100 * time.Microsecond)
	}
	s.Go("producer", 0, func(t *Task) {
		data.Store(42)
		wq.WakeOne()
	})
	select {
	case <-consumerDone:
	case <-time.After(5 * time.Second):
		t.Fatal("consumer never woke")
	}
	if got.Load() != 42 {
		t.Fatalf("got = %d", got.Load())
	}
}

func TestWaitQueueWakeAll(t *testing.T) {
	s := newTestSched(t, 2, RunqueueGlobal)
	var wq WaitQueue
	var release atomic.Bool
	var woke atomic.Int32
	var wg sync.WaitGroup
	const n = 5
	wg.Add(n)
	for i := 0; i < n; i++ {
		s.Go("w", 0, func(t *Task) {
			defer wg.Done()
			for !release.Load() {
				wq.Sleep(t)
			}
			woke.Add(1)
		})
	}
	deadline := time.Now().Add(2 * time.Second)
	for wq.Waiting() < n && time.Now().Before(deadline) {
		time.Sleep(100 * time.Microsecond)
	}
	release.Store(true)
	wq.WakeAll()
	wg.Wait()
	if woke.Load() != n {
		t.Fatalf("woke = %d, want %d", woke.Load(), n)
	}
}

// TestLostWakeupAbsorbed exercises the wakePending path: a wake delivered
// between "publish on queue" and "block" must not be lost.
func TestLostWakeupAbsorbed(t *testing.T) {
	s := newTestSched(t, 2, RunqueueGlobal)
	for i := 0; i < 200; i++ {
		var wq WaitQueue
		var flag atomic.Bool
		done := make(chan struct{})
		s.Go("sleeper", 0, func(t *Task) {
			defer close(done)
			for !flag.Load() {
				wq.Sleep(t)
			}
		})
		s.Go("waker", 0, func(t *Task) {
			flag.Store(true)
			wq.WakeAll()
		})
		select {
		case <-done:
		case <-time.After(5 * time.Second):
			t.Fatalf("iteration %d: lost wakeup", i)
		}
	}
}

func TestKillSleepingTask(t *testing.T) {
	s := newTestSched(t, 1, RunqueueGlobal)
	var wq WaitQueue
	tk := s.Go("stuck", 0, func(t *Task) {
		for {
			wq.Sleep(t) // nobody will ever wake this
		}
	})
	deadline := time.Now().Add(2 * time.Second)
	for wq.Waiting() == 0 && time.Now().Before(deadline) {
		time.Sleep(100 * time.Microsecond)
	}
	s.Kill(tk)
	select {
	case <-tk.done:
	case <-time.After(5 * time.Second):
		t.Fatal("killed sleeper never unwound")
	}
	if tk.State() != StateZombie {
		t.Fatalf("state = %v", tk.State())
	}
}

func TestKillRunningTask(t *testing.T) {
	s := newTestSched(t, 2, RunqueueGlobal)
	tk := s.Go("loop", 0, func(t *Task) {
		for {
			t.CheckPreempt()
		}
	})
	time.Sleep(2 * time.Millisecond)
	s.Kill(tk)
	select {
	case <-tk.done:
	case <-time.After(5 * time.Second):
		t.Fatal("killed runner never unwound")
	}
}

func TestTaskPanicBecomesZombie(t *testing.T) {
	var paniced atomic.Bool
	s := New(Config{Cores: 1, Mode: RunqueueGlobal, OnPanic: func(t *Task, r any) { paniced.Store(true) }})
	s.Start()
	defer s.Shutdown(5 * time.Second)
	tk := s.Go("crash", 0, func(t *Task) {
		var p *int
		_ = *p // nil deref: the task dies, the kernel survives
	})
	select {
	case <-tk.done:
	case <-time.After(5 * time.Second):
		t.Fatal("crashed task never finalized")
	}
	if !paniced.Load() {
		t.Fatal("OnPanic not invoked")
	}
	// The scheduler still works afterwards.
	ok := make(chan struct{})
	s.Go("after", 0, func(t *Task) { close(ok) })
	select {
	case <-ok:
	case <-time.After(5 * time.Second):
		t.Fatal("scheduler dead after task panic")
	}
}

func TestMulticoreParallelism(t *testing.T) {
	// With 4 cores, 4 compute tasks must make progress concurrently:
	// their busy windows must overlap.
	s := newTestSched(t, 4, RunqueueGlobal)
	var concurrent, peak atomic.Int32
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		s.Go("burn", 0, func(t *Task) {
			defer wg.Done()
			c := concurrent.Add(1)
			for {
				if p := peak.Load(); c <= p || peak.CompareAndSwap(p, c) {
					break
				}
			}
			time.Sleep(10 * time.Millisecond) // hold the core
			concurrent.Add(-1)
		})
	}
	wg.Wait()
	if peak.Load() < 3 {
		t.Fatalf("peak concurrency = %d, want >= 3 on 4 cores", peak.Load())
	}
}

func TestPerCoreRunqueuePlacement(t *testing.T) {
	s := newTestSched(t, 2, RunqueuePerCore)
	var wg sync.WaitGroup
	cores := make([]atomic.Int32, 8)
	for i := 0; i < 8; i++ {
		wg.Add(1)
		idx := i
		s.Go("t", 0, func(t *Task) {
			defer wg.Done()
			cores[idx].Store(int32(t.Core()))
		})
	}
	wg.Wait()
	seen := map[int32]int{}
	for i := range cores {
		seen[cores[i].Load()]++
	}
	if len(seen) < 2 {
		t.Fatalf("all tasks ran on one core: %v", seen)
	}
}

func TestAccounting(t *testing.T) {
	s := newTestSched(t, 1, RunqueueGlobal)
	done := make(chan struct{})
	tk := s.Go("acct", 0, func(t *Task) {
		deadline := time.Now().Add(5 * time.Millisecond)
		for time.Now().Before(deadline) {
			t.CheckPreempt()
		}
		close(done)
	})
	<-done
	<-tk.done
	if tk.CPUTime() <= 0 {
		t.Fatal("no CPU time accounted")
	}
	if tk.Switches() < 1 {
		t.Fatal("no switches accounted")
	}
}

func TestShutdownWithLiveTasks(t *testing.T) {
	s := New(Config{Cores: 2, Mode: RunqueueGlobal})
	s.Start()
	for i := 0; i < 5; i++ {
		s.Go("spin", 0, func(t *Task) {
			for {
				t.CheckPreempt()
				time.Sleep(time.Microsecond)
			}
		})
	}
	time.Sleep(2 * time.Millisecond)
	if err := s.Shutdown(5 * time.Second); err != nil {
		t.Fatal(err)
	}
}

type busyRecorder struct {
	mu   sync.Mutex
	busy map[int]time.Duration
}

func (b *busyRecorder) AddBusy(core int, d time.Duration) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.busy == nil {
		b.busy = map[int]time.Duration{}
	}
	b.busy[core] += d
}

func TestBusyAccountingFlowsToPower(t *testing.T) {
	rec := &busyRecorder{}
	s := New(Config{Cores: 1, Mode: RunqueueGlobal, Power: rec})
	s.Start()
	defer s.Shutdown(5 * time.Second)
	done := make(chan struct{})
	s.Go("burn", 0, func(t *Task) {
		time.Sleep(3 * time.Millisecond)
		close(done)
	})
	<-done
	time.Sleep(time.Millisecond)
	rec.mu.Lock()
	defer rec.mu.Unlock()
	if rec.busy[0] <= 0 {
		t.Fatal("no busy time reported to the power accounter")
	}
}
