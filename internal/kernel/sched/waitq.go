package sched

import "sync"

// WaitQueue is the kernel's blocking primitive: tasks sleep on it and
// wakers (other tasks, IRQ handlers, timers) wake one or all. Semaphores,
// pipes, the keyboard ring, and the audio pipeline are all built on it.
//
// Wakeups may be spurious (a wake can race a task that was about to block),
// so callers re-check their condition in a loop — the same contract as a
// condition variable, and the reason xv6 wraps sleep in while loops.
type WaitQueue struct {
	mu      sync.Mutex
	waiters []*Task
}

// Sleep blocks the calling task until a wake. The caller re-checks its
// condition afterwards.
func (wq *WaitQueue) Sleep(t *Task) {
	t.exitIfKilled()
	wq.mu.Lock()
	wq.waiters = append(wq.waiters, t)
	wq.mu.Unlock()

	t.waitMu.Lock()
	t.waitingOn = wq
	t.waitMu.Unlock()

	t.block()

	t.waitMu.Lock()
	t.waitingOn = nil
	t.waitMu.Unlock()
	// If we woke for a reason other than WakeOne (kill, racing wake), make
	// sure we are no longer on the waiter list.
	wq.remove(t)
}

// SleepUnless blocks t on wq unless done() already reports true once t is
// registered as a waiter. Registering before the final check closes the
// lost-wakeup window of the bare check-then-Sleep pattern: a waker that
// publishes its condition and calls WakeAll between the caller's own check
// and Sleep's registration would wake nobody, and a one-shot condition (an
// IO completion) never wakes again. Here that waker either sees t on the
// list, or done() sees the published condition.
//
// The sleep is uninterruptible, like a disk wait in D state: a Kill wakes
// the task (so the loop re-checks done) but does not unwind it here —
// callers wait for completions that always arrive, and unwinding mid-IO
// would leak the buffer locks held across the wait. The kill takes effect
// at the task's next killable checkpoint. Spurious returns are possible;
// callers loop.
func (wq *WaitQueue) SleepUnless(t *Task, done func() bool) {
	wq.mu.Lock()
	wq.waiters = append(wq.waiters, t)
	wq.mu.Unlock()

	t.waitMu.Lock()
	t.waitingOn = wq
	t.waitMu.Unlock()

	if done() {
		// Condition already satisfied: don't block. A concurrent wake may
		// have latched wakePending; that surfaces as a spurious return from
		// the task's next block, which the sleep contract allows.
		t.waitMu.Lock()
		t.waitingOn = nil
		t.waitMu.Unlock()
		wq.remove(t)
		return
	}
	t.blockNoKill()

	t.waitMu.Lock()
	t.waitingOn = nil
	t.waitMu.Unlock()
	wq.remove(t)
}

// WakeOne wakes the longest-waiting task, if any. Returns true if a task
// was woken.
func (wq *WaitQueue) WakeOne() bool {
	wq.mu.Lock()
	if len(wq.waiters) == 0 {
		wq.mu.Unlock()
		return false
	}
	t := wq.waiters[0]
	wq.waiters = wq.waiters[1:]
	wq.mu.Unlock()
	t.sched.wake(t)
	return true
}

// WakeAll wakes every waiting task.
func (wq *WaitQueue) WakeAll() int {
	wq.mu.Lock()
	ws := wq.waiters
	wq.waiters = nil
	wq.mu.Unlock()
	for _, t := range ws {
		t.sched.wake(t)
	}
	return len(ws)
}

// Waiting reports how many tasks are blocked on the queue.
func (wq *WaitQueue) Waiting() int {
	wq.mu.Lock()
	defer wq.mu.Unlock()
	return len(wq.waiters)
}

// remove deletes t from the waiter list (kill path and post-wake cleanup).
func (wq *WaitQueue) remove(t *Task) {
	wq.mu.Lock()
	defer wq.mu.Unlock()
	for i, w := range wq.waiters {
		if w == t {
			wq.waiters = append(wq.waiters[:i], wq.waiters[i+1:]...)
			return
		}
	}
}
