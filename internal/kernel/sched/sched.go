package sched

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// RunqueueMode selects the runqueue topology. Prototypes 2–4 use one shared
// runqueue on a single core; Prototype 5 gives each core its own runqueue
// copy (§4.5 modification 3).
type RunqueueMode int

const (
	// RunqueueGlobal: one queue, all cores pull from it.
	RunqueueGlobal RunqueueMode = iota
	// RunqueuePerCore: per-core queues; new tasks are placed round-robin
	// and never migrate (Proto keeps it simple).
	RunqueuePerCore
)

// BusyAccounter receives per-core busy time (the hw.PowerModel implements
// this; tests use lighter fakes).
type BusyAccounter interface {
	AddBusy(core int, d time.Duration)
}

// Tracer observes scheduling events; kdebug's ring buffer implements it.
type Tracer interface {
	TraceEvent(core int, event string, arg1, arg2 int64)
}

// AfterFunc schedules fn after d, returning a cancel function. The kernel
// installs ktime's virtual-timer set here so task sleeps are multiplexed
// over one hardware timer (Prototype 1's virtual timers); the default is
// the host's time.AfterFunc.
type AfterFunc func(d time.Duration, fn func()) (stop func() bool)

// Config sizes the scheduler.
type Config struct {
	Cores    int
	Mode     RunqueueMode
	Quantum  time.Duration             // informational; ticks come from hw timers
	Power    BusyAccounter             // optional
	Tracer   Tracer                    // optional
	After    AfterFunc                 // optional timer source (default time.AfterFunc)
	OnZombie func(*Task)               // optional: called when a task exits (reaping)
	OnPanic  func(t *Task, reason any) // optional: task body panicked
}

// Scheduler owns the runqueues and the simulated cores.
type Scheduler struct {
	cfg   Config
	mu    sync.Mutex
	cond  *sync.Cond
	runq  [][]*Task // one slice in Global mode, ncores in PerCore mode
	place int       // round-robin placement cursor (PerCore)

	tasks   map[int]*Task
	nextID  atomic.Int64
	stopped bool

	idleWFI atomic.Int64 // times a core entered WFI (empty runqueue)
	running int          // live core loops
	coreWG  sync.WaitGroup

	current []*Task // task currently on each core (for Tick)
}

// New creates a scheduler; Start launches the core loops.
func New(cfg Config) *Scheduler {
	if cfg.Cores <= 0 {
		panic("sched: need at least one core")
	}
	nq := 1
	if cfg.Mode == RunqueuePerCore {
		nq = cfg.Cores
	}
	s := &Scheduler{
		cfg:     cfg,
		runq:    make([][]*Task, nq),
		tasks:   make(map[int]*Task),
		current: make([]*Task, cfg.Cores),
	}
	s.cond = sync.NewCond(&s.mu)
	if s.cfg.After == nil {
		s.cfg.After = func(d time.Duration, fn func()) func() bool {
			t := time.AfterFunc(d, fn)
			return t.Stop
		}
	}
	return s
}

// after schedules a wakeup through the configured timer source.
func (s *Scheduler) after(d time.Duration, fn func()) func() bool {
	return s.cfg.After(d, fn)
}

// Cores returns the configured core count.
func (s *Scheduler) Cores() int { return s.cfg.Cores }

// Start launches one scheduling loop per core.
func (s *Scheduler) Start() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.running > 0 {
		panic("sched: already started")
	}
	s.stopped = false
	s.running = s.cfg.Cores
	for c := 0; c < s.cfg.Cores; c++ {
		s.coreWG.Add(1)
		go s.coreLoop(c)
	}
}

// Go creates and enqueues a task. fn runs when a core first grants the CPU.
func (s *Scheduler) Go(name string, priority int, fn TaskFunc) *Task {
	t := &Task{
		ID:        int(s.nextID.Add(1)),
		Name:      name,
		Priority:  priority,
		sched:     s,
		grant:     make(chan struct{}),
		release:   make(chan releaseReason),
		startedAt: time.Now(),
		done:      make(chan struct{}),
	}
	t.core.Store(-1)
	t.state.Store(int32(StateEmbryo))

	go func() {
		defer close(t.done)
		<-t.grant // first dispatch
		if t.killed.Load() {
			s.finalize(t, nil)
			return
		}
		defer func() {
			r := recover()
			if _, wasKill := r.(killedSentinel); wasKill {
				r = nil
			}
			s.finalize(t, r)
		}()
		fn(t)
	}()

	s.mu.Lock()
	s.tasks[t.ID] = t
	s.enqueueLocked(t)
	s.mu.Unlock()
	s.cond.Broadcast()
	return t
}

// finalize marks the task zombie and tells the granting core it is done.
func (s *Scheduler) finalize(t *Task, panicked any) {
	t.state.Store(int32(StateZombie))
	if panicked != nil && s.cfg.OnPanic != nil {
		s.cfg.OnPanic(t, panicked)
	}
	s.trace(t.Core(), "exit", int64(t.ID), 0)
	t.chargeCPU()
	t.release <- releaseExit
	s.mu.Lock()
	delete(s.tasks, t.ID)
	s.mu.Unlock()
	if s.cfg.OnZombie != nil {
		s.cfg.OnZombie(t)
	}
}

// enqueueLocked places a runnable task on a queue. Caller holds s.mu.
func (s *Scheduler) enqueueLocked(t *Task) {
	t.state.Store(int32(StateRunnable))
	qi := 0
	if s.cfg.Mode == RunqueuePerCore {
		qi = s.place % len(s.runq)
		s.place++
	}
	s.runq[qi] = append(s.runq[qi], t)
}

// enqueue is the unlocked form used by wakers.
func (s *Scheduler) enqueue(t *Task) {
	s.mu.Lock()
	s.enqueueLocked(t)
	s.mu.Unlock()
	s.cond.Broadcast()
}

// wake transitions a sleeping task to runnable; if the task has not
// finished blocking yet the wake is latched in wakePending.
func (s *Scheduler) wake(t *Task) {
	if t.state.CompareAndSwap(int32(StateSleeping), int32(StateRunnable)) {
		s.enqueue(t)
		return
	}
	t.wakePending.Store(true)
}

// Wake makes a sleeping task runnable (exported for wait queues and IRQ
// handlers).
func (s *Scheduler) Wake(t *Task) { s.wake(t) }

// dequeue picks the best task for core. Caller holds s.mu. Returns nil when
// the core's queue(s) are empty.
func (s *Scheduler) dequeue(core int) *Task {
	qi := 0
	if s.cfg.Mode == RunqueuePerCore {
		qi = core % len(s.runq)
	}
	q := s.runq[qi]
	if len(q) == 0 {
		return nil
	}
	// Highest priority first; FIFO within a priority (stable scan).
	best := 0
	for i, t := range q {
		if t.Priority > q[best].Priority {
			best = i
		}
		_ = i
	}
	t := q[best]
	s.runq[qi] = append(q[:best], q[best+1:]...)
	return t
}

// coreLoop is one simulated CPU core: pick, grant, wait for release.
func (s *Scheduler) coreLoop(core int) {
	defer s.coreWG.Done()
	for {
		s.mu.Lock()
		var t *Task
		for {
			if s.stopped {
				s.mu.Unlock()
				return
			}
			t = s.dequeue(core)
			if t != nil {
				break
			}
			// Empty runqueue: WFI until someone enqueues (§4.2's power
			// management lesson).
			s.idleWFI.Add(1)
			s.cond.Wait()
		}
		s.current[core] = t
		s.mu.Unlock()

		t.core.Store(int32(core))
		t.state.Store(int32(StateRunning))
		t.switches.Add(1)
		s.trace(core, "switch-in", int64(t.ID), 0)
		start := time.Now()
		t.lastGrant.Store(monoNow())
		t.grant <- struct{}{}
		reason := <-t.release
		busy := time.Since(start)
		if s.cfg.Power != nil {
			s.cfg.Power.AddBusy(core, busy)
		}
		t.core.Store(-1)

		s.mu.Lock()
		s.current[core] = nil
		s.mu.Unlock()

		switch reason {
		case releasePreempt:
			s.enqueue(t)
		case releaseBlocked:
			// a waker requeues it
		case releaseExit:
			// gone
		}
	}
}

// Tick is the per-core generic-timer IRQ handler body: flag the task
// running on that core to reschedule at its next checkpoint.
func (s *Scheduler) Tick(core int) {
	s.mu.Lock()
	t := s.current[core]
	s.mu.Unlock()
	if t != nil {
		t.MarkResched()
	}
	s.trace(core, "tick", 0, 0)
}

// Kill condemns a task: it unwinds at its next checkpoint; if sleeping it
// is woken so the checkpoint arrives.
func (s *Scheduler) Kill(t *Task) {
	t.killed.Store(true)
	t.waitMu.Lock()
	wq := t.waitingOn
	t.waitMu.Unlock()
	if wq != nil {
		wq.remove(t)
	}
	s.wake(t)
}

// Task looks a live task up by ID.
func (s *Scheduler) Task(id int) *Task {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.tasks[id]
}

// Tasks snapshots all live tasks, ordered by ID.
func (s *Scheduler) Tasks() []*Task {
	s.mu.Lock()
	out := make([]*Task, 0, len(s.tasks))
	for _, t := range s.tasks {
		out = append(out, t)
	}
	s.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Current returns the task running on core (nil if idle); the panic-button
// dump uses it.
func (s *Scheduler) Current(core int) *Task {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.current[core]
}

// IdleWFI counts how many times cores found nothing to run.
func (s *Scheduler) IdleWFI() int64 { return s.idleWFI.Load() }

// Shutdown kills every task, waits for them to unwind, then stops the core
// loops. It is safe to call once, from outside any task.
func (s *Scheduler) Shutdown(timeout time.Duration) error {
	for _, t := range s.Tasks() {
		s.Kill(t)
	}
	deadline := time.Now().Add(timeout)
	for {
		s.mu.Lock()
		n := len(s.tasks)
		s.mu.Unlock()
		if n == 0 {
			break
		}
		if time.Now().After(deadline) {
			s.mu.Lock()
			stuck := make([]string, 0, len(s.tasks))
			for _, t := range s.tasks {
				stuck = append(stuck, t.String())
			}
			s.mu.Unlock()
			return fmt.Errorf("sched: %d tasks did not exit: %v", n, stuck)
		}
		time.Sleep(100 * time.Microsecond)
	}
	s.mu.Lock()
	s.stopped = true
	s.mu.Unlock()
	s.cond.Broadcast()
	s.coreWG.Wait()
	return nil
}

func (s *Scheduler) trace(core int, ev string, a, b int64) {
	if s.cfg.Tracer != nil {
		s.cfg.Tracer.TraceEvent(core, ev, a, b)
	}
}
