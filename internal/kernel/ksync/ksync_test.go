package ksync

import (
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"
	"time"

	"protosim/internal/kernel/sched"
)

type fakeMasker struct {
	mu       sync.Mutex
	masked   map[int]bool
	maskOps  int
	unmaskOp int
}

func (f *fakeMasker) Mask(core int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.masked == nil {
		f.masked = map[int]bool{}
	}
	f.masked[core] = true
	f.maskOps++
}

func (f *fakeMasker) Unmask(core int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.masked[core] = false
	f.unmaskOp++
}

func newSched(t *testing.T, cores int) *sched.Scheduler {
	t.Helper()
	s := sched.New(sched.Config{Cores: cores})
	s.Start()
	t.Cleanup(func() {
		if err := s.Shutdown(5 * time.Second); err != nil {
			t.Errorf("shutdown: %v", err)
		}
	})
	return s
}

func TestSpinLockMutualExclusion(t *testing.T) {
	l := NewSpinLock("test")
	var counter int
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				l.Lock(id + 1)
				counter++
				l.Unlock()
			}
		}(i)
	}
	wg.Wait()
	if counter != 8000 {
		t.Fatalf("counter = %d, want 8000", counter)
	}
	if l.Acquires() != 8000 {
		t.Fatalf("acquires = %d", l.Acquires())
	}
	if l.Holder() != 0 {
		t.Fatalf("holder = %d after all unlocks", l.Holder())
	}
}

func TestIRQGuardRefcount(t *testing.T) {
	m := &fakeMasker{}
	g := NewIRQGuard(m, 0)
	g.Push()
	g.Push()
	if !m.masked[0] {
		t.Fatal("irqs not masked after push")
	}
	if m.maskOps != 1 {
		t.Fatalf("mask called %d times, want 1 (refcounted)", m.maskOps)
	}
	g.Pop()
	if !m.masked[0] {
		t.Fatal("irqs unmasked while refcount > 0")
	}
	g.Pop()
	if m.masked[0] {
		t.Fatal("irqs still masked after final pop")
	}
	if g.Depth() != 0 {
		t.Fatalf("depth = %d", g.Depth())
	}
}

func TestIRQGuardUnbalancedPopPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewIRQGuard(&fakeMasker{}, 0).Pop()
}

func TestSemaphoreCounts(t *testing.T) {
	s := newSched(t, 2)
	sem := NewSemaphore(2)
	var inCrit, peak atomic.Int32
	var wg sync.WaitGroup
	for i := 0; i < 6; i++ {
		wg.Add(1)
		s.Go("sem", 0, func(t *sched.Task) {
			defer wg.Done()
			sem.Wait(t)
			c := inCrit.Add(1)
			for {
				p := peak.Load()
				if c <= p || peak.CompareAndSwap(p, c) {
					break
				}
			}
			t.SleepFor(time.Millisecond)
			inCrit.Add(-1)
			sem.Post()
		})
	}
	wg.Wait()
	if peak.Load() > 2 {
		t.Fatalf("semaphore(2) admitted %d tasks at once", peak.Load())
	}
	if sem.Value() != 2 {
		t.Fatalf("final value = %d, want 2", sem.Value())
	}
}

func TestSemaphoreTryWait(t *testing.T) {
	sem := NewSemaphore(1)
	if !sem.TryWait() {
		t.Fatal("trywait on count 1 failed")
	}
	if sem.TryWait() {
		t.Fatal("trywait on count 0 succeeded")
	}
	sem.Post()
	if !sem.TryWait() {
		t.Fatal("trywait after post failed")
	}
}

// Property: after any interleaving of P/V with P ≤ V + initial, the final
// count is initial + V - P.
func TestSemaphoreCountProperty(t *testing.T) {
	s := newSched(t, 2)
	check := func(initial uint8, extra uint8) bool {
		init := int(initial%8) + 1
		posts := int(extra % 8)
		sem := NewSemaphore(init)
		var wg sync.WaitGroup
		// init+posts total permits; consume init of them, post posts.
		for i := 0; i < posts; i++ {
			sem.Post()
		}
		for i := 0; i < init; i++ {
			wg.Add(1)
			s.Go("p", 0, func(t *sched.Task) {
				defer wg.Done()
				sem.Wait(t)
			})
		}
		wg.Wait()
		return sem.Value() == posts
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestSleepLockBlocksAndWakes(t *testing.T) {
	s := newSched(t, 2)
	var l SleepLock
	var order []string
	var mu sync.Mutex
	var wg sync.WaitGroup
	acquired := make(chan struct{})
	wg.Add(2)
	s.Go("first", 0, func(t *sched.Task) {
		defer wg.Done()
		l.Lock(t)
		close(acquired)
		t.SleepFor(5 * time.Millisecond)
		mu.Lock()
		order = append(order, "first")
		mu.Unlock()
		l.Unlock()
	})
	<-acquired
	s.Go("second", 0, func(t *sched.Task) {
		defer wg.Done()
		l.Lock(t)
		mu.Lock()
		order = append(order, "second")
		mu.Unlock()
		l.Unlock()
	})
	wg.Wait()
	mu.Lock()
	defer mu.Unlock()
	if len(order) != 2 || order[0] != "first" || order[1] != "second" {
		t.Fatalf("order = %v", order)
	}
	if l.Held() {
		t.Fatal("lock held after both released")
	}
}

func TestSleepLockDoubleUnlockPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	var l SleepLock
	l.Unlock()
}
