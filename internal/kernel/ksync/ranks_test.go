package ksync

import "testing"

func mustPanic(t *testing.T, what string, fn func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatalf("%s did not panic", what)
		}
	}()
	fn()
}

func TestRankCheckAllowsHierarchy(t *testing.T) {
	SetRankCheck(true)
	defer SetRankCheck(false)
	var ren, ino, alloc, buf SleepLock
	ren.SetRank(RankRename, 0)
	ino.SetRank(RankInode, 7)
	alloc.SetRank(RankAlloc, 1)
	buf.SetRank(RankBuffer, 100)

	ren.Lock(nil)
	ino.Lock(nil)
	alloc.Lock(nil)
	buf.Lock(nil)
	buf.Unlock()
	alloc.Unlock()
	ino.Unlock()
	ren.Unlock()
}

func TestRankCheckCatchesInversion(t *testing.T) {
	SetRankCheck(true)
	defer SetRankCheck(false)
	var ino, alloc SleepLock
	ino.SetRank(RankInode, 3)
	alloc.SetRank(RankAlloc, 1)

	alloc.Lock(nil)
	defer alloc.Unlock()
	mustPanic(t, "inode-after-alloc", func() { ino.Lock(nil) })
}

func TestRankCheckSameRankOrdering(t *testing.T) {
	SetRankCheck(true)
	defer SetRankCheck(false)
	var low, high SleepLock
	low.SetRank(RankBuffer, 10)
	high.SetRank(RankBuffer, 20)

	// Ascending order keys are fine (bcache segment claims, Flush runs).
	low.Lock(nil)
	high.Lock(nil)
	high.Unlock()
	low.Unlock()

	// Descending is the deadlock shape — caught.
	high.Lock(nil)
	defer high.Unlock()
	mustPanic(t, "descending same-rank", func() { low.Lock(nil) })
}

func TestRankCheckLockNestedAllowsTreeDescent(t *testing.T) {
	SetRankCheck(true)
	defer SetRankCheck(false)
	var parent, child SleepLock
	parent.SetRank(RankInode, 9) // parent dir with a HIGHER inum than child
	child.SetRank(RankInode, 2)

	parent.Lock(nil)
	child.LockNested(nil) // parent→child protocol: order key waived
	child.Unlock()
	parent.Unlock()
}

func TestRankCheckCatchesRecursion(t *testing.T) {
	SetRankCheck(true)
	defer SetRankCheck(false)
	var l SleepLock
	l.SetRank(RankInode, 1)
	l.Lock(nil)
	defer l.Unlock()
	mustPanic(t, "recursive lock", func() { l.LockNested(nil) })
}

func TestRankCheckOffCostsNothing(t *testing.T) {
	// With checking off, even wrong-order acquisitions are not tracked
	// (production mode): this must not panic.
	var ino, alloc SleepLock
	ino.SetRank(RankInode, 3)
	alloc.SetRank(RankAlloc, 1)
	alloc.Lock(nil)
	ino.Lock(nil)
	ino.Unlock()
	alloc.Unlock()
}
