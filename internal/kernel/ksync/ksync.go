// Package ksync provides Proto's kernel synchronization primitives:
// spinlocks with interrupt-disable reference counting (Prototype 1's
// evolution from spinlock to refcounted irq on/off), counting semaphores
// (the Prototype 5 syscall surface), and sleeplocks for long-held resources
// like buffer-cache blocks.
package ksync

import (
	"runtime"
	"sync"
	"sync/atomic"

	"protosim/internal/kernel/sched"
)

// IRQMasker abstracts the per-core interrupt mask (hw.IRQController
// satisfies it) so SpinLock can implement pushcli/popcli semantics.
type IRQMasker interface {
	Mask(core int)
	Unmask(core int)
}

// SpinLock is a kernel spinlock. On a real single-core Prototype 1 it
// degenerates into reference-counted interrupt disabling; here both the
// mutual exclusion and the irq-off refcount are modelled, and the refcount
// bug class (unbalanced push/pop) panics loudly.
type SpinLock struct {
	mu       sync.Mutex
	name     string
	holder   atomic.Int64 // task ID, 0 when free
	acquires atomic.Int64
}

// NewSpinLock names a lock for diagnostics.
func NewSpinLock(name string) *SpinLock { return &SpinLock{name: name} }

// Lock acquires the lock on behalf of task id (0 for IRQ context).
func (l *SpinLock) Lock(taskID int) {
	l.mu.Lock()
	l.holder.Store(int64(taskID))
	l.acquires.Add(1)
}

// Unlock releases the lock.
func (l *SpinLock) Unlock() {
	l.holder.Store(0)
	l.mu.Unlock()
}

// Holder returns the task ID currently holding the lock (0 = free/IRQ).
func (l *SpinLock) Holder() int { return int(l.holder.Load()) }

// Acquires counts lifetime acquisitions (contention diagnostics).
func (l *SpinLock) Acquires() int64 { return l.acquires.Load() }

// IRQGuard is the reference-counted interrupt on/off that Prototype 1
// arrives at after discovering a bare spinlock is overkill on one core:
// nested critical sections push/pop, and interrupts resume only when the
// count returns to zero.
type IRQGuard struct {
	ic   IRQMasker
	core int
	mu   sync.Mutex
	refs int
}

// NewIRQGuard guards one core's interrupt mask.
func NewIRQGuard(ic IRQMasker, core int) *IRQGuard {
	return &IRQGuard{ic: ic, core: core}
}

// Push disables interrupts (idempotent via refcount).
func (g *IRQGuard) Push() {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.refs == 0 {
		g.ic.Mask(g.core)
	}
	g.refs++
}

// Pop re-enables interrupts when the refcount drains. Unbalanced pops are
// the classic bug; they panic.
func (g *IRQGuard) Pop() {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.refs == 0 {
		panic("ksync: IRQGuard pop without matching push")
	}
	g.refs--
	if g.refs == 0 {
		g.ic.Unmask(g.core)
	}
}

// Depth returns the current nesting depth.
func (g *IRQGuard) Depth() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.refs
}

// Semaphore is a counting semaphore, the primitive Prototype 5 exposes as
// syscalls and on which the user library builds mutexes and condition
// variables (§4.5).
type Semaphore struct {
	mu    sync.Mutex
	count int
	wq    sched.WaitQueue
}

// NewSemaphore creates a semaphore with an initial count.
func NewSemaphore(initial int) *Semaphore {
	if initial < 0 {
		panic("ksync: negative semaphore count")
	}
	return &Semaphore{count: initial}
}

// Wait (P) decrements; the task sleeps while the count is zero.
func (s *Semaphore) Wait(t *sched.Task) {
	for {
		s.mu.Lock()
		if s.count > 0 {
			s.count--
			s.mu.Unlock()
			return
		}
		s.mu.Unlock()
		s.wq.Sleep(t)
	}
}

// TryWait decrements without blocking; reports success.
func (s *Semaphore) TryWait() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.count > 0 {
		s.count--
		return true
	}
	return false
}

// Post (V) increments and wakes one waiter.
func (s *Semaphore) Post() {
	s.mu.Lock()
	s.count++
	s.mu.Unlock()
	s.wq.WakeOne()
}

// Value reads the current count (diagnostics only).
func (s *Semaphore) Value() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.count
}

// SleepLock is a long-hold lock whose waiters sleep instead of spinning —
// xv6's sleeplock, used by the buffer cache where a disk read happens under
// the lock.
type SleepLock struct {
	mu     sync.Mutex
	locked bool
	holder int
	wq     sched.WaitQueue
}

// Lock acquires for task t, sleeping while held elsewhere. A nil task is
// permitted for host-side contexts (image building, test harnesses) that
// run outside the simulated scheduler; they spin-yield instead of sleeping.
func (l *SleepLock) Lock(t *sched.Task) {
	for {
		l.mu.Lock()
		if !l.locked {
			l.locked = true
			if t != nil {
				l.holder = t.ID
			}
			l.mu.Unlock()
			return
		}
		l.mu.Unlock()
		if t != nil {
			l.wq.Sleep(t)
		} else {
			runtime.Gosched()
		}
	}
}

// Unlock releases and wakes one waiter.
func (l *SleepLock) Unlock() {
	l.mu.Lock()
	if !l.locked {
		l.mu.Unlock()
		panic("ksync: unlock of unlocked sleeplock")
	}
	l.locked = false
	l.holder = 0
	l.mu.Unlock()
	l.wq.WakeOne()
}

// Held reports whether the lock is taken (diagnostics).
func (l *SleepLock) Held() bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.locked
}
