// Package ksync provides Proto's kernel synchronization primitives:
// spinlocks with interrupt-disable reference counting (Prototype 1's
// evolution from spinlock to refcounted irq on/off), counting semaphores
// (the Prototype 5 syscall surface), and sleeplocks for long-held resources
// like buffer-cache blocks.
package ksync

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"protosim/internal/kernel/sched"
)

// IRQMasker abstracts the per-core interrupt mask (hw.IRQController
// satisfies it) so SpinLock can implement pushcli/popcli semantics.
type IRQMasker interface {
	Mask(core int)
	Unmask(core int)
}

// SpinLock is a kernel spinlock. On a real single-core Prototype 1 it
// degenerates into reference-counted interrupt disabling; here both the
// mutual exclusion and the irq-off refcount are modelled, and the refcount
// bug class (unbalanced push/pop) panics loudly.
type SpinLock struct {
	mu       sync.Mutex
	name     string
	holder   atomic.Int64 // task ID, 0 when free
	acquires atomic.Int64
}

// NewSpinLock names a lock for diagnostics.
func NewSpinLock(name string) *SpinLock { return &SpinLock{name: name} }

// Lock acquires the lock on behalf of task id (0 for IRQ context).
func (l *SpinLock) Lock(taskID int) {
	l.mu.Lock()
	l.holder.Store(int64(taskID))
	l.acquires.Add(1)
}

// Unlock releases the lock.
func (l *SpinLock) Unlock() {
	l.holder.Store(0)
	l.mu.Unlock()
}

// Holder returns the task ID currently holding the lock (0 = free/IRQ).
func (l *SpinLock) Holder() int { return int(l.holder.Load()) }

// Acquires counts lifetime acquisitions (contention diagnostics).
func (l *SpinLock) Acquires() int64 { return l.acquires.Load() }

// IRQGuard is the reference-counted interrupt on/off that Prototype 1
// arrives at after discovering a bare spinlock is overkill on one core:
// nested critical sections push/pop, and interrupts resume only when the
// count returns to zero.
type IRQGuard struct {
	ic   IRQMasker
	core int
	mu   sync.Mutex
	refs int
}

// NewIRQGuard guards one core's interrupt mask.
func NewIRQGuard(ic IRQMasker, core int) *IRQGuard {
	return &IRQGuard{ic: ic, core: core}
}

// Push disables interrupts (idempotent via refcount).
func (g *IRQGuard) Push() {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.refs == 0 {
		g.ic.Mask(g.core)
	}
	g.refs++
}

// Pop re-enables interrupts when the refcount drains. Unbalanced pops are
// the classic bug; they panic.
func (g *IRQGuard) Pop() {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.refs == 0 {
		panic("ksync: IRQGuard pop without matching push")
	}
	g.refs--
	if g.refs == 0 {
		g.ic.Unmask(g.core)
	}
}

// Depth returns the current nesting depth.
func (g *IRQGuard) Depth() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.refs
}

// Semaphore is a counting semaphore, the primitive Prototype 5 exposes as
// syscalls and on which the user library builds mutexes and condition
// variables (§4.5).
type Semaphore struct {
	mu    sync.Mutex
	count int
	wq    sched.WaitQueue
}

// NewSemaphore creates a semaphore with an initial count.
func NewSemaphore(initial int) *Semaphore {
	if initial < 0 {
		panic("ksync: negative semaphore count")
	}
	return &Semaphore{count: initial}
}

// Wait (P) decrements; the task sleeps while the count is zero.
func (s *Semaphore) Wait(t *sched.Task) {
	for {
		s.mu.Lock()
		if s.count > 0 {
			s.count--
			s.mu.Unlock()
			return
		}
		s.mu.Unlock()
		s.wq.Sleep(t)
	}
}

// TryWait decrements without blocking; reports success.
func (s *Semaphore) TryWait() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.count > 0 {
		s.count--
		return true
	}
	return false
}

// Post (V) increments and wakes one waiter.
func (s *Semaphore) Post() {
	s.mu.Lock()
	s.count++
	s.mu.Unlock()
	s.wq.WakeOne()
}

// Value reads the current count (diagnostics only).
func (s *Semaphore) Value() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.count
}

// SleepLock is a long-hold lock whose waiters sleep instead of spinning —
// xv6's sleeplock, used by the buffer cache where a disk read happens under
// the lock, and (since the per-inode locking refactor) by the filesystems'
// inode, pseudo-inode, allocator and rename locks.
//
// A SleepLock may carry a Rank (SetRank); ranked locks participate in the
// debug lock-order assertion when SetRankCheck(true) is active.
type SleepLock struct {
	mu     sync.Mutex
	locked bool
	holder int
	wq     sched.WaitQueue

	// Rank metadata for the debug lock-order checker. Written by SetRank
	// while the lock is free and externally unreachable or quiescent
	// (buffer recycle under the shard lock), read by Lock/LockNested.
	rank  Rank
	order int64
}

// Lock acquires for task t, sleeping while held elsewhere. A nil task is
// permitted for host-side contexts (image building, test harnesses) that
// run outside the simulated scheduler; they spin-yield instead of sleeping.
func (l *SleepLock) Lock(t *sched.Task) { l.lock(t, false) }

// LockNested acquires like Lock but tells the rank checker this is a
// tree-protocol acquisition: a lock of the SAME rank as one already held is
// permitted regardless of order key. Used for parent-directory → child
// inode locking, where deadlock freedom comes from the directory tree shape
// (always ancestor before descendant) rather than a total lock order.
func (l *SleepLock) LockNested(t *sched.Task) { l.lock(t, true) }

func (l *SleepLock) lock(t *sched.Task, nested bool) {
	if l.rank != RankNone && rankCheckOn.Load() {
		rankCheckAcquire(l, nested)
	}
	for {
		l.mu.Lock()
		if !l.locked {
			l.locked = true
			if t != nil {
				l.holder = t.ID
			}
			l.mu.Unlock()
			return
		}
		l.mu.Unlock()
		if t != nil {
			l.wq.Sleep(t)
		} else {
			runtime.Gosched()
		}
	}
}

// Unlock releases and wakes one waiter.
func (l *SleepLock) Unlock() {
	if l.rank != RankNone && rankCheckOn.Load() {
		rankCheckRelease(l)
	}
	l.mu.Lock()
	if !l.locked {
		l.mu.Unlock()
		panic("ksync: unlock of unlocked sleeplock")
	}
	l.locked = false
	l.holder = 0
	l.mu.Unlock()
	l.wq.WakeOne()
}

// Held reports whether the lock is taken (diagnostics).
func (l *SleepLock) Held() bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.locked
}

// RWSleepLock is a reader-writer sleeplock: any number of concurrent
// readers, or one writer. Waiters sleep on the scheduler via
// SleepUnless — lost-wakeup-free, and uninterruptible in the D-state
// sense (a kill takes effect at the task's next killable checkpoint,
// never by unwinding out of the acquisition); nil tasks (host-side
// contexts) spin-yield. Writers take priority: once a writer is waiting,
// new readers queue behind it, so a steady stream of readers cannot
// starve the writer.
//
// The filesystems use it for per-mount rename serialization: a
// same-directory rename only touches one directory (already serialized
// by that directory's inode lock) and takes the lock shared, while a
// cross-directory rename — whose deadlock freedom and ancestry checks
// depend on no other rename reshaping the tree mid-flight — takes it
// exclusive. This is the s_vfs_rename_mutex design point: the common
// temp-file-swap pattern runs concurrently per directory, and only the
// rare cross-directory move pays for full serialization.
//
// A ranked RWSleepLock (SetRank) participates in the debug lock-order
// assertion in both modes; read and write acquisitions are tracked
// identically.
type RWSleepLock struct {
	mu      sync.Mutex
	readers int
	writer  bool
	wpend   int // writers waiting; blocks new readers (writer priority)
	wq      sched.WaitQueue

	// sent carries the rank metadata and stands in for the RW lock in the
	// rank checker's held-lock table (the checker tracks *SleepLock).
	sent SleepLock
}

// SetRank assigns the lock's place in the hierarchy, as SleepLock.SetRank.
func (l *RWSleepLock) SetRank(r Rank, order int64) { l.sent.SetRank(r, order) }

// RLock acquires the lock shared, sleeping while a writer holds or awaits it.
//
// The wait uses SleepUnless: registration on the queue precedes the final
// condition check, so a release that fires WakeAll between this caller's
// check and its sleep cannot be lost. The sleep is uninterruptible — a
// Kill wakes the loop but takes effect at the task's next killable
// checkpoint, never unwinding from inside the acquisition.
func (l *RWSleepLock) RLock(t *sched.Task) {
	if l.sent.rank != RankNone && rankCheckOn.Load() {
		rankCheckAcquire(&l.sent, false)
	}
	for {
		l.mu.Lock()
		if !l.writer && l.wpend == 0 {
			l.readers++
			l.mu.Unlock()
			return
		}
		l.mu.Unlock()
		if t != nil {
			l.wq.SleepUnless(t, func() bool {
				l.mu.Lock()
				ok := !l.writer && l.wpend == 0
				l.mu.Unlock()
				return ok
			})
		} else {
			runtime.Gosched()
		}
	}
}

// RUnlock releases a shared hold and wakes waiters (a pending writer may
// now have a clear run).
func (l *RWSleepLock) RUnlock() {
	if l.sent.rank != RankNone && rankCheckOn.Load() {
		rankCheckRelease(&l.sent)
	}
	l.mu.Lock()
	if l.readers <= 0 {
		l.mu.Unlock()
		panic("ksync: RUnlock of rwsleeplock with no readers")
	}
	l.readers--
	l.mu.Unlock()
	l.wq.WakeAll()
}

// Lock acquires the lock exclusive, sleeping while readers or another
// writer hold it. New readers queue behind a waiting writer.
//
// Like RLock, the wait is SleepUnless — lost-wakeup-free and
// uninterruptible. The latter also keeps wpend balanced: a kill delivered
// mid-wait cannot unwind the goroutine between the wpend++ and wpend--,
// which would otherwise block every future shared acquisition forever.
func (l *RWSleepLock) Lock(t *sched.Task) {
	if l.sent.rank != RankNone && rankCheckOn.Load() {
		rankCheckAcquire(&l.sent, false)
	}
	l.mu.Lock()
	l.wpend++
	for l.writer || l.readers > 0 {
		l.mu.Unlock()
		if t != nil {
			l.wq.SleepUnless(t, func() bool {
				l.mu.Lock()
				ok := !l.writer && l.readers == 0
				l.mu.Unlock()
				return ok
			})
		} else {
			runtime.Gosched()
		}
		l.mu.Lock()
	}
	l.wpend--
	l.writer = true
	l.mu.Unlock()
}

// Unlock releases an exclusive hold and wakes all waiters.
func (l *RWSleepLock) Unlock() {
	if l.sent.rank != RankNone && rankCheckOn.Load() {
		rankCheckRelease(&l.sent)
	}
	l.mu.Lock()
	if !l.writer {
		l.mu.Unlock()
		panic("ksync: unlock of unlocked rwsleeplock")
	}
	l.writer = false
	l.mu.Unlock()
	l.wq.WakeAll()
}

// --- debug lock-rank checking ---
//
// The storage stack's sleeplocks form a hierarchy; acquiring against it is
// how filesystem deadlocks are born. The checker enforces, per goroutine:
//
//	rename (FS-wide rename serialization)
//	  < inode (per-inode / pseudo-inode locks; order key = inum / cluster)
//	  < alloc (inode array, block bitmap, FAT — the allocation structures)
//	  < buffer (bcache buffer sleeplocks; order key = LBA)
//	  < blkq (per-device IO request-queue lock, held while queueing a
//	    command for blocks whose buffer locks the submitter already holds)
//
// Within one rank, plain Lock demands a strictly increasing order key
// (bcache claims segments in ascending LBA; Flush locks runs in ascending
// LBA; rename locks unrelated directories in ascending id). LockNested
// waives the order-key demand for tree-protocol acquisitions
// (parent-directory → child), whose deadlock freedom comes from always
// walking ancestor-to-descendant, not from a total order.
//
// Checking is off by default (it costs a goroutine-ID lookup and a global
// map per ranked acquisition) and switched on by the concurrency tests.

// Rank is a level in the storage-stack lock hierarchy. Locks are acquired
// in increasing rank; RankNone opts a lock out of checking.
type Rank int

// Ranks, lowest (acquired first) to highest.
const (
	RankNone Rank = iota
	RankRename
	RankInode
	RankAlloc
	RankBuffer
	// RankBlkq is the per-device IO request-queue lock, below buffer in the
	// hierarchy (acquired after): submitters hold buffer sleeplocks while
	// they queue the device command for those blocks.
	RankBlkq
)

func (r Rank) String() string {
	switch r {
	case RankRename:
		return "rename"
	case RankInode:
		return "inode"
	case RankAlloc:
		return "alloc"
	case RankBuffer:
		return "buffer"
	case RankBlkq:
		return "blkq"
	}
	return "none"
}

// SetRank assigns the lock's place in the hierarchy and its within-rank
// order key (inode number, cluster number, LBA). Call while the lock is
// unreachable by other goroutines (construction, buffer recycle under the
// owning shard lock).
func (l *SleepLock) SetRank(r Rank, order int64) {
	l.rank = r
	l.order = order
}

var (
	rankCheckOn atomic.Bool
	rankMu      sync.Mutex
	rankHeld    = make(map[int64][]*SleepLock) // goroutine id -> held ranked locks
)

// SetRankCheck switches the global lock-rank assertion on or off. Turning
// it off clears all tracking state.
func SetRankCheck(on bool) {
	rankCheckOn.Store(on)
	if !on {
		rankMu.Lock()
		rankHeld = make(map[int64][]*SleepLock)
		rankMu.Unlock()
	}
}

// goid parses the current goroutine's ID out of the stack header
// ("goroutine N [..."). Debug path only.
func goid() int64 {
	var buf [32]byte
	n := runtime.Stack(buf[:], false)
	var id int64
	for _, c := range buf[len("goroutine "):n] {
		if c < '0' || c > '9' {
			break
		}
		id = id*10 + int64(c-'0')
	}
	return id
}

// rankCheckAcquire asserts that taking l now respects the hierarchy, then
// records it as held.
func rankCheckAcquire(l *SleepLock, nested bool) {
	g := goid()
	rankMu.Lock()
	defer rankMu.Unlock()
	held := rankHeld[g]
	for _, h := range held {
		if h == l {
			panic(fmt.Sprintf("ksync: recursive acquisition of %v lock (order %d)", l.rank, l.order))
		}
		if h.rank > l.rank {
			panic(fmt.Sprintf("ksync: lock-rank inversion: acquiring %v (order %d) while holding %v (order %d)",
				l.rank, l.order, h.rank, h.order))
		}
		if h.rank == l.rank && !nested && h.order >= l.order {
			panic(fmt.Sprintf("ksync: same-rank order violation: acquiring %v order %d while holding order %d (use ascending order or LockNested for tree descent)",
				l.rank, l.order, h.order))
		}
	}
	rankHeld[g] = append(held, l)
}

// rankCheckRelease forgets a held lock. Locks taken before checking was
// enabled are simply not found, which is fine.
func rankCheckRelease(l *SleepLock) {
	g := goid()
	rankMu.Lock()
	defer rankMu.Unlock()
	held := rankHeld[g]
	for i := len(held) - 1; i >= 0; i-- {
		if held[i] == l {
			held = append(held[:i], held[i+1:]...)
			break
		}
	}
	if len(held) == 0 {
		delete(rankHeld, g)
	} else {
		rankHeld[g] = held
	}
}
