package ksync

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"protosim/internal/kernel/sched"
)

// TestRWSleepLockReadersShare proves the whole point of the RW lock:
// two readers hold it at the same time. r1 takes the lock and refuses to
// release until r2 has ALSO acquired it — if readers excluded each other
// the test would deadlock and runWithDeadline-style timeouts in the
// scheduler shutdown would flag it.
func TestRWSleepLockReadersShare(t *testing.T) {
	s := newSched(t, 2)
	var l RWSleepLock
	var r1in, r2in atomic.Bool
	var wg sync.WaitGroup
	wg.Add(2)
	s.Go("r1", 1, func(t *sched.Task) {
		defer wg.Done()
		l.RLock(t)
		r1in.Store(true)
		for !r2in.Load() {
			t.SleepFor(time.Millisecond)
		}
		l.RUnlock()
	})
	s.Go("r2", 1, func(t *sched.Task) {
		defer wg.Done()
		for !r1in.Load() {
			t.SleepFor(time.Millisecond)
		}
		l.RLock(t) // must succeed while r1 still holds shared
		r2in.Store(true)
		l.RUnlock()
	})
	wg.Wait()
}

// TestRWSleepLockWriterExcludes checks mutual exclusion from both
// directions with an invariant counter: a writer must see no readers and
// no other writer inside the critical section, and readers must never
// observe a writer mid-write. Run under -race this also catches a lock
// that fails to establish happens-before edges.
func TestRWSleepLockWriterExcludes(t *testing.T) {
	s := newSched(t, 4)
	var l RWSleepLock
	var readers, writers atomic.Int32
	var violations atomic.Int32
	var wg sync.WaitGroup
	for i := 0; i < 3; i++ {
		wg.Add(1)
		s.Go("reader", 1, func(t *sched.Task) {
			defer wg.Done()
			for n := 0; n < 50; n++ {
				l.RLock(t)
				readers.Add(1)
				if writers.Load() != 0 {
					violations.Add(1)
				}
				readers.Add(-1)
				l.RUnlock()
			}
		})
	}
	for i := 0; i < 2; i++ {
		wg.Add(1)
		s.Go("writer", 1, func(t *sched.Task) {
			defer wg.Done()
			for n := 0; n < 50; n++ {
				l.Lock(t)
				if writers.Add(1) != 1 || readers.Load() != 0 {
					violations.Add(1)
				}
				writers.Add(-1)
				l.Unlock()
			}
		})
	}
	wg.Wait()
	if v := violations.Load(); v != 0 {
		t.Fatalf("%d exclusion violations", v)
	}
}

// TestRWSleepLockWriterPriority: with a writer waiting, a late-arriving
// reader must queue behind it rather than piling onto the current read
// hold (the classic writer-starvation hole). Order of events must be
// r1 → w → r2.
func TestRWSleepLockWriterPriority(t *testing.T) {
	s := newSched(t, 4)
	var l RWSleepLock
	var mu sync.Mutex
	var order []string
	record := func(ev string) {
		mu.Lock()
		order = append(order, ev)
		mu.Unlock()
	}
	var r1in, wstarted, r2tried atomic.Bool
	var wg sync.WaitGroup
	wg.Add(3)
	s.Go("r1", 1, func(t *sched.Task) {
		defer wg.Done()
		l.RLock(t)
		r1in.Store(true)
		for !r2tried.Load() {
			t.SleepFor(time.Millisecond)
		}
		// r2 is (about to be) parked behind the pending writer; give it a
		// beat to actually block, then let go.
		t.SleepFor(10 * time.Millisecond)
		record("r1-release")
		l.RUnlock()
	})
	s.Go("w", 1, func(t *sched.Task) {
		defer wg.Done()
		for !r1in.Load() {
			t.SleepFor(time.Millisecond)
		}
		wstarted.Store(true)
		l.Lock(t) // blocks on r1's shared hold
		record("w-acquired")
		l.Unlock()
	})
	s.Go("r2", 1, func(t *sched.Task) {
		defer wg.Done()
		for !wstarted.Load() {
			t.SleepFor(time.Millisecond)
		}
		t.SleepFor(10 * time.Millisecond) // let w reach the pending state
		r2tried.Store(true)
		l.RLock(t)
		record("r2-acquired")
		l.RUnlock()
	})
	wg.Wait()
	mu.Lock()
	defer mu.Unlock()
	if len(order) != 3 || order[0] != "r1-release" || order[1] != "w-acquired" || order[2] != "r2-acquired" {
		t.Fatalf("order = %v, want [r1-release w-acquired r2-acquired]", order)
	}
}

// TestRWSleepLockKilledWaitingWriter is the regression test for the
// wpend leak: a writer killed while parked behind a reader must not
// leave its pending-writer registration behind. Under the buggy Sleep
// path the kill unwound the goroutine between wpend++ and wpend--, and
// since RLock admits readers only when wpend == 0, every later shared
// acquisition hung forever. Now the wait is uninterruptible: the killed
// writer completes the acquisition, releases, and unwinds at its next
// killable checkpoint — readers keep flowing.
func TestRWSleepLockKilledWaitingWriter(t *testing.T) {
	s := newSched(t, 4)
	var l RWSleepLock
	var r1in, release atomic.Bool
	var wg sync.WaitGroup
	wg.Add(2)
	s.Go("r1", 1, func(t *sched.Task) {
		defer wg.Done()
		l.RLock(t)
		r1in.Store(true)
		for !release.Load() {
			t.SleepFor(time.Millisecond)
		}
		l.RUnlock()
	})
	w := s.Go("w", 1, func(t *sched.Task) {
		defer wg.Done()
		for !r1in.Load() {
			t.SleepFor(time.Millisecond)
		}
		l.Lock(t) // parks behind r1's shared hold
		l.Unlock()
	})
	// Wait for the writer to actually park on the lock's queue, then
	// condemn it while it waits.
	deadline := time.Now().Add(5 * time.Second)
	for l.wq.Waiting() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("writer never parked on the rw lock")
		}
		time.Sleep(time.Millisecond)
	}
	s.Kill(w)
	// Give the kill's wake a beat to land (the writer re-checks and
	// re-parks; it must not unwind), then let the reader go.
	time.Sleep(10 * time.Millisecond)
	release.Store(true)
	wg.Wait()
	// The regression: with wpend leaked, this reader blocks forever.
	got := make(chan struct{})
	s.Go("r2", 1, func(t *sched.Task) {
		l.RLock(t)
		l.RUnlock()
		close(got)
	})
	select {
	case <-got:
	case <-time.After(5 * time.Second):
		t.Fatal("reader blocked after killed writer — pending-writer count leaked")
	}
}

// TestRWSleepLockUnlockWithoutLockPanics: both unlock paths assert.
func TestRWSleepLockUnlockWithoutLockPanics(t *testing.T) {
	for name, fn := range map[string]func(*RWSleepLock){
		"RUnlock": func(l *RWSleepLock) { l.RUnlock() },
		"Unlock":  func(l *RWSleepLock) { l.Unlock() },
	} {
		t.Run(name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s without lock did not panic", name)
				}
			}()
			var l RWSleepLock
			fn(&l)
		})
	}
}
