package ktime

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func newSet(t *testing.T) *Set {
	t.Helper()
	s := NewSet()
	t.Cleanup(s.Close)
	return s
}

func TestOneShotFires(t *testing.T) {
	s := newSet(t)
	done := make(chan time.Time, 1)
	start := time.Now()
	s.After(20*time.Millisecond, func() { done <- time.Now() })
	select {
	case fired := <-done:
		if d := fired.Sub(start); d < 15*time.Millisecond {
			t.Fatalf("fired after %v, want >= ~20ms", d)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("timer never fired")
	}
	if s.Pending() != 0 {
		t.Fatalf("pending = %d after fire", s.Pending())
	}
}

func TestManyVirtualTimersOverOneHardwareTimer(t *testing.T) {
	// The Prototype 1 scenario: dozens of timers, one compare channel,
	// all fire in deadline order.
	s := newSet(t)
	const n = 50
	var mu sync.Mutex
	var order []int
	var wg sync.WaitGroup
	wg.Add(n)
	for i := 0; i < n; i++ {
		d := time.Duration(5+i) * time.Millisecond
		idx := i
		s.After(d, func() {
			mu.Lock()
			order = append(order, idx)
			mu.Unlock()
			wg.Done()
		})
	}
	wg.Wait()
	mu.Lock()
	defer mu.Unlock()
	if len(order) != n {
		t.Fatalf("fired %d of %d", len(order), n)
	}
	// Deadline ordering within jitter: the sequence must be mostly
	// ascending (allow small swaps from scheduler noise).
	inversions := 0
	for i := 1; i < n; i++ {
		if order[i] < order[i-1] {
			inversions++
		}
	}
	if inversions > n/5 {
		t.Fatalf("%d inversions in firing order %v", inversions, order)
	}
}

func TestPeriodicTimer(t *testing.T) {
	s := newSet(t)
	var ticks atomic.Int32
	tm := s.Every(5*time.Millisecond, func() { ticks.Add(1) })
	deadline := time.Now().Add(5 * time.Second)
	for ticks.Load() < 5 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if ticks.Load() < 5 {
		t.Fatalf("ticks = %d", ticks.Load())
	}
	tm.Stop()
	n := ticks.Load()
	time.Sleep(20 * time.Millisecond)
	if ticks.Load() > n+1 {
		t.Fatal("periodic timer kept firing after Stop")
	}
}

func TestStopPreventsFiring(t *testing.T) {
	s := newSet(t)
	var fired atomic.Bool
	tm := s.After(30*time.Millisecond, func() { fired.Store(true) })
	if !tm.Stop() {
		t.Fatal("stop of pending timer returned false")
	}
	if tm.Stop() {
		t.Fatal("second stop returned true")
	}
	time.Sleep(50 * time.Millisecond)
	if fired.Load() {
		t.Fatal("stopped timer fired")
	}
}

func TestEarlierTimerPreemptsSleep(t *testing.T) {
	// Arm a far deadline, then a near one: the driver must wake early for
	// the near timer rather than sleeping to the far deadline.
	s := newSet(t)
	var firstFired atomic.Bool
	s.After(500*time.Millisecond, func() {})
	done := make(chan struct{})
	start := time.Now()
	s.After(10*time.Millisecond, func() {
		firstFired.Store(true)
		close(done)
	})
	select {
	case <-done:
		if time.Since(start) > 200*time.Millisecond {
			t.Fatal("near timer waited for the far deadline")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("near timer never fired")
	}
}

func TestCloseDropsTimers(t *testing.T) {
	s := NewSet()
	var fired atomic.Bool
	s.After(10*time.Millisecond, func() { fired.Store(true) })
	s.Close()
	time.Sleep(30 * time.Millisecond)
	if fired.Load() {
		t.Fatal("timer fired after Close")
	}
	s.Close() // idempotent
}

func TestFiredCounter(t *testing.T) {
	s := newSet(t)
	var wg sync.WaitGroup
	wg.Add(3)
	for i := 0; i < 3; i++ {
		s.After(time.Millisecond, func() { wg.Done() })
	}
	wg.Wait()
	if s.Fired() != 3 {
		t.Fatalf("fired = %d", s.Fired())
	}
}
