// Package ktime implements Proto's virtual timers (Prototype 1, Lab 1
// task 11): many software timers multiplexed over one hardware timer
// compare channel. A min-heap orders pending deadlines; a single driver
// goroutine (standing in for the system-timer compare IRQ) sleeps until
// the earliest deadline and fires callbacks in order. The kernel routes
// sleep() and animation timing through a Set, so dozens of donuts tick
// over one piece of hardware.
package ktime

import (
	"container/heap"
	"sync"
	"time"
)

// Timer is a handle to one pending virtual timer.
type Timer struct {
	deadline time.Time
	period   time.Duration // 0 = one-shot
	fn       func()
	idx      int // heap index, -1 when inactive
	set      *Set
}

// Stop cancels the timer; reports whether it was still pending.
func (t *Timer) Stop() bool {
	t.set.mu.Lock()
	defer t.set.mu.Unlock()
	if t.idx < 0 {
		return false
	}
	heap.Remove(&t.set.q, t.idx)
	t.idx = -1
	return true
}

// timerQueue is the deadline min-heap.
type timerQueue []*Timer

func (q timerQueue) Len() int           { return len(q) }
func (q timerQueue) Less(i, j int) bool { return q[i].deadline.Before(q[j].deadline) }
func (q timerQueue) Swap(i, j int)      { q[i], q[j] = q[j], q[i]; q[i].idx = i; q[j].idx = j }
func (q *timerQueue) Push(x any)        { t := x.(*Timer); t.idx = len(*q); *q = append(*q, t) }
func (q *timerQueue) Pop() any {
	old := *q
	n := len(old)
	t := old[n-1]
	t.idx = -1
	*q = old[:n-1]
	return t
}

// Set multiplexes virtual timers over one "hardware" channel.
type Set struct {
	mu     sync.Mutex
	q      timerQueue
	wake   chan struct{}
	stop   chan struct{}
	fired  int64
	closed bool
}

// NewSet starts the driver.
func NewSet() *Set {
	s := &Set{wake: make(chan struct{}, 1), stop: make(chan struct{})}
	go s.drive()
	return s
}

// After arms a one-shot virtual timer.
func (s *Set) After(d time.Duration, fn func()) *Timer {
	return s.arm(d, 0, fn)
}

// Every arms a periodic virtual timer.
func (s *Set) Every(period time.Duration, fn func()) *Timer {
	if period <= 0 {
		panic("ktime: periodic timer needs a positive period")
	}
	return s.arm(period, period, fn)
}

func (s *Set) arm(d, period time.Duration, fn func()) *Timer {
	t := &Timer{deadline: time.Now().Add(d), period: period, fn: fn, set: s, idx: -1}
	s.mu.Lock()
	if !s.closed {
		heap.Push(&s.q, t)
	}
	s.mu.Unlock()
	s.kick()
	return t
}

func (s *Set) kick() {
	select {
	case s.wake <- struct{}{}:
	default:
	}
}

// drive is the compare-register loop: sleep until the earliest deadline,
// fire everything due, repeat.
func (s *Set) drive() {
	for {
		s.mu.Lock()
		var wait time.Duration = time.Hour
		now := time.Now()
		var due []*Timer
		for len(s.q) > 0 && !s.q[0].deadline.After(now) {
			t := heap.Pop(&s.q).(*Timer)
			due = append(due, t)
			if t.period > 0 {
				t.deadline = now.Add(t.period)
				heap.Push(&s.q, t)
			}
		}
		if len(s.q) > 0 {
			wait = time.Until(s.q[0].deadline)
			if wait < 0 {
				wait = 0
			}
		}
		s.fired += int64(len(due))
		s.mu.Unlock()
		for _, t := range due {
			t.fn()
		}
		hw := time.NewTimer(wait)
		select {
		case <-s.stop:
			hw.Stop()
			return
		case <-s.wake:
			hw.Stop()
		case <-hw.C:
		}
	}
}

// Pending reports armed timers (diagnostics).
func (s *Set) Pending() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.q)
}

// Fired reports total callback invocations.
func (s *Set) Fired() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.fired
}

// Close stops the driver; pending timers never fire.
func (s *Set) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	s.mu.Unlock()
	close(s.stop)
}
