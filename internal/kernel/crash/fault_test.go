// Fault-plan fuzzing: the crash harness's randomized workload runs over a
// seeded FaultPlan injected under the request queue — transient error
// bursts, persistent bad sectors, torn writes, latency spikes and whole-
// device death — and the stack is held to its resilience contract:
//
//   - every run completes or degrades cleanly: no panic, no hang (a
//     watchdog guards each run), and a mount that latched read-only has a
//     typed cause and refuses mutations with fs.ErrReadOnly;
//   - whatever physically landed is recoverable: the final image AND a
//     random crash prefix of it pass the post-crash checker, mount,
//     take live traffic and end strictly fsck-clean.
//
// The FaultDisk sits ABOVE the Recorder (FaultDisk → Recorder → ramdisk),
// so the recorded write log is exactly what reached the media — torn
// prefixes included — and ImageAt composes fault injection with
// crash-point injection.
//
// One integer names a whole fault schedule (hw.RandomPlan derives every
// probability from the seed). Every randomized run logs its seed; rerun a
// failure deterministically with FAULT_SEED=<seed> go test
// ./internal/kernel/crash/.
package crash_test

import (
	"errors"
	"fmt"
	"math/rand"
	"os"
	"strconv"
	"testing"
	"time"

	"protosim/internal/hw"
	"protosim/internal/kernel/blkq"
	"protosim/internal/kernel/crash"
	"protosim/internal/kernel/fat32"
	"protosim/internal/kernel/fs"
	"protosim/internal/kernel/xv6fs"
)

// faultWatchdog bounds one fuzz run. A run that cannot finish inside it
// has hung — the exact failure mode the queue's command timeouts and the
// dead-device latch exist to prevent — so the watchdog panics with the
// run's context to fail loudly with all goroutine stacks.
const faultWatchdog = 2 * time.Minute

// faultSeeds returns the plan seeds for one FS's fuzz sweep: a pinned
// deterministic range (CI runs the same plans every time) plus, outside
// -short, one fresh randomized seed. FAULT_SEED=<n> replays a single plan.
func faultSeeds(t *testing.T) []int64 {
	if env := os.Getenv("FAULT_SEED"); env != "" {
		s, err := strconv.ParseInt(env, 10, 64)
		if err != nil {
			t.Fatalf("bad FAULT_SEED %q: %v", env, err)
		}
		t.Logf("fault seed %d (from FAULT_SEED)", s)
		return []int64{s}
	}
	n := 100
	if testing.Short() {
		n = 12
	}
	out := make([]int64, 0, n+1)
	for i := 1; i <= n; i++ {
		out = append(out, int64(i))
	}
	if !testing.Short() {
		s := time.Now().UnixNano()
		t.Logf("randomized fault seed %d (rerun with FAULT_SEED=%d)", s, s)
		out = append(out, s)
	}
	return out
}

// faultTolerable extends the workload's error filter with everything a
// faulty device may legitimately surface: the typed injection errors, the
// timeout the queue reports for stalled commands, and the read-only latch
// a degraded mount answers with afterwards.
func faultTolerable(err error) bool {
	if tolerable(err) {
		return true
	}
	for _, e := range []error{fs.ErrReadOnly, fs.ErrDeviceDead, fs.ErrBadSector,
		fs.ErrSDInjected, blkq.ErrCmdTimeout} {
		if errors.Is(err, e) {
			return true
		}
	}
	return false
}

// healther is the degraded-mount surface both filesystems expose.
type healther interface {
	Health() (degraded, readOnly bool, cause error)
}

// checkDegradation asserts the clean-degradation contract on a mount that
// survived a fault run: IF it latched read-only it must carry a typed
// cause, count as degraded, and refuse mutations with fs.ErrReadOnly.
func checkDegradation(t *testing.T, ctx string, fsys fs.FileSystem) {
	t.Helper()
	degraded, ro, cause := fsys.(healther).Health()
	if !ro {
		return
	}
	if cause == nil {
		t.Fatalf("%s: read-only latched with nil cause", ctx)
	}
	if !degraded {
		t.Fatalf("%s: read-only but not degraded", ctx)
	}
	if _, err := openOF(fsys, "/ro.probe", fs.OCreate|fs.OWrOnly); !errors.Is(err, fs.ErrReadOnly) {
		t.Fatalf("%s: create on latched mount = %v, want ErrReadOnly", ctx, err)
	}
}

// faultQueue wires a FaultDisk into a request queue the way the kernel
// does: async submit/completion halves, completion notifier as the IRQ.
func faultQueue(fd *hw.FaultDisk, opts blkq.Options) *blkq.Queue {
	opts.Async = fd
	q := blkq.New(fd, opts)
	fd.SetNotify(func() { q.CompletionIRQ() })
	return q
}

// addStats accumulates per-plan injection counters so the sweep can prove
// it injected real faults (a fuzz that injects nothing tests nothing).
func addStats(agg *hw.FaultStats, s hw.FaultStats) {
	agg.Commands += s.Commands
	agg.Transient += s.Transient
	agg.BadSector += s.BadSector
	agg.Torn += s.Torn
	agg.Latency += s.Latency
	agg.Stalls += s.Stalls
	agg.DeadFails += s.DeadFails
	agg.BadSectors += s.BadSectors
}

// fuzzOps is the per-run workload size (the crash sweep's op mix).
func fuzzOps() int {
	if testing.Short() {
		return 25
	}
	return 40
}

// fuzzXv6Plan runs one xv6fs fault-plan round trip and returns what the
// disk injected.
func fuzzXv6Plan(t *testing.T, seed int64, plan hw.FaultPlan, qopts blkq.Options) hw.FaultStats {
	t.Helper()
	ctx := fmt.Sprintf("xv6fs seed %d %s", seed, plan)
	wd := time.AfterFunc(faultWatchdog, func() { panic("fault fuzz hung: " + ctx) })
	defer wd.Stop()

	rd := fs.NewRamdisk(xv6fs.BlockSize, xvBlocks)
	if err := xv6fs.Mkfs(rd, xvNInodes); err != nil {
		t.Fatal(err)
	}
	rec := crash.NewRecorder(rd)
	fd := hw.NewFaultDisk(rec, plan)
	q := faultQueue(fd, qopts)

	fsys, err := xv6fs.MountWith(q, nil, xvCache)
	if err != nil {
		// A fresh image mounts with a handful of reads; an unlucky plan can
		// fail them. Nothing was written, so the image below must verify.
		if !faultTolerable(err) {
			t.Fatalf("%s: mount: %v", ctx, err)
		}
	} else {
		fsys.SetDcache(newDC()) // read-only latch must kill it cleanly
		workloadWith(t, fsys, rand.New(rand.NewSource(seed)), fuzzOps(), faultTolerable)
		if err := fsys.Sync(nil); err != nil && !faultTolerable(err) {
			t.Fatalf("%s: sync: %v", ctx, err)
		}
		checkDegradation(t, ctx, fsys)
	}

	// Recovery sees the device with its fault history gone (a replaced
	// controller): the physically-landed image and a random crash prefix of
	// it must both recover to a strictly clean volume.
	w := rec.Writes()
	verifyXv6(t, rec.ImageAt(w), ctx+" final")
	if w > 0 {
		k := rand.New(rand.NewSource(^seed)).Intn(w)
		verifyXv6(t, rec.ImageAt(k), fmt.Sprintf("%s prefix %d/%d", ctx, k, w))
	}
	return fd.Stats()
}

// fuzzFatPlan is the FAT32 twin of fuzzXv6Plan.
func fuzzFatPlan(t *testing.T, seed int64, plan hw.FaultPlan, qopts blkq.Options) hw.FaultStats {
	t.Helper()
	ctx := fmt.Sprintf("fat32 seed %d %s", seed, plan)
	wd := time.AfterFunc(faultWatchdog, func() { panic("fault fuzz hung: " + ctx) })
	defer wd.Stop()

	rd := fs.NewRamdisk(fat32.SectorSize, fatSectors)
	if err := fat32.Mkfs(rd); err != nil {
		t.Fatal(err)
	}
	rec := crash.NewRecorder(rd)
	fd := hw.NewFaultDisk(rec, plan)
	q := faultQueue(fd, qopts)

	fsys, err := fat32.MountWith(q, nil, fatCache)
	if err != nil {
		if !faultTolerable(err) {
			t.Fatalf("%s: mount: %v", ctx, err)
		}
	} else {
		fsys.SetDcache(newDC()) // read-only latch must kill it cleanly
		workloadWith(t, fsys, rand.New(rand.NewSource(seed)), fuzzOps(), faultTolerable)
		if err := fsys.Sync(nil); err != nil && !faultTolerable(err) {
			t.Fatalf("%s: sync: %v", ctx, err)
		}
		checkDegradation(t, ctx, fsys)
	}

	w := rec.Writes()
	verifyFat(t, rec.ImageAt(w), ctx+" final")
	if w > 0 {
		k := rand.New(rand.NewSource(^seed)).Intn(w)
		verifyFat(t, rec.ImageAt(k), fmt.Sprintf("%s prefix %d/%d", ctx, k, w))
	}
	return fd.Stats()
}

func TestFaultPlanFuzzXv6fs(t *testing.T) {
	var agg hw.FaultStats
	seeds := faultSeeds(t)
	for _, seed := range seeds {
		addStats(&agg, fuzzXv6Plan(t, seed, hw.RandomPlan(seed), blkq.Options{PlugDelay: -1}))
	}
	t.Logf("xv6fs fault fuzz: %d plans, %d commands, %d transient, %d bad-sector, %d torn, %d dead-fails",
		len(seeds), agg.Commands, agg.Transient, agg.BadSector, agg.Torn, agg.DeadFails)
	if agg.Transient+agg.BadSector+agg.Torn+agg.DeadFails == 0 {
		t.Fatal("fault fuzz injected nothing — the plans are inert")
	}
}

func TestFaultPlanFuzzFAT32(t *testing.T) {
	var agg hw.FaultStats
	seeds := faultSeeds(t)
	for _, seed := range seeds {
		addStats(&agg, fuzzFatPlan(t, seed, hw.RandomPlan(seed), blkq.Options{PlugDelay: -1}))
	}
	t.Logf("fat32 fault fuzz: %d plans, %d commands, %d transient, %d bad-sector, %d torn, %d dead-fails",
		len(seeds), agg.Commands, agg.Transient, agg.BadSector, agg.Torn, agg.DeadFails)
	if agg.Transient+agg.BadSector+agg.Torn+agg.DeadFails == 0 {
		t.Fatal("fault fuzz injected nothing — the plans are inert")
	}
}

// TestFaultPlanStalls feeds the timeout path: commands that never
// complete. RandomPlan leaves stalls out (they cost wall-clock), so this
// sweep pins plans with a high stall rate and a short command timeout and
// requires (a) every run to complete or degrade cleanly and (b) the
// timeout machinery to have actually fired across the sweep.
func TestFaultPlanStalls(t *testing.T) {
	seeds := []int64{1, 2, 3}
	if testing.Short() {
		seeds = seeds[:1]
	}
	qopts := blkq.Options{PlugDelay: -1, CmdTimeout: 10 * time.Millisecond}
	var agg hw.FaultStats
	for _, seed := range seeds {
		plan := hw.FaultPlan{Seed: seed, PStall: 0.15, PTransient: 0.05}
		addStats(&agg, fuzzXv6Plan(t, seed, plan, qopts))
		addStats(&agg, fuzzFatPlan(t, seed, plan, qopts))
	}
	if agg.Stalls == 0 {
		t.Fatal("stall sweep stalled nothing — the timeout path went unexercised")
	}
	t.Logf("stall sweep: %d commands, %d stalled", agg.Commands, agg.Stalls)
}
