// Crash-injection fuzz: run a randomized workload over a Recorder-backed
// volume, then for many crash points — random ones plus a pinned set at
// structurally interesting writes — materialize the post-crash image,
// verify it with the independent fsck checker, run real recovery (a
// mount, plus Repair for FAT32), probe the recovered volume with live
// operations, and fsck again in strict mode.
//
// Every randomized run logs its seed; rerun a failure deterministically
// with CRASH_SEED=<seed> go test ./internal/kernel/crash/. The pinned
// regression seeds below always run. Workloads issue operations from one
// goroutine (the cache's flush daemons are never started), so a given
// seed records an identical write sequence on every run; the concurrent
// variants trade that determinism for coverage of interleaved writes —
// every recorded prefix must still verify, whatever interleaving
// happened.
package crash_test

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"strconv"
	"sync"
	"testing"
	"time"

	"protosim/internal/kernel/bcache"
	"protosim/internal/kernel/crash"
	"protosim/internal/kernel/dcache"
	"protosim/internal/kernel/fat32"
	"protosim/internal/kernel/fat32/fatfsck"
	"protosim/internal/kernel/fs"
	"protosim/internal/kernel/xv6fs"
	"protosim/internal/kernel/xv6fs/xfsck"
)

// newDC mints a standalone dentry-cache mount: workload and recovery
// mounts run cached, the way the kernel wires them, so the crash sweeps
// also cover invalidation raced against every crash point.
func newDC() *dcache.Mount { return dcache.New(0, 0).NewMount("/") }

// workloadPaths is the entire namespace the randomized workload can
// touch (crash_test's name() and mkdir ops): the recovery oracle stats
// all of it cold and warm.
func workloadPaths() []string {
	var out []string
	for i := 0; i < 8; i++ {
		out = append(out, fmt.Sprintf("/f%d.dat", i))
	}
	for i := 0; i < 3; i++ {
		d := fmt.Sprintf("/d%d", i)
		out = append(out, d, d+"/in.dat")
	}
	return out
}

// coldWarmCheck stats every workload path twice on a freshly recovered
// mount: the first pass walks the directory blocks and fills the dentry
// cache, the second is served from it. Any divergence means recovery
// left the cache and the on-disk directories telling different stories.
func coldWarmCheck(t *testing.T, fsys fs.FileSystem, m *dcache.Mount, ctx string) {
	t.Helper()
	type ans struct {
		err  error
		size int64
		typ  fs.FileType
	}
	cold := make(map[string]ans)
	for _, p := range workloadPaths() {
		st, err := fsys.Stat(nil, p)
		cold[p] = ans{err, st.Size, st.Type}
	}
	hot0 := m.Stats()
	for _, p := range workloadPaths() {
		st, err := fsys.Stat(nil, p)
		c := cold[p]
		if (err == nil) != (c.err == nil) || (err != nil && !errors.Is(err, c.err)) {
			t.Fatalf("%s: cold/warm divergence at %s: cold err %v, warm err %v", ctx, p, c.err, err)
		}
		if err == nil && (st.Size != c.size || st.Type != c.typ) {
			t.Fatalf("%s: cold/warm divergence at %s: cold (size %d, %v), warm (size %d, %v)",
				ctx, p, c.size, c.typ, st.Size, st.Type)
		}
	}
	hot1 := m.Stats()
	if hot1.Hits+hot1.NegHits <= hot0.Hits+hot0.NegHits {
		t.Fatalf("%s: warm pass never hit the dentry cache", ctx)
	}
}

// regressionSeeds always run: seeds that once exposed bugs (or that the
// suite has simply always run) stay pinned so fixes cannot silently
// regress.
var regressionSeeds = []int64{1, 7, 42}

// seeds returns the seeds for one test: the pinned regression set plus,
// outside -short, one fresh randomized seed (logged for replay) or the
// CRASH_SEED override.
func seeds(t *testing.T) []int64 {
	if env := os.Getenv("CRASH_SEED"); env != "" {
		s, err := strconv.ParseInt(env, 10, 64)
		if err != nil {
			t.Fatalf("bad CRASH_SEED %q: %v", env, err)
		}
		t.Logf("seed %d (from CRASH_SEED)", s)
		return []int64{s}
	}
	out := regressionSeeds
	if !testing.Short() {
		s := time.Now().UnixNano()
		t.Logf("randomized seed %d (rerun with CRASH_SEED=%d)", s, s)
		out = append(append([]int64{}, out...), s)
	}
	return out
}

// points picks which crash points to verify: the two endpoints, every
// pinned point, and enough random ones to reach n.
func points(rng *rand.Rand, writes, n int, pinned []int) []int {
	seen := map[int]bool{0: true, writes: true}
	out := []int{0, writes}
	for _, p := range pinned {
		if p >= 0 && p <= writes && !seen[p] {
			seen[p] = true
			out = append(out, p)
		}
	}
	for len(out) < n && len(out) < writes+1 {
		p := rng.Intn(writes + 1)
		if !seen[p] {
			seen[p] = true
			out = append(out, p)
		}
	}
	return out
}

// tolerable filters workload errors: the randomized ops race each other
// over a small namespace and a small volume, so "not found", "exists",
// "not empty", "no space" and friends are expected outcomes, not bugs.
func tolerable(err error) bool {
	switch err {
	case nil, fs.ErrNotFound, fs.ErrExists, fs.ErrNotEmpty, fs.ErrNoSpace,
		fs.ErrIsDir, fs.ErrNotDir, fs.ErrPerm:
		return true
	}
	return false
}

func openOF(fsys fs.FileSystem, path string, flags int) (*fs.OpenFile, error) {
	ops, err := fsys.Open(nil, path, flags)
	if err != nil {
		return nil, err
	}
	return fs.NewOpenFile(ops, flags), nil
}

// workload runs nOps randomized metadata-heavy operations — create,
// append, overwrite, fsync, unlink, mkdir, rename and rename-replace —
// against any mounted filesystem.
func workload(t *testing.T, fsys fs.FileSystem, rng *rand.Rand, nOps int) {
	t.Helper()
	workloadWith(t, fsys, rng, nOps, tolerable)
}

// workloadWith is workload with a pluggable error filter: the fault-plan
// fuzz reuses the same op mix but must additionally tolerate injected IO
// errors and the read-only latch they leave behind.
func workloadWith(t *testing.T, fsys fs.FileSystem, rng *rand.Rand, nOps int, tol func(error) bool) {
	t.Helper()
	ren, _ := fsys.(fs.Renamer)
	name := func() string { return fmt.Sprintf("/f%d.dat", rng.Intn(8)) }
	payload := func() []byte {
		p := make([]byte, 1+rng.Intn(6000))
		rng.Read(p)
		return p
	}
	for i := 0; i < nOps; i++ {
		var err error
		switch op := rng.Intn(10); op {
		case 0, 1: // create / overwrite
			var fl *fs.OpenFile
			if fl, err = openOF(fsys, name(), fs.OCreate|fs.OWrOnly); err == nil {
				_, err = fl.Write(nil, payload())
				fl.Close(nil)
			}
		case 2, 3: // append
			var fl *fs.OpenFile
			if fl, err = openOF(fsys, name(), fs.OWrOnly|fs.OAppend); err == nil {
				_, err = fl.Write(nil, payload())
				fl.Close(nil)
			}
		case 4: // fsync
			var fl *fs.OpenFile
			if fl, err = openOF(fsys, name(), fs.OWrOnly|fs.OAppend); err == nil {
				if _, err = fl.Write(nil, payload()); err == nil {
					err = fl.Sync(nil)
				}
				fl.Close(nil)
			}
		case 5, 6: // unlink
			err = fsys.Unlink(nil, name())
		case 7: // mkdir + a file inside
			d := fmt.Sprintf("/d%d", rng.Intn(3))
			if err = fsys.Mkdir(nil, d); tol(err) {
				var fl *fs.OpenFile
				if fl, err = openOF(fsys, d+"/in.dat", fs.OCreate|fs.OWrOnly); err == nil {
					_, err = fl.Write(nil, payload())
					fl.Close(nil)
				}
			}
		case 8, 9: // rename, often onto an existing target (replace)
			if ren != nil {
				err = ren.Rename(nil, name(), name())
			}
		}
		if !tol(err) {
			t.Fatalf("workload op %d: %v", i, err)
		}
	}
}

// --- xv6fs ---

const (
	xvBlocks  = 1024
	xvNInodes = 64
)

// xvCache keeps per-point mounts cheap; the journal needs slots ≤ half
// the cache, which 256 buffers comfortably covers.
var xvCache = bcache.Options{Buffers: 256, Shards: 4, Readahead: -1,
	FlushInterval: time.Hour, WritebackRatio: -1}

// recordXv6 formats a volume, wraps it in a Recorder and runs the
// workload on a journaled mount.
func recordXv6(t *testing.T, seed int64, nOps int) *crash.Recorder {
	t.Helper()
	rd := fs.NewRamdisk(xv6fs.BlockSize, xvBlocks)
	if err := xv6fs.Mkfs(rd, xvNInodes); err != nil {
		t.Fatal(err)
	}
	rec := crash.NewRecorder(rd)
	fsys, err := xv6fs.MountWith(rec, nil, xvCache)
	if err != nil {
		t.Fatal(err)
	}
	if fsys.Journal() == nil {
		t.Fatal("volume mounted without a journal")
	}
	fsys.SetDcache(newDC())
	workload(t, fsys, rand.New(rand.NewSource(seed)), nOps)
	return rec
}

// verifyXv6 is the per-crash-point oracle: the image must pass the
// journal-aware checker as-is (orphans tolerated), a real mount must
// recover it, the recovered volume must take live traffic, and after a
// sync it must pass strict fsck.
func verifyXv6(t *testing.T, img *fs.Ramdisk, ctx string) {
	t.Helper()
	rep, err := xfsck.Check(img, xfsck.PostCrash)
	if err != nil {
		t.Fatalf("%s: %v", ctx, err)
	}
	if !rep.Clean() {
		t.Fatalf("%s: post-crash fsck: %v (%s)", ctx, rep.Errors, rep)
	}
	fsys, err := xv6fs.MountWith(img, nil, xvCache) // replays the log, reclaims orphans
	if err != nil {
		t.Fatalf("%s: recovery mount: %v", ctx, err)
	}
	dc := newDC()
	fsys.SetDcache(dc)
	probe(t, fsys, ctx)
	coldWarmCheck(t, fsys, dc, ctx)
	if err := fsys.Sync(nil); err != nil {
		t.Fatalf("%s: sync after probe: %v", ctx, err)
	}
	rep, err = xfsck.Check(img, xfsck.Strict)
	if err != nil {
		t.Fatalf("%s: %v", ctx, err)
	}
	if !rep.Clean() {
		t.Fatalf("%s: strict fsck after recovery: %v (%s)", ctx, rep.Errors, rep)
	}
}

// probe exercises a recovered volume: create, write, read back, remove.
func probe(t *testing.T, fsys fs.FileSystem, ctx string) {
	t.Helper()
	fl, err := openOF(fsys, "/probe.tmp", fs.OCreate|fs.ORdWr)
	if err != nil {
		t.Fatalf("%s: probe create: %v", ctx, err)
	}
	want := []byte("recovered volume takes traffic")
	if _, err := fl.Write(nil, want); err != nil {
		t.Fatalf("%s: probe write: %v", ctx, err)
	}
	got := make([]byte, len(want))
	if _, err := fl.Pread(nil, got, 0); err != nil || string(got) != string(want) {
		t.Fatalf("%s: probe read: %v (%q)", ctx, err, got)
	}
	fl.Close(nil)
	if err := fsys.Unlink(nil, "/probe.tmp"); err != nil {
		t.Fatalf("%s: probe unlink: %v", ctx, err)
	}
}

// logHeaderPoints pins crash points bracketing every journal-header
// write: just before (committed transaction absent) and just after
// (commit point durable, checkpoint not) — the two halves of the
// write-ahead contract.
func logHeaderPoints(rec *crash.Recorder) []int {
	var out []int
	for i := 0; i < rec.Writes(); i++ {
		if lba, _ := rec.WriteLBA(i); lba == 1 {
			out = append(out, i, i+1)
		}
	}
	return out
}

func TestCrashXv6fs(t *testing.T) {
	nOps, nPoints := 60, 50
	if testing.Short() {
		nOps, nPoints = 25, 8
	}
	for _, seed := range seeds(t) {
		rec := recordXv6(t, seed, nOps)
		rng := rand.New(rand.NewSource(seed + 1))
		for _, k := range points(rng, rec.Writes(), nPoints, logHeaderPoints(rec)) {
			verifyXv6(t, rec.ImageAt(k), fmt.Sprintf("seed %d point %d/%d", seed, k, rec.Writes()))
		}
	}
}

// TestCrashXv6fsFsyncDurability pins the journal's actual promise: after
// an fsync returns, a crash at ANY later point leaves the fsynced bytes
// readable under the fsynced name.
func TestCrashXv6fsFsyncDurability(t *testing.T) {
	rd := fs.NewRamdisk(xv6fs.BlockSize, xvBlocks)
	if err := xv6fs.Mkfs(rd, xvNInodes); err != nil {
		t.Fatal(err)
	}
	rec := crash.NewRecorder(rd)
	fsys, err := xv6fs.MountWith(rec, nil, xvCache)
	if err != nil {
		t.Fatal(err)
	}
	want := make([]byte, 3*xv6fs.BlockSize)
	rand.New(rand.NewSource(99)).Read(want)
	fl, err := openOF(fsys, "/durable.dat", fs.OCreate|fs.OWrOnly)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fl.Write(nil, want); err != nil {
		t.Fatal(err)
	}
	if err := fl.Sync(nil); err != nil {
		t.Fatal(err)
	}
	fl.Close(nil)
	barrier := rec.Writes()
	// Unrelated traffic after the fsync must not be able to unwrite it.
	workload(t, fsys, rand.New(rand.NewSource(3)), 20)

	for _, k := range []int{barrier, barrier + (rec.Writes()-barrier)/2, rec.Writes()} {
		img := rec.ImageAt(k)
		ctx := fmt.Sprintf("point %d", k)
		verifyXv6(t, img, ctx)
		after, err := xv6fs.MountWith(img, nil, xvCache)
		if err != nil {
			t.Fatalf("%s: %v", ctx, err)
		}
		fl, err := openOF(after, "/durable.dat", fs.ORdOnly)
		if err != nil {
			t.Fatalf("%s: fsynced file lost: %v", ctx, err)
		}
		got := make([]byte, len(want))
		if _, err := fl.Pread(nil, got, 0); err != nil {
			t.Fatalf("%s: %v", ctx, err)
		}
		fl.Close(nil)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("%s: fsynced byte %d: got %#x want %#x", ctx, i, got[i], want[i])
			}
		}
	}
}

func TestCrashXv6fsConcurrent(t *testing.T) {
	if testing.Short() {
		t.Skip("concurrent crash fuzz skipped in short mode")
	}
	rd := fs.NewRamdisk(xv6fs.BlockSize, 2048)
	if err := xv6fs.Mkfs(rd, xvNInodes); err != nil {
		t.Fatal(err)
	}
	rec := crash.NewRecorder(rd)
	fsys, err := xv6fs.MountWith(rec, nil, xvCache)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			workload(t, fsys, rand.New(rand.NewSource(int64(100+w))), 25)
		}(w)
	}
	wg.Wait()
	rng := rand.New(rand.NewSource(4))
	for _, k := range points(rng, rec.Writes(), 12, logHeaderPoints(rec)) {
		verifyXv6(t, rec.ImageAt(k), fmt.Sprintf("concurrent point %d/%d", k, rec.Writes()))
	}
}

// --- FAT32 ---

const fatSectors = 4096 // 2 MB volume

var fatCache = bcache.Options{Buffers: 512, Shards: 4, Readahead: -1,
	FlushInterval: time.Hour, WritebackRatio: -1}

func recordFat(t *testing.T, seed int64, nOps int) *crash.Recorder {
	return recordFatPath(t, seed, nOps, fat32.DataPathRange)
}

// recordFatPath records the workload with file data flowing through the
// given data path (metadata always goes through the cache): the
// single-block and bypass baselines order their device writes
// differently from the default coalesced range path, so each gets its
// own crash sweep.
func recordFatPath(t *testing.T, seed int64, nOps int, dp fat32.DataPath) *crash.Recorder {
	t.Helper()
	rd := fs.NewRamdisk(fat32.SectorSize, fatSectors)
	if err := fat32.Mkfs(rd); err != nil {
		t.Fatal(err)
	}
	rec := crash.NewRecorder(rd)
	fsys, err := fat32.MountWith(rec, nil, fatCache)
	if err != nil {
		t.Fatal(err)
	}
	fsys.SetDataPath(dp)
	fsys.SetDcache(newDC())
	workload(t, fsys, rand.New(rand.NewSource(seed)), nOps)
	return rec
}

// verifyFat is the FAT32 oracle: the crash image must already pass the
// checker with only repairable artifacts, Repair must then make it
// strictly clean, and the repaired volume must mount, take live traffic
// and still be strictly clean after a sync.
func verifyFat(t *testing.T, img *fs.Ramdisk, ctx string) {
	t.Helper()
	rep, err := fatfsck.Check(img, fatfsck.PostCrash)
	if err != nil {
		t.Fatalf("%s: %v", ctx, err)
	}
	if !rep.Clean() {
		t.Fatalf("%s: post-crash fsck: %v (%s)", ctx, rep.Errors, rep)
	}
	if rep, err = fatfsck.Repair(img); err != nil || !rep.Clean() {
		t.Fatalf("%s: repair: %v %v", ctx, err, rep.Errors)
	}
	fsys, err := fat32.MountWith(img, nil, fatCache)
	if err != nil {
		t.Fatalf("%s: mount after repair: %v", ctx, err)
	}
	dc := newDC()
	fsys.SetDcache(dc)
	probe(t, fsys, ctx)
	coldWarmCheck(t, fsys, dc, ctx)
	if err := fsys.Sync(nil); err != nil {
		t.Fatalf("%s: sync after probe: %v", ctx, err)
	}
	if rep, err = fatfsck.Check(img, fatfsck.Strict); err != nil {
		t.Fatalf("%s: %v", ctx, err)
	}
	if !rep.Clean() {
		t.Fatalf("%s: strict fsck after repair: %v (%s)", ctx, rep.Errors, rep)
	}
}

// direntPoints pins crash points around writes that can publish or
// unpublish directory entries: commands touching the metadata area
// (boot, FSInfo, FAT) or the root directory's cluster — the sectors the
// ordered-writes discipline sequences.
func direntPoints(rec *crash.Recorder, img *fs.Ramdisk) []int {
	boot := make([]byte, fat32.SectorSize)
	if err := img.ReadBlocks(0, 1, boot); err != nil {
		return nil
	}
	reserved := int(binary.LittleEndian.Uint16(boot[14:]))
	dataStart := reserved + int(binary.LittleEndian.Uint32(boot[36:]))
	var out []int
	for i := 0; i < rec.Writes(); i++ {
		if lba, _ := rec.WriteLBA(i); lba < dataStart+fat32.SectorsPerCluster {
			out = append(out, i, i+1)
		}
	}
	return out
}

func TestCrashFAT32(t *testing.T) {
	nOps, nPoints := 60, 50
	if testing.Short() {
		nOps, nPoints = 25, 8
	}
	for _, seed := range seeds(t) {
		rec := recordFat(t, seed, nOps)
		rng := rand.New(rand.NewSource(seed + 1))
		base := rec.ImageAt(0)
		for _, k := range points(rng, rec.Writes(), nPoints, direntPoints(rec, base)) {
			verifyFat(t, rec.ImageAt(k), fmt.Sprintf("seed %d point %d/%d", seed, k, rec.Writes()))
		}
	}
}

// TestCrashFAT32DataPaths sweeps the same crash-point fuzz over the two
// measurement-baseline data paths (single-block cached loop, and direct-
// device bypass). Only the default range path was crash-tested before;
// the baselines put data on the device in a different order relative to
// the ordered metadata writes — the bypass path in particular hits the
// device before any cache flush — and every prefix must still verify,
// repair, and take live traffic.
func TestCrashFAT32DataPaths(t *testing.T) {
	nOps, nPoints := 60, 25
	if testing.Short() {
		nOps, nPoints = 25, 6
	}
	for _, dp := range []fat32.DataPath{fat32.DataPathSingleBlock, fat32.DataPathBypass} {
		for _, seed := range seeds(t) {
			rec := recordFatPath(t, seed, nOps, dp)
			rng := rand.New(rand.NewSource(seed + 2))
			base := rec.ImageAt(0)
			for _, k := range points(rng, rec.Writes(), nPoints, direntPoints(rec, base)) {
				verifyFat(t, rec.ImageAt(k), fmt.Sprintf("path %s seed %d point %d/%d", dp, seed, k, rec.Writes()))
			}
		}
	}
}

func TestCrashFAT32Concurrent(t *testing.T) {
	if testing.Short() {
		t.Skip("concurrent crash fuzz skipped in short mode")
	}
	rd := fs.NewRamdisk(fat32.SectorSize, 8192)
	if err := fat32.Mkfs(rd); err != nil {
		t.Fatal(err)
	}
	rec := crash.NewRecorder(rd)
	fsys, err := fat32.MountWith(rec, nil, fatCache)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			workload(t, fsys, rand.New(rand.NewSource(int64(200+w))), 25)
		}(w)
	}
	wg.Wait()
	rng := rand.New(rand.NewSource(5))
	for _, k := range points(rng, rec.Writes(), 12, nil) {
		verifyFat(t, rec.ImageAt(k), fmt.Sprintf("concurrent point %d/%d", k, rec.Writes()))
	}
}

// TestRecorderImageIndependence pins the harness itself: images from
// different crash points are snapshots, not views — mutating one (as
// recovery mounts do) must not bleed into another or into the live
// device.
func TestRecorderImageIndependence(t *testing.T) {
	rd := fs.NewRamdisk(512, 8)
	rec := crash.NewRecorder(rd)
	blk := make([]byte, 512)
	for i := byte(1); i <= 3; i++ {
		blk[0] = i
		if err := rec.WriteBlocks(int(i), 1, blk); err != nil {
			t.Fatal(err)
		}
	}
	if rec.Writes() != 3 {
		t.Fatalf("recorded %d writes, want 3", rec.Writes())
	}
	img1, img2 := rec.ImageAt(1), rec.ImageAt(3)
	got := make([]byte, 512)
	img1.ReadBlocks(2, 1, got)
	if got[0] != 0 {
		t.Fatal("point-1 image contains a later write")
	}
	img2.ReadBlocks(2, 1, got)
	if got[0] != 2 {
		t.Fatal("point-3 image lost a write")
	}
	// Mutating a crash image must not affect the device or other images.
	blk[0] = 0xFF
	img2.WriteBlocks(1, 1, blk)
	rd.ReadBlocks(1, 1, got)
	if got[0] != 1 {
		t.Fatal("crash image mutation bled into the live device")
	}
}
