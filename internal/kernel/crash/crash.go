// Package crash is the kernel's crash-injection harness: record every
// write a filesystem issues to its block device, then reconstruct the
// disk image as it would look had the machine lost power after any prefix
// of those writes.
//
// A Recorder wraps the real device (it satisfies fs.BlockDevice, so it
// slots under the buffer cache or under a blkq request queue) and logs
// write COMMANDS — post-merge, post-elevator, in the exact order the
// device saw them. That order is the ground truth for crash simulation:
// a power cut at command granularity leaves the device holding the base
// image plus some prefix of the recorded commands, and nothing else.
//
// The test loop is then:
//
//	rec := crash.NewRecorder(fs.NewRamdisk(bs, n))
//	mkfs + mount on rec, run a workload, unmount
//	for each crash point k (random or pinned):
//	    img := rec.ImageAt(k)     // fresh ramdisk: base + first k writes
//	    run recovery / repair against img
//	    fsck the result, remount it, probe it
//
// Reads pass straight through and are not recorded; they cannot affect
// the post-crash image.
package crash

import (
	"sync"

	"protosim/internal/kernel/fs"
)

// wcmd is one recorded write command.
type wcmd struct {
	lba  int
	data []byte // len is a multiple of the device block size
}

// Recorder is an fs.BlockDevice that forwards all IO to an underlying
// device while keeping (a) a snapshot of the device taken at creation and
// (b) the ordered log of every write command since. It is safe for
// concurrent use, matching the device contract.
type Recorder struct {
	dev fs.BlockDevice

	mu     sync.Mutex
	base   []byte
	writes []wcmd
}

// NewRecorder wraps dev, snapshotting its current contents as the crash
// baseline. Wrap BEFORE mkfs to make even the format crashable, or after
// it to treat the freshly-made filesystem as the baseline.
func NewRecorder(dev fs.BlockDevice) *Recorder {
	r := &Recorder{dev: dev}
	bs := dev.BlockSize()
	r.base = make([]byte, bs*dev.Blocks())
	if err := dev.ReadBlocks(0, dev.Blocks(), r.base); err != nil {
		panic("crash: snapshotting device: " + err.Error())
	}
	return r
}

// BlockSize implements fs.BlockDevice.
func (r *Recorder) BlockSize() int { return r.dev.BlockSize() }

// Blocks implements fs.BlockDevice.
func (r *Recorder) Blocks() int { return r.dev.Blocks() }

// ReadBlocks implements fs.BlockDevice. Reads are not recorded.
func (r *Recorder) ReadBlocks(lba, n int, dst []byte) error {
	return r.dev.ReadBlocks(lba, n, dst)
}

// WriteBlocks implements fs.BlockDevice: forward the command and append
// it to the log. The copy is taken under the log lock so the recorded
// bytes are exactly what this command carried even if the caller reuses
// the buffer.
func (r *Recorder) WriteBlocks(lba, n int, src []byte) error {
	if err := r.dev.WriteBlocks(lba, n, src); err != nil {
		return err
	}
	bs := r.dev.BlockSize()
	cp := make([]byte, n*bs)
	copy(cp, src)
	r.mu.Lock()
	r.writes = append(r.writes, wcmd{lba: lba, data: cp})
	r.mu.Unlock()
	return nil
}

// Writes reports how many write commands have been recorded — the number
// of distinct crash points is Writes()+1 (point 0 is the bare baseline).
func (r *Recorder) Writes() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.writes)
}

// WriteLBA returns the starting LBA and block count of recorded command
// i. Tests use it to find structurally interesting crash points — the
// write of a journal header, of a directory-entry sector — and pin
// crashes just before and after them.
func (r *Recorder) WriteLBA(i int) (lba, n int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	w := r.writes[i]
	return w.lba, len(w.data) / r.dev.BlockSize()
}

// ImageAt materializes the crash image after the first k write commands:
// a fresh ramdisk holding the baseline snapshot with commands [0,k)
// replayed over it, fully independent of the live device. k ranges from
// 0 (nothing survived) to Writes() (everything did).
func (r *Recorder) ImageAt(k int) *fs.Ramdisk {
	r.mu.Lock()
	defer r.mu.Unlock()
	if k < 0 || k > len(r.writes) {
		panic("crash: crash point out of range")
	}
	bs := r.dev.BlockSize()
	img := make([]byte, len(r.base))
	copy(img, r.base)
	for _, w := range r.writes[:k] {
		copy(img[w.lba*bs:], w.data)
	}
	return fs.NewRamdiskFromImage(bs, img)
}

var _ fs.BlockDevice = (*Recorder)(nil)
