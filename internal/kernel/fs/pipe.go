package fs

import (
	"sync"

	"protosim/internal/kernel/bufpool"
	"protosim/internal/kernel/sched"
)

// PipeSize is the ring capacity — xv6's 512 bytes, which Figure 11 shows
// becoming a bottleneck even for 10-byte keyboard events.
const PipeSize = 512

// pipe is the shared ring between the two ends. The ring's backing
// buffer comes from the shared bufpool size class and goes back when the
// last end closes, so a shell pipeline churning pipes recycles one
// buffer instead of allocating per pipe.
type pipe struct {
	mu      sync.Mutex
	buf     []byte // PipeSize bytes from bufpool; nil once released
	r, w    int    // total bytes read/written (mod indices derived)
	readers int
	writers int
	rwq     sched.WaitQueue // readers waiting for data
	wwq     sched.WaitQueue // writers waiting for room
}

// PipeReader is the read end.
type PipeReader struct {
	BaseOps
	p *pipe
}

// PipeWriter is the write end.
type PipeWriter struct {
	BaseOps
	p *pipe
}

// NewPipe returns connected read and write ends.
func NewPipe() (*PipeReader, *PipeWriter) {
	p := &pipe{buf: bufpool.Shared(PipeSize).Get(), readers: 1, writers: 1}
	return &PipeReader{p: p}, &PipeWriter{p: p}
}

// release returns the ring to the pool once both ends are closed.
// Called with p.mu held; the nil guard makes a double release (two Close
// racers both observing zero counts) put the buffer back only once.
func (p *pipe) release() {
	if p.readers == 0 && p.writers == 0 && p.buf != nil {
		bufpool.Shared(PipeSize).Put(p.buf)
		p.buf = nil
	}
}

func (p *pipe) used() int { return p.w - p.r }

// Read blocks until data or all writers close (then EOF: n=0, nil error —
// following xv6's pipe convention which shell pipelines rely on).
func (r *PipeReader) Read(t *sched.Task, buf []byte) (int, error) {
	p := r.p
	for {
		p.mu.Lock()
		if p.used() > 0 {
			n := 0
			for n < len(buf) && p.used() > 0 {
				buf[n] = p.buf[p.r%PipeSize]
				p.r++
				n++
			}
			p.mu.Unlock()
			p.wwq.WakeAll()
			return n, nil
		}
		if p.writers == 0 {
			p.mu.Unlock()
			return 0, nil // EOF
		}
		p.mu.Unlock()
		p.rwq.Sleep(t)
	}
}

// Write blocks while the ring is full; writing with no readers returns
// ErrPipeClosed (the EPIPE analogue).
func (w *PipeWriter) Write(t *sched.Task, buf []byte) (int, error) {
	p := w.p
	written := 0
	for written < len(buf) {
		p.mu.Lock()
		if p.readers == 0 {
			p.mu.Unlock()
			if written > 0 {
				return written, nil
			}
			return 0, ErrPipeClosed
		}
		wrote := false
		for written < len(buf) && p.used() < PipeSize {
			p.buf[p.w%PipeSize] = buf[written]
			p.w++
			written++
			wrote = true
		}
		p.mu.Unlock()
		if wrote {
			p.rwq.WakeAll()
		}
		if written < len(buf) {
			p.wwq.Sleep(t)
		}
	}
	return written, nil
}

// Close drops the read end; blocked writers fail with ErrPipeClosed.
func (r *PipeReader) Close(*sched.Task) error {
	p := r.p
	p.mu.Lock()
	p.readers--
	p.release()
	p.mu.Unlock()
	p.wwq.WakeAll()
	return nil
}

// Close drops the write end; blocked readers see EOF.
func (w *PipeWriter) Close(*sched.Task) error {
	p := w.p
	p.mu.Lock()
	p.writers--
	p.release()
	p.mu.Unlock()
	p.rwq.WakeAll()
	return nil
}

// Stat implements FileOps.
func (r *PipeReader) Stat(*sched.Task) (Stat, error) {
	r.p.mu.Lock()
	defer r.p.mu.Unlock()
	return Stat{Name: "pipe", Type: TypePipe, Size: int64(r.p.used())}, nil
}

// Stat implements FileOps.
func (w *PipeWriter) Stat(*sched.Task) (Stat, error) {
	w.p.mu.Lock()
	defer w.p.mu.Unlock()
	return Stat{Name: "pipe", Type: TypePipe, Size: int64(w.p.used())}, nil
}

var (
	_ FileOps = (*PipeReader)(nil)
	_ FileOps = (*PipeWriter)(nil)
)
