// Package fs is Proto's file layer: the single FileOps contract every
// open file object implements, the kernel-owned OpenFile (the open file
// description), device files (devfs), proc files (procfs), pipes, and the
// VFS that dispatches paths to mounted filesystems — the root xv6fs at
// "/" and the FAT32 SD partition at "/d" in Prototype 5 (§4.5).
//
// # Ownership: FDTable → OpenFile → FileOps → inode
//
// The layer follows Linux's struct file / file_operations split. From the
// top:
//
//	FDTable    per-process descriptor numbers → shared *OpenFile
//	OpenFile   the OFD: offset, open flags, O_APPEND routing, descriptor
//	           refcount + in-flight-operation guard, per-open
//	           writeback-error cursor (errseq.Cursor, Linux's f_wb_err)
//	FileOps    per-file operations: Pread/Pwrite at explicit offsets (or
//	           Read/Write streams), Stat, Sync, ReadDir, Ioctl — all
//	           task-first; capabilities via a Caps bitmask, no type
//	           assertions
//	inode      the filesystem's per-file state (xv6fs itable inode, FAT32
//	           pseudo-inode), with its errseq.Stream of writeback errors
//
// dup and fork share the OpenFile — offset, flags and error cursor move
// together, POSIX-style — while two independent opens of one path get two
// OpenFiles over one inode: separate offsets, separate error cursors, one
// errseq stream. That split is what makes both positional IO (pread takes
// no offset lock at all) and f_wb_err semantics (each descriptor observes
// a writeback failure exactly once) fall out naturally.
//
// The package also defines the two contracts the storage stack hangs off:
// BlockDevice, the multi-block command interface every filesystem's cache
// drives (and the kernel's BlockIO wraps), and Syncer, which VFS.SyncAll
// uses as the single flush path for every mounted filesystem's write-back
// state. See ARCHITECTURE.md for the full layer diagram.
package fs
