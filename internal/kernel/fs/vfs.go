package fs

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"protosim/internal/kernel/sched"
)

// VFS dispatches file syscalls to mounted filesystems by longest-prefix
// path match — Prototype 5's interposition layer that routes "/d/..." to
// FatFS and everything else to xv6fs (§4.5).
type VFS struct {
	mu     sync.RWMutex
	mounts map[string]FileSystem // mount point -> fs ("/" must exist)
}

// NewVFS returns an empty mount table.
func NewVFS() *VFS { return &VFS{mounts: make(map[string]FileSystem)} }

// Mount attaches fsys at point ("/", "/d", "/dev", "/proc").
func (v *VFS) Mount(point string, fsys FileSystem) error {
	point = Clean(point)
	v.mu.Lock()
	defer v.mu.Unlock()
	if _, dup := v.mounts[point]; dup {
		return fmt.Errorf("vfs: %s already mounted", point)
	}
	v.mounts[point] = fsys
	return nil
}

// MountPoints lists mount points, longest first.
func (v *VFS) MountPoints() []string {
	v.mu.RLock()
	defer v.mu.RUnlock()
	pts := make([]string, 0, len(v.mounts))
	for p := range v.mounts {
		pts = append(pts, p)
	}
	sort.Slice(pts, func(i, j int) bool { return len(pts[i]) > len(pts[j]) })
	return pts
}

// resolve finds the filesystem owning path and the path relative to it.
func (v *VFS) resolve(path string) (FileSystem, string, error) {
	path = Clean(path)
	v.mu.RLock()
	defer v.mu.RUnlock()
	best := ""
	var bestFS FileSystem
	for point, fsys := range v.mounts {
		if !strings.HasPrefix(path, point) {
			continue
		}
		// "/d" must not match "/data": the next byte must be '/' or end.
		if point != "/" && len(path) > len(point) && path[len(point)] != '/' {
			continue
		}
		if len(point) > len(best) {
			best, bestFS = point, fsys
		}
	}
	if bestFS == nil {
		return nil, "", fmt.Errorf("vfs: no filesystem for %q", path)
	}
	rel := strings.TrimPrefix(path, best)
	if !strings.HasPrefix(rel, "/") {
		rel = "/" + rel
	}
	return bestFS, rel, nil
}

// Open opens path with flags, returning a fresh open file description
// wrapping the filesystem's FileOps — the one place OFDs are minted on
// the syscall path, so offset ownership, append routing and the per-open
// error cursor are uniform across every mounted filesystem.
func (v *VFS) Open(t *sched.Task, path string, flags int) (*OpenFile, error) {
	fsys, rel, err := v.resolve(path)
	if err != nil {
		return nil, err
	}
	ops, err := fsys.Open(t, rel, flags)
	if err != nil {
		return nil, err
	}
	return NewOpenFile(ops, flags), nil
}

// Mkdir creates a directory.
func (v *VFS) Mkdir(t *sched.Task, path string) error {
	fsys, rel, err := v.resolve(path)
	if err != nil {
		return err
	}
	return fsys.Mkdir(t, rel)
}

// Unlink removes a file.
func (v *VFS) Unlink(t *sched.Task, path string) error {
	fsys, rel, err := v.resolve(path)
	if err != nil {
		return err
	}
	return fsys.Unlink(t, rel)
}

// Rename atomically moves oldPath to newPath. Both must resolve to the
// same mounted filesystem (no cross-device moves), and that filesystem
// must implement Renamer.
func (v *VFS) Rename(t *sched.Task, oldPath, newPath string) error {
	ofs, orel, err := v.resolve(oldPath)
	if err != nil {
		return err
	}
	nfs, nrel, err := v.resolve(newPath)
	if err != nil {
		return err
	}
	if ofs != nfs {
		return ErrCrossDevice
	}
	r, ok := ofs.(Renamer)
	if !ok {
		return ErrPerm
	}
	return r.Rename(t, orel, nrel)
}

// SyncAll flushes every mounted filesystem that implements Syncer — the
// one unified flush path (shutdown, sync syscalls). All errors are
// reported; flushing continues past a failing filesystem so one bad device
// doesn't strand the others' dirty blocks. Each filesystem's Sync takes
// its own allocator and per-inode locks (there is no volume lock anymore),
// so a flush runs concurrently with IO on other mounts and drains, rather
// than blocks behind, IO on its own.
func (v *VFS) SyncAll(t *sched.Task) error {
	v.mu.RLock()
	fss := make([]FileSystem, 0, len(v.mounts))
	for _, fsys := range v.mounts {
		fss = append(fss, fsys)
	}
	v.mu.RUnlock()
	var firstErr error
	for _, fsys := range fss {
		if s, ok := fsys.(Syncer); ok {
			if err := s.Sync(t); err != nil && firstErr == nil {
				firstErr = err
			}
		}
	}
	return firstErr
}

// Stat stats a path.
func (v *VFS) Stat(t *sched.Task, path string) (Stat, error) {
	fsys, rel, err := v.resolve(path)
	if err != nil {
		return Stat{}, err
	}
	return fsys.Stat(t, rel)
}

// Clean normalizes a path: leading '/', no trailing '/' (except root), no
// empty or dot segments. ".." collapses textually (Proto has no symlinks).
func Clean(path string) string {
	if path == "" {
		return "/"
	}
	segs := strings.Split(path, "/")
	out := make([]string, 0, len(segs))
	for _, s := range segs {
		switch s {
		case "", ".":
		case "..":
			if len(out) > 0 {
				out = out[:len(out)-1]
			}
		default:
			out = append(out, s)
		}
	}
	return "/" + strings.Join(out, "/")
}

// IsPathAncestor reports whether cleaned path a strictly contains cleaned
// path b ("/a" contains "/a/b/c"; the root contains everything else).
// Renames use it for their two-directory lock ordering — ancestor first —
// so the deadlock-avoidance decision lives in one place for every
// filesystem (naive prefix checks get the root wrong: "/"+"/" is not a
// prefix of "/a/").
func IsPathAncestor(a, b string) bool {
	if a == b {
		return false
	}
	if a == "/" {
		return true
	}
	return strings.HasPrefix(b, a+"/")
}

// SplitPath returns the directory and final element of a cleaned path.
func SplitPath(path string) (dir, name string) {
	path = Clean(path)
	i := strings.LastIndexByte(path, '/')
	dir = path[:i]
	if dir == "" {
		dir = "/"
	}
	return dir, path[i+1:]
}
