package fs

import (
	"sort"
	"sync"

	"protosim/internal/kernel/sched"
)

// DevFS is the /dev filesystem: a flat namespace of device files the
// kernel's drivers register (framebuffer, events, sound, surface, uart,
// null). Opening a device file calls the driver's open hook so each open
// can get its own state (e.g. a per-open surface in the window manager).
type DevFS struct {
	mu      sync.RWMutex
	devices map[string]DeviceOpener
}

// DeviceOpener creates the FileOps for one open() of the device.
type DeviceOpener func(t *sched.Task, flags int) (FileOps, error)

// NewDevFS returns an empty /dev with only /dev/null present.
func NewDevFS() *DevFS {
	d := &DevFS{devices: make(map[string]DeviceOpener)}
	d.Register("null", func(*sched.Task, int) (FileOps, error) { return nullFile{}, nil })
	return d
}

// Register adds (or replaces) a device node.
func (d *DevFS) Register(name string, open DeviceOpener) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.devices[name] = open
}

// Open implements FileSystem.
func (d *DevFS) Open(t *sched.Task, path string, flags int) (FileOps, error) {
	path = Clean(path)
	if path == "/" {
		return &devDir{dev: d}, nil
	}
	name := path[1:]
	d.mu.RLock()
	open, ok := d.devices[name]
	d.mu.RUnlock()
	if !ok {
		return nil, ErrNotFound
	}
	return open(t, flags)
}

// Mkdir is not permitted in /dev.
func (d *DevFS) Mkdir(*sched.Task, string) error { return ErrPerm }

// Unlink is not permitted in /dev.
func (d *DevFS) Unlink(*sched.Task, string) error { return ErrPerm }

// Stat implements FileSystem.
func (d *DevFS) Stat(_ *sched.Task, path string) (Stat, error) {
	path = Clean(path)
	if path == "/" {
		return Stat{Name: "dev", Type: TypeDir}, nil
	}
	d.mu.RLock()
	_, ok := d.devices[path[1:]]
	d.mu.RUnlock()
	if !ok {
		return Stat{}, ErrNotFound
	}
	return Stat{Name: path[1:], Type: TypeDevice}, nil
}

// Names lists registered devices (sorted).
func (d *DevFS) Names() []string {
	d.mu.RLock()
	defer d.mu.RUnlock()
	names := make([]string, 0, len(d.devices))
	for n := range d.devices {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// devDir lets ls read /dev.
type devDir struct {
	BaseOps
	dev *DevFS
}

// Stat implements FileOps.
func (dd *devDir) Stat(*sched.Task) (Stat, error) { return Stat{Name: "dev", Type: TypeDir}, nil }

// Caps implements FileOps: an open directory.
func (dd *devDir) Caps() Caps { return CapDir }

// ReadDir implements FileOps.
func (dd *devDir) ReadDir(*sched.Task) ([]DirEntry, error) {
	names := dd.dev.Names()
	out := make([]DirEntry, len(names))
	for i, n := range names {
		out[i] = DirEntry{Name: n, Type: TypeDevice}
	}
	return out, nil
}

// nullFile is /dev/null.
type nullFile struct{ BaseOps }

// Read implements FileOps: always EOF.
func (nullFile) Read(*sched.Task, []byte) (int, error) { return 0, nil }

// Write implements FileOps: the bit bucket.
func (nullFile) Write(_ *sched.Task, p []byte) (int, error) { return len(p), nil }

// Stat implements FileOps.
func (nullFile) Stat(*sched.Task) (Stat, error) { return Stat{Name: "null", Type: TypeDevice}, nil }
