package fs

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// Ramdisk is the block device under the root xv6fs: the kernel image packs
// an opaque ramdisk dump that the boot path hands to the filesystem (§3).
// All reads and writes are synchronous and run in syscall context, which is
// exactly why Prototype 4 puts its first filesystem here — no storage
// hardware asynchrony to cope with.
type Ramdisk struct {
	blockSize int
	mu        sync.RWMutex
	data      []byte
	// Atomic, not mu-protected: ReadBlocks holds only the read lock, and
	// concurrent readers (parallel cache fills) each bump the counter.
	reads  atomic.Int64
	writes atomic.Int64
}

// NewRamdisk returns a ramdisk of n blocks of blockSize bytes.
func NewRamdisk(blockSize, n int) *Ramdisk {
	if blockSize <= 0 || n <= 0 {
		panic("fs: bad ramdisk geometry")
	}
	return &Ramdisk{blockSize: blockSize, data: make([]byte, blockSize*n)}
}

// NewRamdiskFromImage wraps an existing image (the boot-time dump).
func NewRamdiskFromImage(blockSize int, img []byte) *Ramdisk {
	if len(img)%blockSize != 0 {
		panic(fmt.Sprintf("fs: image %d bytes not a multiple of block size %d", len(img), blockSize))
	}
	d := make([]byte, len(img))
	copy(d, img)
	return &Ramdisk{blockSize: blockSize, data: d}
}

// BlockSize implements BlockDevice.
func (r *Ramdisk) BlockSize() int { return r.blockSize }

// Blocks implements BlockDevice.
func (r *Ramdisk) Blocks() int { return len(r.data) / r.blockSize }

func (r *Ramdisk) check(lba, n int) error {
	if lba < 0 || n <= 0 || (lba+n)*r.blockSize > len(r.data) {
		return fmt.Errorf("fs: ramdisk access [%d,%d) outside %d blocks", lba, lba+n, r.Blocks())
	}
	return nil
}

// ReadBlocks implements BlockDevice.
func (r *Ramdisk) ReadBlocks(lba, n int, dst []byte) error {
	if err := r.check(lba, n); err != nil {
		return err
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	copy(dst, r.data[lba*r.blockSize:(lba+n)*r.blockSize])
	r.reads.Add(int64(n))
	return nil
}

// WriteBlocks implements BlockDevice.
func (r *Ramdisk) WriteBlocks(lba, n int, src []byte) error {
	if err := r.check(lba, n); err != nil {
		return err
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	copy(r.data[lba*r.blockSize:(lba+n)*r.blockSize], src[:n*r.blockSize])
	r.writes.Add(int64(n))
	return nil
}

// Image returns a copy of the full disk contents.
func (r *Ramdisk) Image() []byte {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]byte, len(r.data))
	copy(out, r.data)
	return out
}

// Stats reports block IO counts.
func (r *Ramdisk) Stats() (reads, writes int64) {
	return r.reads.Load(), r.writes.Load()
}

var _ BlockDevice = (*Ramdisk)(nil)
