package fs

import (
	"fmt"
	"math/bits"
	"sync"

	"protosim/internal/kernel/errseq"
	"protosim/internal/kernel/sched"
)

// OpenFile is the kernel-owned open file description — the OFD, Linux's
// struct file. Every open produces exactly one; dup and fork share it by
// reference. It owns everything that is per-OPEN rather than per-file:
//
//   - the file offset (positional files only; Read/Write advance it under
//     the offset lock, Pread/Pwrite never touch it),
//   - the open flags, including O_APPEND routing every Write through the
//     filesystem's atomic-append path,
//   - the reference count descriptors share, with the in-flight operation
//     guard so a Close racing a Read on a shared descriptor defers the
//     final release instead of yanking the file mid-operation,
//   - the per-open writeback-error cursor (Linux's f_wb_err): sampled
//     from the file's errseq stream at open, observed at every Sync — so
//     two descriptors on one inode each report an asynchronous writeback
//     failure exactly once.
//
// Below it sits the file's FileOps, which holds only per-FILE state; above
// it the FDTable maps descriptor numbers to OpenFiles.
type OpenFile struct {
	ops    FileOps
	caps   Caps
	flags  int
	stream *errseq.Stream // ops.WbStream(), cached at open; nil for streamless files

	mu       sync.Mutex // lifecycle: refs, inflight, closed, released
	refs     int
	inflight int
	closed   bool
	released bool // ops.Close has run (exactly once)

	posMu sync.Mutex // the offset lock: serializes offset-advancing IO
	off   int64

	wb errseq.Cursor // per-open writeback-error cursor; moved under stream's lock
}

// NewOpenFile wraps ops in a fresh open file description with one
// reference. The per-open error cursor is sampled here — at open — so a
// writeback failure already reported through some other descriptor is not
// news to this one, while one still unreported is.
func NewOpenFile(ops FileOps, flags int) *OpenFile {
	f := &OpenFile{ops: ops, caps: ops.Caps(), flags: flags, refs: 1}
	if f.stream = ops.WbStream(); f.stream != nil {
		f.wb = f.stream.Sample()
	}
	return f
}

// use opens an operation window (false once every descriptor closed);
// done closes it. Threads share FD tables, so a Close can race an
// in-flight Read/Write on the same descriptor — the underlying file is
// released by whoever finishes last, never yanked mid-operation. This
// guard lived in every filesystem's file struct before the OFD existed;
// now it is enforced once, here, for every file type.
func (f *OpenFile) use() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed {
		return false
	}
	f.inflight++
	return true
}

func (f *OpenFile) done(t *sched.Task) {
	f.mu.Lock()
	f.inflight--
	rel := f.closed && f.inflight == 0 && !f.released
	if rel {
		f.released = true
	}
	f.mu.Unlock()
	if rel {
		f.ops.Close(t)
	}
}

// Ref adds a descriptor reference (dup, fork).
func (f *OpenFile) Ref() {
	f.mu.Lock()
	f.refs++
	f.mu.Unlock()
}

// Close drops one descriptor reference; the last one releases the
// underlying file — deferred to the final in-flight operation if any are
// mid-call.
func (f *OpenFile) Close(t *sched.Task) error {
	f.mu.Lock()
	if f.refs <= 0 {
		f.mu.Unlock()
		return ErrBadFD
	}
	f.refs--
	if f.refs > 0 {
		f.mu.Unlock()
		return nil
	}
	f.closed = true
	rel := f.inflight == 0 && !f.released
	if rel {
		f.released = true
	}
	f.mu.Unlock()
	if rel {
		return f.ops.Close(t)
	}
	return nil
}

// readable reports whether the open mode admits reads.
func (f *OpenFile) readable() bool { return f.flags&accessMask != OWrOnly }

// writable reports whether the open mode admits writes.
func (f *OpenFile) writable() bool { return f.flags&(OWrOnly|ORdWr) != 0 }

// Read reads at the shared offset and advances it. The offset lock is
// held across the IO, so two threads reading one descriptor consume
// disjoint ranges instead of double-reading; stream files (no CapSeek)
// dispatch straight to the ops with no offset at all.
func (f *OpenFile) Read(t *sched.Task, p []byte) (int, error) {
	if !f.use() {
		return 0, ErrBadFD
	}
	defer f.done(t)
	if !f.readable() {
		return 0, ErrPerm
	}
	if f.caps&CapDir != 0 {
		return 0, ErrIsDir
	}
	if f.caps&CapSeek == 0 {
		return f.ops.Read(t, p)
	}
	f.posMu.Lock()
	defer f.posMu.Unlock()
	n, err := f.ops.Pread(t, p, f.off)
	f.off += int64(n)
	return n, err
}

// Write writes at the shared offset and advances it to the end of the
// written bytes. With O_APPEND the filesystem resolves the offset to EOF
// under its inode lock (OffAppend), making concurrent appends atomic.
func (f *OpenFile) Write(t *sched.Task, p []byte) (int, error) {
	if !f.use() {
		return 0, ErrBadFD
	}
	defer f.done(t)
	if !f.writable() {
		return 0, ErrPerm
	}
	if f.caps&CapDir != 0 {
		return 0, ErrIsDir
	}
	if f.caps&CapSeek == 0 {
		return f.ops.Write(t, p)
	}
	f.posMu.Lock()
	defer f.posMu.Unlock()
	off := f.off
	if f.flags&OAppend != 0 {
		off = OffAppend
	}
	n, end, err := f.ops.Pwrite(t, p, off)
	// Move the shared offset only when the write made progress (or
	// succeeded with real bytes): a failing Pwrite may return its
	// unresolved input offset — OffAppend is -1 — which must never become
	// the file position, and POSIX gives a zero-length write no other
	// results (an empty O_APPEND write must not teleport the offset to
	// EOF).
	if (n > 0 || (err == nil && len(p) > 0)) && end >= 0 {
		f.off = end
	}
	return n, err
}

// Pread reads at an explicit offset, leaving the shared offset alone — no
// offset lock is taken, so positional readers never serialize against
// each other or against Read/Write/Seek on the same descriptor.
func (f *OpenFile) Pread(t *sched.Task, p []byte, off int64) (int, error) {
	if !f.use() {
		return 0, ErrBadFD
	}
	defer f.done(t)
	if !f.readable() {
		return 0, ErrPerm
	}
	if f.caps&CapDir != 0 {
		return 0, ErrIsDir
	}
	if f.caps&CapSeek == 0 {
		return 0, ErrBadSeek
	}
	if off < 0 {
		return 0, ErrBadSeek
	}
	return f.ops.Pread(t, p, off)
}

// Pwrite writes at an explicit offset, leaving the shared offset alone.
func (f *OpenFile) Pwrite(t *sched.Task, p []byte, off int64) (int, error) {
	if !f.use() {
		return 0, ErrBadFD
	}
	defer f.done(t)
	if !f.writable() {
		return 0, ErrPerm
	}
	if f.caps&CapDir != 0 {
		return 0, ErrIsDir
	}
	if f.caps&CapSeek == 0 {
		return 0, ErrBadSeek
	}
	if off < 0 {
		return 0, ErrBadSeek
	}
	n, _, err := f.ops.Pwrite(t, p, off)
	return n, err
}

// Readv reads into the vector of buffers as one contiguous operation: a
// single coalesced read at the shared offset (one inode lock, one cache
// range op), scattered back into the caller's buffers.
func (f *OpenFile) Readv(t *sched.Task, iovs [][]byte) (int, error) {
	// Lifecycle and mode checks run even for an empty vector, so a
	// zero-length readv on a closed or write-only descriptor fails the
	// way read does (the inner Read re-checks; that is harmless).
	if !f.use() {
		return 0, ErrBadFD
	}
	defer f.done(t)
	if !f.readable() {
		return 0, ErrPerm
	}
	total := 0
	for _, v := range iovs {
		total += len(v)
	}
	if total == 0 {
		return 0, nil
	}
	buf := make([]byte, total)
	n, err := f.Read(t, buf)
	rem := buf[:n]
	for _, v := range iovs {
		if len(rem) == 0 {
			break
		}
		c := copy(v, rem)
		rem = rem[c:]
	}
	return n, err
}

// Writev gathers the vector of buffers into one contiguous span and
// writes it with a single Write: one inode lock, one coalesced cache
// range write — not len(iovs) separate block-at-a-time writes — and under
// O_APPEND the whole vector lands as one atomic record.
func (f *OpenFile) Writev(t *sched.Task, iovs [][]byte) (int, error) {
	// As in Readv: an empty writev still answers for a dead or read-only
	// descriptor.
	if !f.use() {
		return 0, ErrBadFD
	}
	defer f.done(t)
	if !f.writable() {
		return 0, ErrPerm
	}
	total := 0
	for _, v := range iovs {
		total += len(v)
	}
	if total == 0 {
		return 0, nil
	}
	buf := make([]byte, 0, total)
	for _, v := range iovs {
		buf = append(buf, v...)
	}
	return f.Write(t, buf)
}

// Preadv scatters one contiguous read at an absolute offset into the
// vector of buffers: Readv's coalescing with Pread's offset discipline —
// the shared offset is never consulted or advanced, so concurrent
// preadv callers on one descriptor cannot interleave positions.
func (f *OpenFile) Preadv(t *sched.Task, iovs [][]byte, off int64) (int, error) {
	total := 0
	for _, v := range iovs {
		total += len(v)
	}
	// Pread runs its own lifecycle/mode/capability checks, which must
	// fire even for an empty vector (POSIX: a zero-length preadv on a
	// bad descriptor still fails).
	buf := make([]byte, total)
	n, err := f.Pread(t, buf, off)
	rem := buf[:n]
	for _, v := range iovs {
		if len(rem) == 0 {
			break
		}
		c := copy(v, rem)
		rem = rem[c:]
	}
	return n, err
}

// Pwritev gathers the vector of buffers and writes them as one
// contiguous Pwrite at an absolute offset: one inode lock, one coalesced
// range write, shared offset untouched.
func (f *OpenFile) Pwritev(t *sched.Task, iovs [][]byte, off int64) (int, error) {
	total := 0
	for _, v := range iovs {
		total += len(v)
	}
	buf := make([]byte, 0, total)
	for _, v := range iovs {
		buf = append(buf, v...)
	}
	return f.Pwrite(t, buf, off)
}

// Seek repositions the shared offset (lseek). SeekEnd stats the file for
// its size; the offset lock serializes against in-flight Read/Write.
func (f *OpenFile) Seek(t *sched.Task, off int64, whence int) (int64, error) {
	if !f.use() {
		return 0, ErrBadFD
	}
	defer f.done(t)
	if f.caps&CapSeek == 0 {
		return 0, ErrBadSeek
	}
	var size int64
	if whence == SeekEnd {
		st, err := f.ops.Stat(t)
		if err != nil {
			return 0, err
		}
		size = st.Size
	}
	f.posMu.Lock()
	defer f.posMu.Unlock()
	var base int64
	switch whence {
	case SeekSet:
		base = 0
	case SeekCur:
		base = f.off
	case SeekEnd:
		base = size
	default:
		return 0, ErrBadSeek
	}
	n := base + off
	if n < 0 {
		return 0, ErrBadSeek
	}
	f.off = n
	return n, nil
}

// Stat describes the file.
func (f *OpenFile) Stat(t *sched.Task) (Stat, error) {
	if !f.use() {
		return Stat{}, ErrBadFD
	}
	defer f.done(t)
	return f.ops.Stat(t)
}

// Sync is fsync through this descriptor: flush the file's dirty data and
// metadata, then observe THIS open's error cursor against the file's
// writeback-error stream — an asynchronous failure of this file's buffers
// since this descriptor's last observation is reported exactly once here,
// and never another file's, and never an epoch this descriptor already
// reported (another descriptor's observations don't consume ours).
func (f *OpenFile) Sync(t *sched.Task) error {
	if !f.use() {
		return ErrBadFD
	}
	defer f.done(t)
	err := f.ops.Sync(t)
	if f.stream != nil {
		if werr := f.stream.Observe(&f.wb); err == nil {
			err = werr
		}
	}
	return err
}

// ReadDir lists an open directory.
func (f *OpenFile) ReadDir(t *sched.Task) ([]DirEntry, error) {
	if !f.use() {
		return nil, ErrBadFD
	}
	defer f.done(t)
	return f.ops.ReadDir(t)
}

// Ioctl issues a device control operation.
func (f *OpenFile) Ioctl(t *sched.Task, op int, arg int64) (int64, error) {
	if !f.use() {
		return 0, ErrBadFD
	}
	defer f.done(t)
	if f.caps&CapIoctl == 0 {
		return 0, ErrNotSupported
	}
	return f.ops.Ioctl(t, op, arg)
}

// Flags returns the open flags.
func (f *OpenFile) Flags() int { return f.flags }

// Ops exposes the underlying per-file operations (filesystem tests and
// diagnostics reach through the OFD with it; the kernel never does).
func (f *OpenFile) Ops() FileOps { return f.ops }

// Caps returns the file's capability bitmask.
func (f *OpenFile) Caps() Caps { return f.caps }

// Offset returns the shared file offset (tests and diagnostics).
func (f *OpenFile) Offset() int64 {
	f.posMu.Lock()
	defer f.posMu.Unlock()
	return f.off
}

// FDTable is a process's descriptor table: small integers mapping to
// shared OpenFiles. fork clones the table — both processes share the open
// file descriptions, offsets included — and exec keeps it, as in xv6.
//
// The table allocates POSIX-style: always the lowest free fd. The slot
// slice starts small and doubles on demand up to the table's limit, so a
// shell process pays for 16 slots while a channel server holding 512
// sockets grows to meet them. Free-slot tracking is a bitmap plus a
// lowest-possibly-free hint (the find_next_zero_bit idiom), making
// Install/Dup amortized O(1) instead of the linear slot scan a
// hundreds-of-sockets accept loop would otherwise pay per connection.
type FDTable struct {
	mu    sync.Mutex
	files []*OpenFile // grows on demand; len(files) <= max
	used  []uint64    // bitmap over files: bit set = slot occupied
	hint  int         // invariant: no free slot exists below hint
	count int         // occupied slots (O(1) OpenCount)
	max   int         // hard fd limit (RLIMIT_NOFILE analogue)
}

// fdTableInitial is the starting slot count — enough for any ordinary
// process; socket-heavy ones double from here.
const fdTableInitial = 16

// NewFDTable returns a table allowing up to maxFDs descriptors.
func NewFDTable(maxFDs int) *FDTable {
	n := fdTableInitial
	if n > maxFDs {
		n = maxFDs
	}
	return &FDTable{
		files: make([]*OpenFile, n),
		used:  make([]uint64, (n+63)/64),
		max:   maxFDs,
	}
}

// alloc claims the lowest free fd, growing the table if every current
// slot is taken and the limit allows. Caller holds ft.mu.
func (ft *FDTable) alloc() (int, error) {
	// Bitmap scan from the hint word: the invariant (no free slot below
	// hint) makes this amortized O(1) across an install/close workload.
	fd := -1
	for w := ft.hint / 64; w < len(ft.used); w++ {
		word := ^ft.used[w]
		if w == ft.hint/64 {
			word &^= (1 << (ft.hint % 64)) - 1 // ignore bits below hint
		}
		if word == 0 {
			continue
		}
		cand := w*64 + bits.TrailingZeros64(word)
		if cand < len(ft.files) {
			fd = cand
		}
		break
	}
	if fd == -1 {
		// Every slot in use: grow (doubling) toward the limit.
		if len(ft.files) >= ft.max {
			return -1, fmt.Errorf("fs: out of file descriptors (limit %d)", ft.max)
		}
		n := len(ft.files) * 2
		if n > ft.max {
			n = ft.max
		}
		fd = len(ft.files)
		grown := make([]*OpenFile, n)
		copy(grown, ft.files)
		ft.files = grown
		words := make([]uint64, (n+63)/64)
		copy(words, ft.used)
		ft.used = words
	}
	ft.used[fd/64] |= 1 << (fd % 64)
	ft.hint = fd + 1
	ft.count++
	return fd, nil
}

// freeSlot releases fd's slot. Caller holds ft.mu and has checked the
// slot is occupied.
func (ft *FDTable) freeSlot(fd int) {
	ft.files[fd] = nil
	ft.used[fd/64] &^= 1 << (fd % 64)
	ft.count--
	if fd < ft.hint {
		ft.hint = fd
	}
}

// Install places the open file in the lowest free slot and returns the
// fd. On a full table the caller keeps its reference (and should close
// it).
func (ft *FDTable) Install(of *OpenFile) (int, error) {
	ft.mu.Lock()
	defer ft.mu.Unlock()
	fd, err := ft.alloc()
	if err != nil {
		return -1, err
	}
	ft.files[fd] = of
	return fd, nil
}

// Get returns the open file description for fd.
func (ft *FDTable) Get(fd int) (*OpenFile, error) {
	ft.mu.Lock()
	defer ft.mu.Unlock()
	if fd < 0 || fd >= len(ft.files) || ft.files[fd] == nil {
		return nil, ErrBadFD
	}
	return ft.files[fd], nil
}

// Dup duplicates fd into the lowest free slot sharing the same
// description — offset, flags and error cursor included.
func (ft *FDTable) Dup(fd int) (int, error) {
	ft.mu.Lock()
	defer ft.mu.Unlock()
	if fd < 0 || fd >= len(ft.files) || ft.files[fd] == nil {
		return -1, ErrBadFD
	}
	e := ft.files[fd]
	nfd, err := ft.alloc()
	if err != nil {
		return -1, err
	}
	e.Ref()
	ft.files[nfd] = e
	return nfd, nil
}

// Close drops fd, carrying the calling task so a final close that must
// reclaim an unlinked file's storage sleeps properly on contended locks.
func (ft *FDTable) Close(t *sched.Task, fd int) error {
	ft.mu.Lock()
	if fd < 0 || fd >= len(ft.files) || ft.files[fd] == nil {
		ft.mu.Unlock()
		return ErrBadFD
	}
	e := ft.files[fd]
	ft.freeSlot(fd)
	ft.mu.Unlock()
	return e.Close(t)
}

// Clone copies the table for fork: both processes share descriptions,
// and the child starts at the parent's grown size (fd numbers must
// match across the fork).
func (ft *FDTable) Clone() *FDTable {
	ft.mu.Lock()
	defer ft.mu.Unlock()
	nt := &FDTable{
		files: make([]*OpenFile, len(ft.files)),
		used:  make([]uint64, len(ft.used)),
		hint:  ft.hint,
		count: ft.count,
		max:   ft.max,
	}
	copy(nt.used, ft.used)
	for fd, e := range ft.files {
		if e == nil {
			continue
		}
		e.Ref()
		nt.files[fd] = e
	}
	return nt
}

// CloseAll releases every descriptor (process exit), carrying the exiting
// task.
func (ft *FDTable) CloseAll(t *sched.Task) {
	ft.mu.Lock()
	n := len(ft.files)
	ft.mu.Unlock()
	for fd := 0; fd < n; fd++ {
		ft.Close(t, fd) // ErrBadFD for empty slots is fine
	}
}

// OpenCount reports how many descriptors are live.
func (ft *FDTable) OpenCount() int {
	ft.mu.Lock()
	defer ft.mu.Unlock()
	return ft.count
}

// Limit reports the table's maximum descriptor count.
func (ft *FDTable) Limit() int {
	ft.mu.Lock()
	defer ft.mu.Unlock()
	return ft.max
}
