package fs

import (
	"bytes"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"
	"time"

	"protosim/internal/kernel/sched"
)

func newSched(t *testing.T) *sched.Scheduler {
	t.Helper()
	s := sched.New(sched.Config{Cores: 2})
	s.Start()
	t.Cleanup(func() {
		if err := s.Shutdown(5 * time.Second); err != nil {
			t.Errorf("shutdown: %v", err)
		}
	})
	return s
}

func TestCleanPaths(t *testing.T) {
	cases := map[string]string{
		"":            "/",
		"/":           "/",
		"//a//b/":     "/a/b",
		"/a/./b":      "/a/b",
		"/a/../b":     "/b",
		"/../../x":    "/x",
		"a/b":         "/a/b",
		"/dev/fb":     "/dev/fb",
		"/a/b/../../": "/",
	}
	for in, want := range cases {
		if got := Clean(in); got != want {
			t.Errorf("Clean(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestSplitPath(t *testing.T) {
	dir, name := SplitPath("/a/b/c.txt")
	if dir != "/a/b" || name != "c.txt" {
		t.Fatalf("split = %q, %q", dir, name)
	}
	dir, name = SplitPath("/top")
	if dir != "/" || name != "top" {
		t.Fatalf("split = %q, %q", dir, name)
	}
}

// fakeFS records which relative paths it was asked for.
type fakeFS struct {
	mu    sync.Mutex
	calls []string
}

func (f *fakeFS) Open(t *sched.Task, path string, flags int) (FileOps, error) {
	f.mu.Lock()
	f.calls = append(f.calls, path)
	f.mu.Unlock()
	return &memFile{name: path, data: []byte("data:" + path)}, nil
}
func (f *fakeFS) Mkdir(*sched.Task, string) error  { return nil }
func (f *fakeFS) Unlink(*sched.Task, string) error { return nil }
func (f *fakeFS) Stat(_ *sched.Task, path string) (Stat, error) {
	return Stat{Name: path}, nil
}

func TestVFSMountDispatch(t *testing.T) {
	v := NewVFS()
	root, d, dev := &fakeFS{}, &fakeFS{}, &fakeFS{}
	if err := v.Mount("/", root); err != nil {
		t.Fatal(err)
	}
	if err := v.Mount("/d", d); err != nil {
		t.Fatal(err)
	}
	if err := v.Mount("/dev", dev); err != nil {
		t.Fatal(err)
	}
	// Longest-prefix dispatch.
	v.Open(nil, "/d/videos/clip.mpv", ORdOnly)
	if len(d.calls) != 1 || d.calls[0] != "/videos/clip.mpv" {
		t.Fatalf("d calls = %v", d.calls)
	}
	// "/data" belongs to root, not "/d".
	v.Open(nil, "/data", ORdOnly)
	if len(root.calls) != 1 || root.calls[0] != "/data" {
		t.Fatalf("root calls = %v", root.calls)
	}
	// "/dev" exact hits devfs root.
	v.Open(nil, "/dev", ORdOnly)
	if len(dev.calls) != 1 || dev.calls[0] != "/" {
		t.Fatalf("dev calls = %v", dev.calls)
	}
	// Double mount rejected.
	if err := v.Mount("/d", d); err == nil {
		t.Fatal("double mount accepted")
	}
}

func TestVFSNoRootFails(t *testing.T) {
	v := NewVFS()
	if _, err := v.Open(nil, "/x", ORdOnly); err == nil {
		t.Fatal("open with no mounts succeeded")
	}
}

func TestPipeTransfersInOrder(t *testing.T) {
	s := newSched(t)
	r, w := NewPipe()
	var got []byte
	var mu sync.Mutex
	done := make(chan struct{})
	s.Go("reader", 0, func(t *sched.Task) {
		defer close(done)
		buf := make([]byte, 64)
		for {
			n, err := r.Read(t, buf)
			if err != nil || n == 0 {
				return
			}
			mu.Lock()
			got = append(got, buf[:n]...)
			mu.Unlock()
		}
	})
	s.Go("writer", 0, func(t *sched.Task) {
		for i := 0; i < 10; i++ {
			w.Write(t, []byte{byte(i), byte(i + 100)})
		}
		w.Close(nil)
	})
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("pipe never closed")
	}
	mu.Lock()
	defer mu.Unlock()
	if len(got) != 20 {
		t.Fatalf("got %d bytes", len(got))
	}
	for i := 0; i < 10; i++ {
		if got[2*i] != byte(i) || got[2*i+1] != byte(i+100) {
			t.Fatalf("order broken at %d: %v", i, got)
		}
	}
}

func TestPipeBackpressure(t *testing.T) {
	s := newSched(t)
	r, w := NewPipe()
	var wrote atomic.Int64
	writerDone := make(chan struct{})
	s.Go("writer", 0, func(t *sched.Task) {
		defer close(writerDone)
		big := make([]byte, PipeSize*3)
		w.Write(t, big)
		wrote.Store(int64(len(big)))
		w.Close(nil)
	})
	// The write must block: only PipeSize bytes fit.
	time.Sleep(10 * time.Millisecond)
	if wrote.Load() != 0 {
		t.Fatal("oversized write completed without a reader")
	}
	done := make(chan int)
	s.Go("reader", 0, func(t *sched.Task) {
		total := 0
		buf := make([]byte, 256)
		for {
			n, _ := r.Read(t, buf)
			if n == 0 {
				break
			}
			total += n
		}
		done <- total
	})
	select {
	case total := <-done:
		if total != PipeSize*3 {
			t.Fatalf("read %d, want %d", total, PipeSize*3)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("reader stuck")
	}
	<-writerDone
}

func TestPipeWriteAfterReaderClosed(t *testing.T) {
	s := newSched(t)
	r, w := NewPipe()
	r.Close(nil)
	errCh := make(chan error, 1)
	s.Go("writer", 0, func(t *sched.Task) {
		_, err := w.Write(t, []byte("x"))
		errCh <- err
	})
	select {
	case err := <-errCh:
		if !errors.Is(err, ErrPipeClosed) {
			t.Fatalf("err = %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("write blocked forever")
	}
}

func TestPipeEOFAfterWriterClosed(t *testing.T) {
	s := newSched(t)
	r, w := NewPipe()
	s.Go("writer", 0, func(t *sched.Task) {
		w.Write(t, []byte("bye"))
		w.Close(nil)
	})
	got := make(chan []byte, 1)
	s.Go("reader", 0, func(t *sched.Task) {
		var all []byte
		buf := make([]byte, 16)
		for {
			n, _ := r.Read(t, buf)
			if n == 0 {
				break
			}
			all = append(all, buf[:n]...)
		}
		got <- all
	})
	select {
	case all := <-got:
		if string(all) != "bye" {
			t.Fatalf("got %q", all)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("no EOF delivered")
	}
}

// Property: pipe preserves arbitrary byte sequences (FIFO, lossless).
func TestPipeFIFOProperty(t *testing.T) {
	s := newSched(t)
	check := func(data []byte) bool {
		if len(data) == 0 {
			return true
		}
		r, w := NewPipe()
		out := make(chan []byte, 1)
		s.Go("r", 0, func(t *sched.Task) {
			var all []byte
			buf := make([]byte, 128)
			for {
				n, _ := r.Read(t, buf)
				if n == 0 {
					break
				}
				all = append(all, buf[:n]...)
			}
			out <- all
		})
		s.Go("w", 0, func(t *sched.Task) {
			w.Write(t, data)
			w.Close(nil)
		})
		select {
		case all := <-out:
			return bytes.Equal(all, data)
		case <-time.After(5 * time.Second):
			return false
		}
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestDevFSRegistryAndNull(t *testing.T) {
	d := NewDevFS()
	f, err := d.Open(nil, "/null", ORdWr)
	if err != nil {
		t.Fatal(err)
	}
	if n, _ := f.Write(nil, []byte("discard")); n != 7 {
		t.Fatal("null write")
	}
	if n, _ := f.Read(nil, make([]byte, 4)); n != 0 {
		t.Fatal("null read returned data")
	}
	if _, err := d.Open(nil, "/fb", ORdWr); !errors.Is(err, ErrNotFound) {
		t.Fatalf("err = %v", err)
	}
	d.Register("fb", func(*sched.Task, int) (FileOps, error) {
		return &memFile{name: "fb"}, nil
	})
	if _, err := d.Open(nil, "/fb", ORdWr); err != nil {
		t.Fatal(err)
	}
	dir, _ := d.Open(nil, "/", ORdOnly)
	if dir.Caps()&CapDir == 0 {
		t.Fatal("/dev root must report CapDir")
	}
	entries, _ := dir.ReadDir(nil)
	if len(entries) != 2 {
		t.Fatalf("entries = %v", entries)
	}
	if err := d.Mkdir(nil, "/x"); !errors.Is(err, ErrPerm) {
		t.Fatal("mkdir in /dev allowed")
	}
}

func TestProcFSGeneratesAtOpen(t *testing.T) {
	p := NewProcFS()
	var n atomic.Int32
	p.Register("uptime", func() string {
		return string(rune('0' + n.Add(1)))
	})
	read := func() string {
		ops, err := p.Open(nil, "/uptime", ORdOnly)
		if err != nil {
			t.Fatal(err)
		}
		f := NewOpenFile(ops, ORdOnly)
		defer f.Close(nil)
		b := make([]byte, 8)
		k, _ := f.Read(nil, b)
		return string(b[:k])
	}
	if read() != "1" || read() != "2" {
		t.Fatal("procfs content not regenerated per open")
	}
	// Writes rejected.
	if _, err := p.Open(nil, "/uptime", OWrOnly); !errors.Is(err, ErrPerm) {
		t.Fatal("procfs write open allowed")
	}
}

func TestFDTableLifecycle(t *testing.T) {
	ft := NewFDTable(8)
	of := NewOpenFile(&memFile{name: "x", data: []byte("hello")}, ORdOnly)
	fd, err := ft.Install(of)
	if err != nil || fd != 0 {
		t.Fatalf("fd = %d, %v", fd, err)
	}
	got, err := ft.Get(fd)
	if err != nil || got != of {
		t.Fatal("get mismatch")
	}
	fd2, _ := ft.Dup(fd)
	if fd2 != 1 {
		t.Fatalf("dup fd = %d", fd2)
	}
	// Dup shares the offset.
	b := make([]byte, 2)
	f1, _ := ft.Get(fd)
	f1.Read(nil, b)
	f2, _ := ft.Get(fd2)
	f2.Read(nil, b)
	if string(b) != "ll" {
		t.Fatalf("shared offset broken: %q", b)
	}
	ft.Close(nil, fd)
	if _, err := ft.Get(fd); !errors.Is(err, ErrBadFD) {
		t.Fatal("closed fd still valid")
	}
	if _, err := ft.Get(fd2); err != nil {
		t.Fatal("dup'd fd must survive sibling close")
	}
	ft.Close(nil, fd2)
	if ft.OpenCount() != 0 {
		t.Fatalf("open count = %d", ft.OpenCount())
	}
}

func TestFDTableCloneSharesDescriptions(t *testing.T) {
	ft := NewFDTable(8)
	fd, _ := ft.Install(NewOpenFile(&memFile{name: "x", data: []byte("abcd")}, ORdOnly))
	child := ft.Clone()
	b := make([]byte, 2)
	pf, _ := ft.Get(fd)
	pf.Read(nil, b) // parent reads "ab"
	cf, _ := child.Get(fd)
	cf.Read(nil, b) // child continues at "cd" — shared offset, as in xv6
	if string(b) != "cd" {
		t.Fatalf("fork offset sharing broken: %q", b)
	}
	ft.CloseAll(nil)
	child.CloseAll(nil)
}

func TestFDTableExhaustion(t *testing.T) {
	ft := NewFDTable(2)
	ft.Install(NewOpenFile(&memFile{}, 0))
	ft.Install(NewOpenFile(&memFile{}, 0))
	if _, err := ft.Install(NewOpenFile(&memFile{}, 0)); err == nil {
		t.Fatal("expected fd exhaustion")
	}
}

// TestFDTableGrowsTo512 is the socket-scaling contract: a table limited
// at MaxFDs-scale grows from its small start through 512+ live fds,
// numbering them densely from 0, and reports exhaustion exactly at the
// limit.
func TestFDTableGrowsTo512(t *testing.T) {
	const limit = 600
	ft := NewFDTable(limit)
	for i := 0; i < limit; i++ {
		fd, err := ft.Install(NewOpenFile(&memFile{}, 0))
		if err != nil {
			t.Fatalf("Install #%d: %v", i, err)
		}
		if fd != i {
			t.Fatalf("Install #%d got fd %d: not lowest-free", i, fd)
		}
	}
	if _, err := ft.Install(NewOpenFile(&memFile{}, 0)); err == nil {
		t.Fatal("expected exhaustion at the limit")
	}
	if ft.OpenCount() != limit || ft.Limit() != limit {
		t.Fatalf("count=%d limit=%d", ft.OpenCount(), ft.Limit())
	}
	ft.CloseAll(nil)
	if ft.OpenCount() != 0 {
		t.Fatalf("count after CloseAll = %d", ft.OpenCount())
	}
}

// TestFDTableLowestFreeAfterChurn closes a scattered set of fds and
// verifies reallocation fills exactly those holes, lowest first — the
// POSIX rule shells and dup2-style redirections rely on.
func TestFDTableLowestFreeAfterChurn(t *testing.T) {
	ft := NewFDTable(128)
	for i := 0; i < 100; i++ {
		ft.Install(NewOpenFile(&memFile{}, 0))
	}
	holes := []int{3, 97, 40, 0, 64}
	for _, fd := range holes {
		if err := ft.Close(nil, fd); err != nil {
			t.Fatalf("Close(%d): %v", fd, err)
		}
	}
	want := []int{0, 3, 40, 64, 97} // ascending: always the lowest hole
	for _, w := range want {
		fd, err := ft.Install(NewOpenFile(&memFile{}, 0))
		if err != nil || fd != w {
			t.Fatalf("refill got fd %d (%v), want %d", fd, err, w)
		}
	}
	// All holes plugged: next install extends past the old high mark.
	if fd, _ := ft.Install(NewOpenFile(&memFile{}, 0)); fd != 100 {
		t.Fatalf("post-refill fd = %d, want 100", fd)
	}
	ft.CloseAll(nil)
}

// TestFDTableCloneOfGrownTable forks a table that has grown well past
// its initial allocation; the child must see every fd at its original
// number.
func TestFDTableCloneOfGrownTable(t *testing.T) {
	ft := NewFDTable(1024)
	var fds []int
	for i := 0; i < 300; i++ {
		fd, _ := ft.Install(NewOpenFile(&memFile{name: "x", data: []byte{byte(i)}}, ORdOnly))
		fds = append(fds, fd)
	}
	ft.Close(nil, 7) // leave a hole so the clone inherits it
	child := ft.Clone()
	if child.OpenCount() != 299 {
		t.Fatalf("child count = %d", child.OpenCount())
	}
	for _, fd := range fds {
		if fd == 7 {
			continue
		}
		if _, err := child.Get(fd); err != nil {
			t.Fatalf("child lost fd %d: %v", fd, err)
		}
	}
	// The clone inherits lowest-free behaviour too.
	if fd, _ := child.Install(NewOpenFile(&memFile{}, 0)); fd != 7 {
		t.Fatalf("child filled fd %d, want the inherited hole 7", fd)
	}
	ft.CloseAll(nil)
	child.CloseAll(nil)
}

func TestRamdiskRoundTripAndBounds(t *testing.T) {
	rd := NewRamdisk(512, 16)
	src := bytes.Repeat([]byte{0x5A}, 1024)
	if err := rd.WriteBlocks(3, 2, src); err != nil {
		t.Fatal(err)
	}
	dst := make([]byte, 1024)
	if err := rd.ReadBlocks(3, 2, dst); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(src, dst) {
		t.Fatal("round trip failed")
	}
	if err := rd.ReadBlocks(15, 2, dst); err == nil {
		t.Fatal("out of range read accepted")
	}
	r, w := rd.Stats()
	if r != 2 || w != 2 {
		t.Fatalf("stats = %d, %d", r, w)
	}
}

// TestOpenFileEdgeSemantics pins the POSIX corners the review chased: a
// zero-length append write moves nothing, and empty vectored IO still
// answers for a dead or wrong-mode descriptor.
func TestOpenFileEdgeSemantics(t *testing.T) {
	of := NewOpenFile(&memFile{name: "m", data: []byte("abcdef")}, ORdOnly)
	// Empty readv on a live readable fd: 0, nil.
	if n, err := of.Readv(nil, nil); n != 0 || err != nil {
		t.Fatalf("empty readv = %d, %v", n, err)
	}
	// Empty writev on a read-only fd: ErrPerm, not silent success.
	if _, err := of.Writev(nil, [][]byte{}); !errors.Is(err, ErrPerm) {
		t.Fatalf("empty writev on O_RDONLY = %v, want ErrPerm", err)
	}
	of.Close(nil)
	// Empty vectored ops on a closed descriptor: ErrBadFD.
	if _, err := of.Readv(nil, nil); !errors.Is(err, ErrBadFD) {
		t.Fatalf("empty readv on closed = %v, want ErrBadFD", err)
	}
	if _, err := of.Writev(nil, nil); !errors.Is(err, ErrBadFD) {
		t.Fatalf("empty writev on closed = %v, want ErrBadFD", err)
	}
}

// appendMem is a tiny positional ops with working OffAppend, for the
// zero-length-append offset rule.
type appendMem struct {
	BaseOps
	data []byte
}

func (m *appendMem) Pread(_ *sched.Task, p []byte, off int64) (int, error) {
	if off >= int64(len(m.data)) {
		return 0, nil
	}
	return copy(p, m.data[off:]), nil
}

func (m *appendMem) Pwrite(_ *sched.Task, p []byte, off int64) (int, int64, error) {
	if off == OffAppend {
		off = int64(len(m.data))
	}
	for int64(len(m.data)) < off+int64(len(p)) {
		m.data = append(m.data, 0)
	}
	n := copy(m.data[off:], p)
	return n, off + int64(n), nil
}

func (m *appendMem) Stat(*sched.Task) (Stat, error) {
	return Stat{Name: "am", Size: int64(len(m.data))}, nil
}

func (m *appendMem) Caps() Caps { return CapSeek }

func TestZeroLengthAppendWriteKeepsOffset(t *testing.T) {
	of := NewOpenFile(&appendMem{data: make([]byte, 100)}, OWrOnly|OAppend)
	defer of.Close(nil)
	if _, err := of.Seek(nil, 5, SeekSet); err != nil {
		t.Fatal(err)
	}
	if n, err := of.Write(nil, nil); n != 0 || err != nil {
		t.Fatalf("zero write = %d, %v", n, err)
	}
	if off := of.Offset(); off != 5 {
		t.Fatalf("offset after zero-length append write = %d, want 5 (POSIX: no other results)", off)
	}
	// A real append does move it to EOF.
	if _, err := of.Write(nil, []byte("xy")); err != nil {
		t.Fatal(err)
	}
	if off := of.Offset(); off != 102 {
		t.Fatalf("offset after real append = %d, want 102", off)
	}
}
