package fs_test

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"testing"

	"protosim/internal/hw"
	"protosim/internal/kernel/fat32"
	"protosim/internal/kernel/fs"
	"protosim/internal/kernel/ksync"
	"protosim/internal/kernel/xv6fs"
)

type sdDev struct{ sd *hw.SDCard }

func (d sdDev) BlockSize() int { return hw.SDBlockSize }
func (d sdDev) Blocks() int    { return d.sd.Blocks() }
func (d sdDev) ReadBlocks(lba, n int, dst []byte) error {
	return d.sd.ReadBlocks(lba, n, dst)
}
func (d sdDev) WriteBlocks(lba, n int, src []byte) error {
	return d.sd.WriteBlocks(lba, n, src)
}

func newTwoMountVFS(t *testing.T) (*fs.VFS, *fs.Ramdisk) {
	t.Helper()
	rd := fs.NewRamdisk(xv6fs.BlockSize, 2048)
	if err := xv6fs.Mkfs(rd, 64); err != nil {
		t.Fatal(err)
	}
	root, err := xv6fs.Mount(rd, nil)
	if err != nil {
		t.Fatal(err)
	}
	sd := hw.NewSDCard(8192, hw.NewIRQController(1))
	sd.SetLatencyScale(0)
	if err := fat32.Mkfs(sdDev{sd}); err != nil {
		t.Fatal(err)
	}
	card, err := fat32.Mount(sdDev{sd}, nil)
	if err != nil {
		t.Fatal(err)
	}
	v := fs.NewVFS()
	if err := v.Mount("/", root); err != nil {
		t.Fatal(err)
	}
	if err := v.Mount("/d", card); err != nil {
		t.Fatal(err)
	}
	return v, rd
}

// TestSyncAllDuringWriters drives SyncAll repeatedly while tasks write on
// BOTH mounts. Since the volume locks are gone, each filesystem's Sync
// must coordinate through the new allocator + per-inode locks: no
// deadlock, no lost writes, and the final SyncAll leaves the xv6fs image
// remountable with everything durable.
func TestSyncAllDuringWriters(t *testing.T) {
	ksync.SetRankCheck(true)
	t.Cleanup(func() { ksync.SetRankCheck(false) })
	v, rd := newTwoMountVFS(t)

	const workers = 4
	const rounds = 15
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rootPath := fmt.Sprintf("/r%d.dat", w)
			cardPath := fmt.Sprintf("/d/c%d.bin", w)
			payload := bytes.Repeat([]byte{byte('a' + w)}, 5000)
			for r := 0; r < rounds; r++ {
				for _, p := range []string{rootPath, cardPath} {
					fl, err := v.Open(nil, p, fs.OCreate|fs.OWrOnly|fs.OTrunc)
					if err != nil {
						t.Errorf("w%d open %s: %v", w, p, err)
						return
					}
					if _, err := fl.Write(nil, payload); err != nil {
						t.Errorf("w%d write %s: %v", w, p, err)
						return
					}
					fl.Close(nil)
				}
			}
		}(w)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for r := 0; r < 3*rounds; r++ {
			if err := v.SyncAll(nil); err != nil {
				t.Errorf("SyncAll: %v", err)
				return
			}
		}
	}()
	wg.Wait()
	if t.Failed() {
		return
	}
	if err := v.SyncAll(nil); err != nil {
		t.Fatal(err)
	}
	// The flushed xv6fs image must remount with every file durable.
	remounted, err := xv6fs.Mount(fs.NewRamdiskFromImage(xv6fs.BlockSize, rd.Image()), nil)
	if err != nil {
		t.Fatal(err)
	}
	for w := 0; w < workers; w++ {
		st, err := remounted.Stat(nil, fmt.Sprintf("/r%d.dat", w))
		if err != nil || st.Size != 5000 {
			t.Fatalf("remounted stat w%d = %+v, %v", w, st, err)
		}
	}
	// And the FAT32 side still serves correct contents.
	for w := 0; w < workers; w++ {
		fl, err := v.Open(nil, fmt.Sprintf("/d/c%d.bin", w), fs.ORdOnly)
		if err != nil {
			t.Fatal(err)
		}
		got := make([]byte, 5000)
		read := 0
		for read < len(got) {
			n, err := fl.Read(nil, got[read:])
			if err != nil || n == 0 {
				t.Fatalf("card read w%d: %d, %v", w, n, err)
			}
			read += n
		}
		for i, b := range got {
			if b != byte('a'+w) {
				t.Fatalf("card w%d byte %d = %q", w, i, b)
			}
		}
		fl.Close(nil)
	}
}

// TestVFSRenameDispatch checks same-mount dispatch and the cross-device
// rejection.
func TestVFSRenameDispatch(t *testing.T) {
	v, _ := newTwoMountVFS(t)
	fl, err := v.Open(nil, "/move.me", fs.OCreate|fs.OWrOnly)
	if err != nil {
		t.Fatal(err)
	}
	fl.Write(nil, []byte("payload"))
	fl.Close(nil)
	if err := v.Rename(nil, "/move.me", "/moved"); err != nil {
		t.Fatalf("same-mount rename: %v", err)
	}
	if _, err := v.Stat(nil, "/move.me"); !errors.Is(err, fs.ErrNotFound) {
		t.Fatalf("old path survives: %v", err)
	}
	st, err := v.Stat(nil, "/moved")
	if err != nil || st.Size != 7 {
		t.Fatalf("new path stat = %+v, %v", st, err)
	}
	// FAT32 mount renames too.
	fl, err = v.Open(nil, "/d/a.bin", fs.OCreate|fs.OWrOnly)
	if err != nil {
		t.Fatal(err)
	}
	fl.Close(nil)
	if err := v.Rename(nil, "/d/a.bin", "/d/b.bin"); err != nil {
		t.Fatalf("fat32 rename: %v", err)
	}
	// Cross-mount is EXDEV.
	if err := v.Rename(nil, "/moved", "/d/moved.bin"); !errors.Is(err, fs.ErrCrossDevice) {
		t.Fatalf("cross-device rename = %v, want ErrCrossDevice", err)
	}
}
