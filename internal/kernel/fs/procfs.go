package fs

import (
	"sort"
	"sync"

	"protosim/internal/kernel/sched"
)

// ProcFS is /proc: read-only text files whose content is generated at open
// time by kernel callbacks — /proc/cpuinfo and /proc/meminfo in the paper,
// plus whatever the kernel registers (uptime, tasks). sysmon reads these.
type ProcFS struct {
	mu    sync.RWMutex
	nodes map[string]func() string
}

// NewProcFS returns an empty /proc.
func NewProcFS() *ProcFS { return &ProcFS{nodes: make(map[string]func() string)} }

// Register adds a proc file backed by gen.
func (p *ProcFS) Register(name string, gen func() string) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.nodes[name] = gen
}

// Open implements FileSystem. Content is snapshotted at open, like a real
// procfs read of a seq_file.
func (p *ProcFS) Open(t *sched.Task, path string, flags int) (FileOps, error) {
	path = Clean(path)
	if path == "/" {
		return &procDir{p: p}, nil
	}
	if flags&accessMask != ORdOnly {
		return nil, ErrPerm
	}
	p.mu.RLock()
	gen, ok := p.nodes[path[1:]]
	p.mu.RUnlock()
	if !ok {
		return nil, ErrNotFound
	}
	return &memFile{name: path[1:], data: []byte(gen())}, nil
}

// Mkdir is not permitted in /proc.
func (p *ProcFS) Mkdir(*sched.Task, string) error { return ErrPerm }

// Unlink is not permitted in /proc.
func (p *ProcFS) Unlink(*sched.Task, string) error { return ErrPerm }

// Stat implements FileSystem.
func (p *ProcFS) Stat(_ *sched.Task, path string) (Stat, error) {
	path = Clean(path)
	if path == "/" {
		return Stat{Name: "proc", Type: TypeDir}, nil
	}
	p.mu.RLock()
	_, ok := p.nodes[path[1:]]
	p.mu.RUnlock()
	if !ok {
		return Stat{}, ErrNotFound
	}
	return Stat{Name: path[1:], Type: TypeFile}, nil
}

// Names lists proc entries.
func (p *ProcFS) Names() []string {
	p.mu.RLock()
	defer p.mu.RUnlock()
	out := make([]string, 0, len(p.nodes))
	for n := range p.nodes {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

type procDir struct {
	BaseOps
	p *ProcFS
}

// Stat implements FileOps.
func (pd *procDir) Stat(*sched.Task) (Stat, error) { return Stat{Name: "proc", Type: TypeDir}, nil }

// Caps implements FileOps: an open directory.
func (pd *procDir) Caps() Caps { return CapDir }

// ReadDir implements FileOps.
func (pd *procDir) ReadDir(*sched.Task) ([]DirEntry, error) {
	names := pd.p.Names()
	out := make([]DirEntry, len(names))
	for i, n := range names {
		out[i] = DirEntry{Name: n, Type: TypeFile}
	}
	return out, nil
}

// memFile is an in-memory read-only positional file (procfs content, also
// reused by tests). It holds no offset — the OpenFile owns that — just the
// snapshot taken at open.
type memFile struct {
	BaseOps
	name string
	data []byte
}

// Pread implements FileOps.
func (m *memFile) Pread(_ *sched.Task, p []byte, off int64) (int, error) {
	if off >= int64(len(m.data)) {
		return 0, nil
	}
	return copy(p, m.data[off:]), nil
}

// Stat implements FileOps.
func (m *memFile) Stat(*sched.Task) (Stat, error) {
	return Stat{Name: m.name, Type: TypeFile, Size: int64(len(m.data))}, nil
}

// Caps implements FileOps: positional and read-only.
func (m *memFile) Caps() Caps { return CapSeek }
