package fs

import (
	"sort"
	"sync"

	"protosim/internal/kernel/sched"
)

// ProcFS is /proc: read-only text files whose content is generated at open
// time by kernel callbacks — /proc/cpuinfo and /proc/meminfo in the paper,
// plus whatever the kernel registers (uptime, tasks). sysmon reads these.
type ProcFS struct {
	mu    sync.RWMutex
	nodes map[string]func() string
}

// NewProcFS returns an empty /proc.
func NewProcFS() *ProcFS { return &ProcFS{nodes: make(map[string]func() string)} }

// Register adds a proc file backed by gen.
func (p *ProcFS) Register(name string, gen func() string) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.nodes[name] = gen
}

// Open implements FileSystem. Content is snapshotted at open, like a real
// procfs read of a seq_file.
func (p *ProcFS) Open(t *sched.Task, path string, flags int) (File, error) {
	path = Clean(path)
	if path == "/" {
		return &procDir{p}, nil
	}
	if flags&accessMask != ORdOnly {
		return nil, ErrPerm
	}
	p.mu.RLock()
	gen, ok := p.nodes[path[1:]]
	p.mu.RUnlock()
	if !ok {
		return nil, ErrNotFound
	}
	return &memFile{name: path[1:], data: []byte(gen())}, nil
}

// Mkdir is not permitted in /proc.
func (p *ProcFS) Mkdir(*sched.Task, string) error { return ErrPerm }

// Unlink is not permitted in /proc.
func (p *ProcFS) Unlink(*sched.Task, string) error { return ErrPerm }

// Stat implements FileSystem.
func (p *ProcFS) Stat(_ *sched.Task, path string) (Stat, error) {
	path = Clean(path)
	if path == "/" {
		return Stat{Name: "proc", Type: TypeDir}, nil
	}
	p.mu.RLock()
	_, ok := p.nodes[path[1:]]
	p.mu.RUnlock()
	if !ok {
		return Stat{}, ErrNotFound
	}
	return Stat{Name: path[1:], Type: TypeFile}, nil
}

// Names lists proc entries.
func (p *ProcFS) Names() []string {
	p.mu.RLock()
	defer p.mu.RUnlock()
	out := make([]string, 0, len(p.nodes))
	for n := range p.nodes {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

type procDir struct{ p *ProcFS }

func (pd *procDir) Read(*sched.Task, []byte) (int, error)  { return 0, ErrIsDir }
func (pd *procDir) Write(*sched.Task, []byte) (int, error) { return 0, ErrIsDir }
func (pd *procDir) Close() error                           { return nil }
func (pd *procDir) Stat() (Stat, error)                    { return Stat{Name: "proc", Type: TypeDir}, nil }
func (pd *procDir) ReadDir() ([]DirEntry, error) {
	names := pd.p.Names()
	out := make([]DirEntry, len(names))
	for i, n := range names {
		out[i] = DirEntry{Name: n, Type: TypeFile}
	}
	return out, nil
}

// memFile is an in-memory read-only file with an offset (procfs content,
// also reused by tests).
type memFile struct {
	name string
	mu   sync.Mutex
	data []byte
	off  int64
}

func (m *memFile) Read(_ *sched.Task, p []byte) (int, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.off >= int64(len(m.data)) {
		return 0, nil
	}
	n := copy(p, m.data[m.off:])
	m.off += int64(n)
	return n, nil
}

func (m *memFile) Write(*sched.Task, []byte) (int, error) { return 0, ErrPerm }
func (m *memFile) Close() error                           { return nil }
func (m *memFile) Stat() (Stat, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return Stat{Name: m.name, Type: TypeFile, Size: int64(len(m.data))}, nil
}

// Lseek implements Seeker.
func (m *memFile) Lseek(offset int64, whence int) (int64, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	var base int64
	switch whence {
	case SeekSet:
		base = 0
	case SeekCur:
		base = m.off
	case SeekEnd:
		base = int64(len(m.data))
	default:
		return 0, ErrBadSeek
	}
	n := base + offset
	if n < 0 {
		return 0, ErrBadSeek
	}
	m.off = n
	return n, nil
}
