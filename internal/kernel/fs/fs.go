package fs

import (
	"errors"

	"protosim/internal/hw"
	"protosim/internal/kernel/errseq"
	"protosim/internal/kernel/sched"
)

// Open flags (a UNIX-like subset, enough for the ported apps).
const (
	ORdOnly   = 0x0
	OWrOnly   = 0x1
	ORdWr     = 0x2
	OCreate   = 0x40
	OTrunc    = 0x200
	ONonblock = 0x800
	OAppend   = 0x400

	accessMask = 0x3
)

// Whence values for Lseek.
const (
	SeekSet = 0
	SeekCur = 1
	SeekEnd = 2
)

// OffAppend is the Pwrite offset sentinel for an atomic append: the
// filesystem resolves it to the file's size under the inode lock, so the
// locate-EOF and the write are one critical section and concurrent
// O_APPEND writers can never interleave inside each other's records.
const OffAppend int64 = -1

// FileType classifies directory entries and open files.
type FileType int

// File types.
const (
	TypeFile FileType = iota
	TypeDir
	TypeDevice
	TypePipe
	TypeSocket
)

// String names the file type for listings and diagnostics.
func (t FileType) String() string {
	switch t {
	case TypeFile:
		return "file"
	case TypeDir:
		return "dir"
	case TypeDevice:
		return "dev"
	case TypePipe:
		return "pipe"
	case TypeSocket:
		return "sock"
	}
	return "?"
}

// Stat describes a file, fstat-style.
type Stat struct {
	Name  string
	Type  FileType
	Size  int64
	Inode uint64
}

// DirEntry is one readdir row.
type DirEntry struct {
	Name string
	Type FileType
	Size int64
}

// Errors shared across filesystems.
var (
	ErrNotFound     = errors.New("fs: no such file or directory")
	ErrExists       = errors.New("fs: file exists")
	ErrNotDir       = errors.New("fs: not a directory")
	ErrIsDir        = errors.New("fs: is a directory")
	ErrBadFD        = errors.New("fs: bad file descriptor")
	ErrPerm         = errors.New("fs: operation not permitted")
	ErrNotEmpty     = errors.New("fs: directory not empty")
	ErrNameTooLong  = errors.New("fs: name too long")
	ErrFileTooBig   = errors.New("fs: file exceeds filesystem maximum")
	ErrNoSpace      = errors.New("fs: no space left on device")
	ErrWouldBlock   = errors.New("fs: operation would block") // EAGAIN
	ErrPipeClosed   = errors.New("fs: broken pipe")
	ErrBadSeek      = errors.New("fs: illegal seek")
	ErrReadOnly     = errors.New("fs: read-only filesystem")
	ErrCrossDevice  = errors.New("fs: cross-device rename")     // EXDEV
	ErrNotSupported = errors.New("fs: operation not supported") // ENOTTY and friends
)

// Device-fault errors. These are the hw package's canonical values,
// re-exported so every layer from the request queue to the syscall
// boundary tests one set with errors.Is and never imports hw directly:
//
//   - ErrDeviceDead: the device failed whole; the request queue fast-fails
//     all queued and future IO with it, and mounts flip read-only.
//   - ErrBadSector: a persistent per-LBA media error — retries cannot
//     help, but after a merged-command split only the requests covering
//     the sector see it.
//   - ErrSDInjected: a transient injected media error — succeeds on retry;
//     the request queue absorbs it with bounded backoff.
var (
	ErrDeviceDead = hw.ErrDeviceDead
	ErrBadSector  = hw.ErrBadSector
	ErrSDInjected = hw.ErrSDInjected
)

// Caps is a FileOps capability bitmask — what this open object can do,
// reported once instead of discovered by type assertions. The OpenFile
// layer routes on it: positional files are driven through Pread/Pwrite
// with the OFD-owned offset, stream files through Read/Write.
type Caps uint32

// Capability bits.
const (
	// CapSeek marks a positional file: Pread/Pwrite work at explicit
	// offsets, lseek is legal, and the OpenFile maintains the offset.
	// Absent (pipes, character devices), IO flows through Read/Write and
	// seeking is ErrBadSeek.
	CapSeek Caps = 1 << iota
	// CapDir marks an open directory: ReadDir works, byte IO is ErrIsDir.
	CapDir
	// CapSync marks a file with durable state behind it: Sync flushes to
	// stable storage and reports this file's asynchronous writeback
	// errors. Files without it (devices, pipes) fsync as a no-op.
	CapSync
	// CapIoctl marks a device file with control operations.
	CapIoctl
)

// FileOps is the one contract every open file object implements — disk
// files, directories, devices, proc files, pipe ends. Every method carries
// the calling task so any lock or IO wait sleeps on the simulated core
// (host-side callers — tests, image builders — pass nil and spin-yield).
//
// Positional files (CapSeek) serve Pread/Pwrite at explicit offsets and
// never see Read/Write: the offset lives in the OpenFile, the kernel-owned
// open file description, not here. Stream files serve Read/Write and
// reject Pread/Pwrite with ErrBadSeek (ESPIPE). Methods outside a file's
// capabilities return the matching error; BaseOps provides those defaults
// so implementations spell out only what they support.
//
// Implementations do not check open-mode permissions; the OpenFile layer
// enforces the access flags before dispatching.
type FileOps interface {
	// Read is sequential stream input (pipes, keyboards, the console);
	// it may block on the calling task.
	Read(t *sched.Task, p []byte) (int, error)
	// Write is sequential stream output; it may block on the calling task.
	Write(t *sched.Task, p []byte) (int, error)
	// Pread reads up to len(p) bytes at absolute offset off, touching no
	// shared position — two tasks can Pread one open file concurrently
	// with no offset lock at all.
	Pread(t *sched.Task, p []byte, off int64) (int, error)
	// Pwrite writes p at absolute offset off — or atomically at EOF when
	// off is OffAppend — and returns the byte count and the offset just
	// past the written bytes (for OffAppend the only way the caller can
	// learn where the append landed, since EOF is resolved under the
	// inode lock).
	Pwrite(t *sched.Task, p []byte, off int64) (int, int64, error)
	// Close releases the object — called exactly once, when the last
	// descriptor sharing the open file description drops and no operation
	// is in flight (disk filesystems reclaim unlinked files here).
	Close(t *sched.Task) error
	// Stat describes the file.
	Stat(t *sched.Task) (Stat, error)
	// Sync flushes the file's dirty data and reachable metadata to stable
	// storage — the fsync work. Error OBSERVATION is not done here: the
	// OpenFile observes its own per-open cursor against WbStream after
	// the flush, so each descriptor reports an asynchronous writeback
	// failure exactly once.
	Sync(t *sched.Task) error
	// ReadDir lists an open directory (CapDir).
	ReadDir(t *sched.Task) ([]DirEntry, error)
	// Ioctl issues a device control operation (CapIoctl).
	Ioctl(t *sched.Task, op int, arg int64) (int64, error)
	// Caps reports what this object supports, replacing the old optional
	// interfaces (Seeker, DirReader, Ioctler, ...) and their assertions.
	Caps() Caps
	// WbStream exposes the file's writeback-error stream — the per-inode
	// errseq stream its dirty buffers are tagged with — or nil when the
	// file has none (devices, pipes, proc files). The OpenFile samples it
	// at open for the per-open error cursor.
	WbStream() *errseq.Stream
}

// BaseOps is the embeddable FileOps skeleton: every method defaults to
// the correct "not supported" behaviour (stream IO refused, positional IO
// ErrBadSeek, ReadDir ErrNotDir, Sync a successful no-op, no caps, no
// error stream). Implementations embed it and override their capabilities;
// Stat is deliberately absent so every file must declare its identity.
type BaseOps struct{}

// Read refuses stream input by default.
func (BaseOps) Read(*sched.Task, []byte) (int, error) { return 0, ErrNotSupported }

// Write refuses stream output by default.
func (BaseOps) Write(*sched.Task, []byte) (int, error) { return 0, ErrNotSupported }

// Pread refuses positional reads by default (ESPIPE).
func (BaseOps) Pread(*sched.Task, []byte, int64) (int, error) { return 0, ErrBadSeek }

// Pwrite refuses positional writes by default (ESPIPE).
func (BaseOps) Pwrite(*sched.Task, []byte, int64) (int, int64, error) { return 0, 0, ErrBadSeek }

// Close is a no-op by default.
func (BaseOps) Close(*sched.Task) error { return nil }

// Sync is a successful no-op by default — fsync of a device or pipe has
// nothing to flush.
func (BaseOps) Sync(*sched.Task) error { return nil }

// ReadDir refuses by default: not a directory.
func (BaseOps) ReadDir(*sched.Task) ([]DirEntry, error) { return nil, ErrNotDir }

// Ioctl refuses by default (ENOTTY).
func (BaseOps) Ioctl(*sched.Task, int, int64) (int64, error) { return 0, ErrNotSupported }

// Caps reports no capabilities by default.
func (BaseOps) Caps() Caps { return 0 }

// WbStream reports no writeback-error stream by default.
func (BaseOps) WbStream() *errseq.Stream { return nil }

// FileSystem is what the VFS mounts. Paths given to a FileSystem are
// relative to its mount point, cleaned, and always start with '/'. Open
// returns the bare per-file operations; the VFS wraps them in the
// OpenFile that owns offset, flags and the per-open error cursor.
type FileSystem interface {
	Open(t *sched.Task, path string, flags int) (FileOps, error)
	Mkdir(t *sched.Task, path string) error
	Unlink(t *sched.Task, path string) error
	Stat(t *sched.Task, path string) (Stat, error)
}

// Syncer is implemented by filesystems with dirty state to flush (disk
// filesystems over a write-back buffer cache). VFS.SyncAll drives it at
// shutdown; devfs/procfs have nothing to flush and simply don't implement
// it. Implementations serialize against in-flight operations with their
// own locks — since the per-inode locking refactor that means the
// allocator locks plus a per-inode drain, not a volume lock.
type Syncer interface {
	Sync(t *sched.Task) error
}

// Renamer is implemented by filesystems that support atomically moving an
// entry to a new path on the same volume, replacing an existing target
// (POSIX rename semantics). VFS.Rename dispatches to it and rejects
// cross-mount renames with ErrCrossDevice.
type Renamer interface {
	Rename(t *sched.Task, oldPath, newPath string) error
}

// BlockDevice abstracts the storage under a filesystem: the ramdisk under
// xv6fs, the SD card under FAT32.
type BlockDevice interface {
	BlockSize() int
	Blocks() int
	ReadBlocks(lba, n int, dst []byte) error
	WriteBlocks(lba, n int, src []byte) error
}

// TaskBlockDevice is a BlockDevice whose commands carry the calling task,
// so a device layer that must wait (the blkq request queue waiting for a
// DMA completion IRQ) can sleep the task on the simulated core instead of
// busy-waiting the host thread. The buffer cache prefers these variants
// whenever its own caller handed it a task.
type TaskBlockDevice interface {
	BlockDevice
	ReadBlocksT(t *sched.Task, lba, n int, dst []byte) error
	WriteBlocksT(t *sched.Task, lba, n int, src []byte) error
}

// BlockTicket is one in-flight asynchronous block command. Wait blocks
// until the device completion arrives and returns the command's error; it
// may be called once per ticket.
type BlockTicket interface {
	Wait(t *sched.Task) error
}

// QueuedBlockDevice is implemented by block devices fronted by an IO
// request queue (internal/kernel/blkq): commands can be submitted
// asynchronously — the writeback paths keep several in flight to fill the
// device queue — and a Plug/Unplug pair holds dispatch while a batch is
// being assembled so the elevator can merge it.
type QueuedBlockDevice interface {
	TaskBlockDevice
	SubmitWrite(t *sched.Task, lba, n int, src []byte) (BlockTicket, error)
	Plug(t *sched.Task)
	Unplug(t *sched.Task)
}
