// Package fs is Proto's Prototype 4 file layer: the file abstraction,
// device files (devfs), proc files (procfs), pipes, and the VFS that
// dispatches paths to mounted filesystems — the root xv6fs at "/" and the
// FAT32 SD partition at "/d" in Prototype 5 (§4.5).
//
// The package also defines the two contracts the storage stack hangs off:
// BlockDevice, the multi-block command interface every filesystem's cache
// drives (and the kernel's BlockIO wraps), and Syncer, which VFS.SyncAll
// uses as the single flush path for every mounted filesystem's write-back
// state. See ARCHITECTURE.md for the full layer diagram.
package fs

import (
	"errors"

	"protosim/internal/kernel/sched"
)

// Open flags (a UNIX-like subset, enough for the ported apps).
const (
	ORdOnly   = 0x0
	OWrOnly   = 0x1
	ORdWr     = 0x2
	OCreate   = 0x40
	OTrunc    = 0x200
	ONonblock = 0x800
	OAppend   = 0x400

	accessMask = 0x3
)

// Whence values for Lseek.
const (
	SeekSet = 0
	SeekCur = 1
	SeekEnd = 2
)

// FileType classifies directory entries and open files.
type FileType int

// File types.
const (
	TypeFile FileType = iota
	TypeDir
	TypeDevice
	TypePipe
)

func (t FileType) String() string {
	switch t {
	case TypeFile:
		return "file"
	case TypeDir:
		return "dir"
	case TypeDevice:
		return "dev"
	case TypePipe:
		return "pipe"
	}
	return "?"
}

// Stat describes a file, fstat-style.
type Stat struct {
	Name  string
	Type  FileType
	Size  int64
	Inode uint64
}

// DirEntry is one readdir row.
type DirEntry struct {
	Name string
	Type FileType
	Size int64
}

// Errors shared across filesystems.
var (
	ErrNotFound    = errors.New("fs: no such file or directory")
	ErrExists      = errors.New("fs: file exists")
	ErrNotDir      = errors.New("fs: not a directory")
	ErrIsDir       = errors.New("fs: is a directory")
	ErrBadFD       = errors.New("fs: bad file descriptor")
	ErrPerm        = errors.New("fs: operation not permitted")
	ErrNotEmpty    = errors.New("fs: directory not empty")
	ErrNameTooLong = errors.New("fs: name too long")
	ErrFileTooBig  = errors.New("fs: file exceeds filesystem maximum")
	ErrNoSpace     = errors.New("fs: no space left on device")
	ErrWouldBlock  = errors.New("fs: operation would block") // EAGAIN
	ErrPipeClosed  = errors.New("fs: broken pipe")
	ErrBadSeek     = errors.New("fs: illegal seek")
	ErrReadOnly    = errors.New("fs: read-only filesystem")
	ErrCrossDevice = errors.New("fs: cross-device rename") // EXDEV
)

// File is an open file description. Reads and writes may block (pipes,
// /dev/events, /dev/sb), so they carry the calling task.
type File interface {
	Read(t *sched.Task, p []byte) (int, error)
	Write(t *sched.Task, p []byte) (int, error)
	Close() error
	Stat() (Stat, error)
}

// Seeker is implemented by files that support lseek.
type Seeker interface {
	Lseek(offset int64, whence int) (int64, error)
}

// DirReader is implemented by open directories.
type DirReader interface {
	ReadDir() ([]DirEntry, error)
}

// The File method set predates the need to carry the calling task into
// every operation that may wait on a lock: Stat, Close, and ReadDir have
// no task parameter, so a contended sleeplock under them can only
// spin-yield the host thread — which on a single-core configuration
// starves the very holder being waited on. TaskStater, TaskCloser, and
// TaskDirReader are the task-carrying variants; the syscall layer prefers
// them whenever it has a task in hand, so the task sleeps on the
// simulated core instead. The task-less methods remain for host-side
// callers (tests, image building).

// TaskStater is Stat with the calling task.
type TaskStater interface {
	StatT(t *sched.Task) (Stat, error)
}

// TaskCloser is Close with the calling task (disk filesystems may reclaim
// an unlinked file's blocks at last close, which is lock-and-IO work).
type TaskCloser interface {
	CloseT(t *sched.Task) error
}

// TaskDirReader is ReadDir with the calling task.
type TaskDirReader interface {
	ReadDirT(t *sched.Task) ([]DirEntry, error)
}

// FileSyncer is implemented by open files that can flush their own dirty
// state to stable storage — fsync(2). SyncT writes back the file's data
// (and what of its metadata the filesystem locates: its inode block, its
// directory-entry sector) and reports asynchronous writeback errors that
// hit this file's buffers since the last observation, exactly once, even
// if a retried write has since succeeded — and never another file's
// errors (per-inode errseq tracking in the buffer cache). Files with
// nothing to flush (devices, pipes) simply don't implement it and fsync
// is a no-op on them.
type FileSyncer interface {
	SyncT(t *sched.Task) error
}

// Ioctler is implemented by device files with control operations (e.g.
// /dev/fb's flush, /dev/events' nonblock toggle).
type Ioctler interface {
	Ioctl(t *sched.Task, op int, arg int64) (int64, error)
}

// FileSystem is what the VFS mounts. Paths given to a FileSystem are
// relative to its mount point, cleaned, and always start with '/'.
type FileSystem interface {
	Open(t *sched.Task, path string, flags int) (File, error)
	Mkdir(t *sched.Task, path string) error
	Unlink(t *sched.Task, path string) error
	Stat(t *sched.Task, path string) (Stat, error)
}

// Syncer is implemented by filesystems with dirty state to flush (disk
// filesystems over a write-back buffer cache). VFS.SyncAll drives it at
// shutdown; devfs/procfs have nothing to flush and simply don't implement
// it. Implementations serialize against in-flight operations with their
// own locks — since the per-inode locking refactor that means the
// allocator locks plus a per-inode drain, not a volume lock.
type Syncer interface {
	Sync(t *sched.Task) error
}

// Renamer is implemented by filesystems that support atomically moving an
// entry to a new path on the same volume. VFS.Rename dispatches to it and
// rejects cross-mount renames with ErrCrossDevice.
type Renamer interface {
	Rename(t *sched.Task, oldPath, newPath string) error
}

// BlockDevice abstracts the storage under a filesystem: the ramdisk under
// xv6fs, the SD card under FAT32.
type BlockDevice interface {
	BlockSize() int
	Blocks() int
	ReadBlocks(lba, n int, dst []byte) error
	WriteBlocks(lba, n int, src []byte) error
}

// TaskBlockDevice is a BlockDevice whose commands carry the calling task,
// so a device layer that must wait (the blkq request queue waiting for a
// DMA completion IRQ) can sleep the task on the simulated core instead of
// busy-waiting the host thread. The buffer cache prefers these variants
// whenever its own caller handed it a task.
type TaskBlockDevice interface {
	BlockDevice
	ReadBlocksT(t *sched.Task, lba, n int, dst []byte) error
	WriteBlocksT(t *sched.Task, lba, n int, src []byte) error
}

// BlockTicket is one in-flight asynchronous block command. Wait blocks
// until the device completion arrives and returns the command's error; it
// may be called once per ticket.
type BlockTicket interface {
	Wait(t *sched.Task) error
}

// QueuedBlockDevice is implemented by block devices fronted by an IO
// request queue (internal/kernel/blkq): commands can be submitted
// asynchronously — the writeback paths keep several in flight to fill the
// device queue — and a Plug/Unplug pair holds dispatch while a batch is
// being assembled so the elevator can merge it.
type QueuedBlockDevice interface {
	TaskBlockDevice
	SubmitWrite(t *sched.Task, lba, n int, src []byte) (BlockTicket, error)
	Plug(t *sched.Task)
	Unplug(t *sched.Task)
}
