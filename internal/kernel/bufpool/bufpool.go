// Package bufpool provides bounded free lists of fixed-size IO buffers.
//
// Pipes and socket rings both need a buffer per endpoint, and a channel
// server holds hundreds of endpoints at once. Allocating each ring fresh
// churns the GC; an unbounded sync.Pool hides how much memory the rings
// actually pin. A Pool here is the middle ground, after EdgeNode's
// BytePool: a fixed-capacity channel of idle buffers. Get recycles an
// idle buffer or allocates a new one; Put returns a buffer to the list
// or — when the list is already full — drops it for the GC. The channel
// bound is therefore a cap on IDLE memory, never a cap on concurrency:
// Get always succeeds.
//
// Buffers are NOT zeroed on recycle. Ring owners track their own
// read/write cursors and must never expose bytes they did not write.
//
// The process-wide size-class registry (Shared) is what pipes and
// sockets actually use, so every fixed-size ring in the kernel draws
// from the same bounded free lists.
package bufpool

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// Stats counts pool traffic (tests and /proc diagnostics).
type Stats struct {
	Gets     uint64 // total Get calls
	Recycled uint64 // Gets served from the free list
	News     uint64 // Gets that had to allocate
	Puts     uint64 // total Put calls
	Discards uint64 // Puts dropped: free list full, or wrong-size buffer
}

// Pool is one bounded free list of same-size buffers.
type Pool struct {
	size int
	free chan []byte

	gets, recycled, news, puts, discards atomic.Uint64
}

// New returns a pool of size-byte buffers keeping at most maxIdle of
// them idle.
func New(maxIdle, size int) *Pool {
	if maxIdle <= 0 || size <= 0 {
		panic(fmt.Sprintf("bufpool: bad pool shape maxIdle=%d size=%d", maxIdle, size))
	}
	return &Pool{size: size, free: make(chan []byte, maxIdle)}
}

// Size reports the byte size of this pool's buffers.
func (p *Pool) Size() int { return p.size }

// Get returns a buffer of exactly Size() bytes: recycled if one is idle,
// freshly allocated otherwise. Never blocks, never fails.
func (p *Pool) Get() []byte {
	p.gets.Add(1)
	select {
	case b := <-p.free:
		p.recycled.Add(1)
		return b
	default:
		p.news.Add(1)
		return make([]byte, p.size)
	}
}

// Put returns a buffer to the free list. A buffer of the wrong size, or
// one arriving while the list is full, is discarded to the GC — Put
// never blocks. Callers must not touch the buffer afterwards.
func (p *Pool) Put(b []byte) {
	p.puts.Add(1)
	if len(b) != p.size {
		p.discards.Add(1)
		return
	}
	select {
	case p.free <- b:
	default:
		p.discards.Add(1)
	}
}

// Idle reports how many buffers sit on the free list right now.
func (p *Pool) Idle() int { return len(p.free) }

// Stats snapshots the traffic counters.
func (p *Pool) Stats() Stats {
	return Stats{
		Gets:     p.gets.Load(),
		Recycled: p.recycled.Load(),
		News:     p.news.Load(),
		Puts:     p.puts.Load(),
		Discards: p.discards.Load(),
	}
}

// sharedIdleBytes bounds the idle memory each shared size class may
// pin: 4 MiB per class, expressed in buffers of that class's size.
const sharedIdleBytes = 4 << 20

var (
	sharedMu sync.Mutex
	classes  = make(map[int]*Pool)
)

// Shared returns the process-wide pool for the given size class,
// minting it on first use. Pipes (512 B rings) and sockets (their ring
// size) resolve their classes through here, so all fixed-size kernel
// rings share one bounded set of free lists.
func Shared(size int) *Pool {
	sharedMu.Lock()
	defer sharedMu.Unlock()
	if p, ok := classes[size]; ok {
		return p
	}
	maxIdle := sharedIdleBytes / size
	if maxIdle < 8 {
		maxIdle = 8
	}
	p := New(maxIdle, size)
	classes[size] = p
	return p
}
