package bufpool

import (
	"sync"
	"testing"
)

func TestPoolRecyclesIdentity(t *testing.T) {
	p := New(4, 64)
	b := p.Get()
	if len(b) != 64 {
		t.Fatalf("Get() len = %d", len(b))
	}
	b[0] = 0xAB
	p.Put(b)
	b2 := p.Get()
	if &b2[0] != &b[0] {
		t.Fatal("Get after Put did not recycle the buffer")
	}
	if b2[0] != 0xAB {
		t.Fatal("recycled buffer was zeroed; contract says it is not")
	}
	s := p.Stats()
	if s.Gets != 2 || s.Recycled != 1 || s.News != 1 || s.Puts != 1 || s.Discards != 0 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestPoolBoundsIdleAndDiscards(t *testing.T) {
	p := New(2, 8)
	bufs := [][]byte{p.Get(), p.Get(), p.Get()}
	for _, b := range bufs {
		p.Put(b)
	}
	if p.Idle() != 2 {
		t.Fatalf("Idle = %d, want 2 (bound)", p.Idle())
	}
	if s := p.Stats(); s.Discards != 1 {
		t.Fatalf("Discards = %d, want 1", s.Discards)
	}
}

func TestPoolRejectsWrongSize(t *testing.T) {
	p := New(2, 8)
	p.Put(make([]byte, 9))
	if p.Idle() != 0 {
		t.Fatal("wrong-size buffer entered the free list")
	}
	if s := p.Stats(); s.Discards != 1 {
		t.Fatalf("Discards = %d, want 1", s.Discards)
	}
}

func TestSharedReturnsOnePoolPerClass(t *testing.T) {
	a, b := Shared(512), Shared(512)
	if a != b {
		t.Fatal("Shared(512) minted two pools")
	}
	if c := Shared(1024); c == a {
		t.Fatal("different size classes share a pool")
	}
	if a.Size() != 512 {
		t.Fatalf("Size = %d", a.Size())
	}
}

func TestPoolConcurrentChurn(t *testing.T) {
	p := New(32, 256)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				b := p.Get()
				b[0] = byte(i)
				p.Put(b)
			}
		}()
	}
	wg.Wait()
	s := p.Stats()
	if s.Gets != 8000 || s.Puts != 8000 {
		t.Fatalf("stats = %+v", s)
	}
	if p.Idle() > 32 {
		t.Fatalf("Idle = %d exceeds bound", p.Idle())
	}
}
