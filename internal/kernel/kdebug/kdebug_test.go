package kdebug

import (
	"strings"
	"sync"
	"testing"
)

func TestTraceRecordsAndMerges(t *testing.T) {
	tr := NewTrace(2)
	tr.TraceEvent(0, "switch-in", 1, 0)
	tr.TraceEvent(1, "tick", 0, 0)
	tr.TraceEvent(0, "exit", 1, 0)
	dump := tr.Dump()
	if len(dump) != 3 {
		t.Fatalf("dump = %d events", len(dump))
	}
	for i := 1; i < len(dump); i++ {
		if dump[i].TSMicros < dump[i-1].TSMicros {
			t.Fatal("dump not time-ordered")
		}
	}
}

func TestTraceRingOverwrites(t *testing.T) {
	tr := NewTrace(1)
	for i := 0; i < ringSize+100; i++ {
		tr.TraceEvent(0, "e", int64(i), 0)
	}
	dump := tr.Dump()
	if len(dump) != ringSize {
		t.Fatalf("retained %d, want %d", len(dump), ringSize)
	}
	if dump[0].Arg1 != 100 {
		t.Fatalf("oldest retained = %d, want 100", dump[0].Arg1)
	}
}

func TestTraceDisable(t *testing.T) {
	tr := NewTrace(1)
	tr.SetEnabled(false)
	tr.TraceEvent(0, "e", 0, 0)
	if tr.Count() != 0 {
		t.Fatal("disabled tracer recorded")
	}
}

func TestTraceConcurrentProducers(t *testing.T) {
	tr := NewTrace(4)
	var wg sync.WaitGroup
	for c := 0; c < 4; c++ {
		wg.Add(1)
		go func(core int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				tr.TraceEvent(core, "e", int64(i), 0)
			}
		}(c)
	}
	wg.Wait()
	if tr.Count() != 4000 {
		t.Fatalf("count = %d", tr.Count())
	}
}

func TestUnwinderPushPop(t *testing.T) {
	u := NewUnwinder()
	u.Push(5, "main")
	u.Push(5, "render_frame")
	u.Push(5, "blit")
	frames := u.Unwind(5)
	if len(frames) != 3 || frames[0].Name != "blit" || frames[2].Name != "main" {
		t.Fatalf("frames = %v", frames)
	}
	u.Pop(5)
	if got := u.Unwind(5); len(got) != 2 || got[0].Name != "render_frame" {
		t.Fatalf("after pop = %v", got)
	}
	out := u.Format(5)
	if !strings.Contains(out, "render_frame") || !strings.Contains(out, "[<") {
		t.Fatalf("format = %q", out)
	}
	u.Pop(5)
	u.Pop(5)
	if len(u.Unwind(5)) != 0 {
		t.Fatal("stack not empty")
	}
}

func TestMonitorBreakpoint(t *testing.T) {
	m := NewMonitor()
	var events []DebugEvent
	m.OnEvent(func(e DebugEvent) { events = append(events, e) })
	m.SetBreakpoint(0x80000)
	if m.Check(1, 0x80004, AccessExec) {
		t.Fatal("wrong pc hit")
	}
	if !m.Check(1, 0x80000, AccessExec) {
		t.Fatal("breakpoint missed")
	}
	m.ClearBreakpoint(0x80000)
	if m.Check(1, 0x80000, AccessExec) {
		t.Fatal("cleared breakpoint hit")
	}
	if len(events) != 1 || events[0].TaskID != 1 {
		t.Fatalf("events = %v", events)
	}
}

func TestMonitorWatchpointKinds(t *testing.T) {
	m := NewMonitor()
	m.SetWatchpoint(0x1000, AccessWrite)
	if m.Check(1, 0x1000, AccessRead) {
		t.Fatal("read hit a write watchpoint")
	}
	if !m.Check(1, 0x1000, AccessWrite) {
		t.Fatal("write missed")
	}
	if len(m.Hits()) != 1 {
		t.Fatal("hit not recorded")
	}
}

func TestMonitorSingleStep(t *testing.T) {
	m := NewMonitor()
	m.SetSingleStep(7, true)
	if !m.Check(7, 0x100, AccessExec) || !m.Check(7, 0x104, AccessExec) {
		t.Fatal("single step not firing per instruction")
	}
	if m.Check(8, 0x100, AccessExec) {
		t.Fatal("stepping leaked to another task")
	}
	m.SetSingleStep(7, false)
	if m.Check(7, 0x108, AccessExec) {
		t.Fatal("stepping survived disable")
	}
}
