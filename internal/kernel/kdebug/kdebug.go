// Package kdebug implements Proto's self-hosted debugging support (§5.1):
// an ftrace-like per-core trace ring with timestamped events, a stack
// unwinder that prints raw callsites for offline resolution, a debug
// monitor with breakpoints/watchpoints/single-step over simulated user
// accesses, and the FIQ panic-button dump path.
package kdebug

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// TraceEventRecord is one ring entry.
type TraceEventRecord struct {
	TSMicros int64
	Core     int
	Event    string
	Arg1     int64
	Arg2     int64
}

// ringSize is per-core; old events are overwritten — negligible overhead,
// as the paper requires.
const ringSize = 4096

// coreRing is a single-producer ring (one per core).
type coreRing struct {
	mu    sync.Mutex
	buf   [ringSize]TraceEventRecord
	next  uint64
	epoch time.Time
	lost  uint64
}

// Trace is the all-cores event tracer. It satisfies sched.Tracer.
type Trace struct {
	rings   []*coreRing
	enabled atomic.Bool
	epoch   time.Time
}

// NewTrace creates the tracer for ncores cores (enabled).
func NewTrace(ncores int) *Trace {
	tr := &Trace{epoch: time.Now()}
	for i := 0; i < ncores; i++ {
		tr.rings = append(tr.rings, &coreRing{epoch: tr.epoch})
	}
	tr.enabled.Store(true)
	return tr
}

// SetEnabled toggles tracing.
func (tr *Trace) SetEnabled(on bool) { tr.enabled.Store(on) }

// TraceEvent records one event (implements sched.Tracer).
func (tr *Trace) TraceEvent(core int, event string, a1, a2 int64) {
	if !tr.enabled.Load() {
		return
	}
	if core < 0 || core >= len(tr.rings) {
		core = 0
	}
	r := tr.rings[core]
	r.mu.Lock()
	r.buf[r.next%ringSize] = TraceEventRecord{
		TSMicros: time.Since(tr.epoch).Microseconds(),
		Core:     core,
		Event:    event,
		Arg1:     a1,
		Arg2:     a2,
	}
	r.next++
	r.mu.Unlock()
}

// Dump returns all buffered events merged in timestamp order — the
// on-demand dump used to diagnose scheduler and concurrency issues.
func (tr *Trace) Dump() []TraceEventRecord {
	var all []TraceEventRecord
	for _, r := range tr.rings {
		r.mu.Lock()
		n := r.next
		start := uint64(0)
		if n > ringSize {
			start = n - ringSize
		}
		for i := start; i < n; i++ {
			all = append(all, r.buf[i%ringSize])
		}
		r.mu.Unlock()
	}
	sort.Slice(all, func(i, j int) bool { return all[i].TSMicros < all[j].TSMicros })
	return all
}

// Count returns the number of recorded (retained) events.
func (tr *Trace) Count() int { return len(tr.Dump()) }

// WriteTo formats the dump like ftrace output.
func (tr *Trace) WriteTo(w io.Writer) (int64, error) {
	var n int64
	for _, e := range tr.Dump() {
		k, err := fmt.Fprintf(w, "[%8d us] cpu%d %-12s %d %d\n", e.TSMicros, e.Core, e.Event, e.Arg1, e.Arg2)
		n += int64(k)
		if err != nil {
			return n, err
		}
	}
	return n, nil
}

// --- Stack unwinder ---

// Frame is one callsite: a raw address plus the symbol the offline
// resolver would produce. Tasks push/pop frames at function boundaries in
// app code; the unwinder walks them like Proto's ARMv8 stack tracer walks
// frame pointers.
type Frame struct {
	PC   uint64
	Name string
}

// Unwinder tracks simulated call stacks per task.
type Unwinder struct {
	mu     sync.Mutex
	stacks map[int][]Frame // task ID -> frames
	nextPC uint64
}

// NewUnwinder returns an empty unwinder.
func NewUnwinder() *Unwinder {
	return &Unwinder{stacks: make(map[int][]Frame), nextPC: 0xffff000000080000}
}

// Push records entry into fn for task id.
func (u *Unwinder) Push(taskID int, fn string) {
	u.mu.Lock()
	defer u.mu.Unlock()
	u.nextPC += 0x40
	u.stacks[taskID] = append(u.stacks[taskID], Frame{PC: u.nextPC, Name: fn})
}

// Pop records return from the innermost frame.
func (u *Unwinder) Pop(taskID int) {
	u.mu.Lock()
	defer u.mu.Unlock()
	s := u.stacks[taskID]
	if len(s) > 0 {
		u.stacks[taskID] = s[:len(s)-1]
	}
	if len(u.stacks[taskID]) == 0 {
		delete(u.stacks, taskID)
	}
}

// Unwind returns the task's frames, innermost first, as the tracer prints
// them (raw callsite addresses).
func (u *Unwinder) Unwind(taskID int) []Frame {
	u.mu.Lock()
	defer u.mu.Unlock()
	s := u.stacks[taskID]
	out := make([]Frame, len(s))
	for i := range s {
		out[len(s)-1-i] = s[i]
	}
	return out
}

// Format renders an unwind like the kernel's oops output.
func (u *Unwinder) Format(taskID int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "call trace (task %d):\n", taskID)
	for _, f := range u.Unwind(taskID) {
		fmt.Fprintf(&b, "  [<%016x>] %s\n", f.PC, f.Name)
	}
	return b.String()
}

// --- Debug monitor (hardware debug exceptions) ---

// AccessKind classifies a watched access.
type AccessKind int

// Access kinds.
const (
	AccessExec AccessKind = iota
	AccessRead
	AccessWrite
)

// DebugEvent reports a triggered break/watch.
type DebugEvent struct {
	TaskID int
	Addr   uint64
	Kind   AccessKind
}

// Monitor is the 200-LOC debug monitor: breakpoints on PCs, watchpoints on
// data addresses, and single-step. The mm layer and exec path call Check on
// simulated accesses; a hit invokes the registered handler (which typically
// printks a dump and optionally stops the task).
type Monitor struct {
	mu          sync.Mutex
	breakpoints map[uint64]bool
	watchpoints map[uint64]AccessKind
	singleStep  map[int]bool // task ID -> stepping
	handler     func(DebugEvent)
	hits        []DebugEvent
}

// NewMonitor returns an empty monitor.
func NewMonitor() *Monitor {
	return &Monitor{
		breakpoints: make(map[uint64]bool),
		watchpoints: make(map[uint64]AccessKind),
		singleStep:  make(map[int]bool),
	}
}

// OnEvent installs the hit handler.
func (m *Monitor) OnEvent(h func(DebugEvent)) {
	m.mu.Lock()
	m.handler = h
	m.mu.Unlock()
}

// SetBreakpoint arms a breakpoint at pc (DBGBCR analogue).
func (m *Monitor) SetBreakpoint(pc uint64) {
	m.mu.Lock()
	m.breakpoints[pc] = true
	m.mu.Unlock()
}

// ClearBreakpoint disarms pc.
func (m *Monitor) ClearBreakpoint(pc uint64) {
	m.mu.Lock()
	delete(m.breakpoints, pc)
	m.mu.Unlock()
}

// SetWatchpoint arms a data watchpoint (DBGWCR analogue).
func (m *Monitor) SetWatchpoint(addr uint64, kind AccessKind) {
	m.mu.Lock()
	m.watchpoints[addr] = kind
	m.mu.Unlock()
}

// ClearWatchpoint disarms addr.
func (m *Monitor) ClearWatchpoint(addr uint64) {
	m.mu.Lock()
	delete(m.watchpoints, addr)
	m.mu.Unlock()
}

// SetSingleStep toggles single-stepping for a task.
func (m *Monitor) SetSingleStep(taskID int, on bool) {
	m.mu.Lock()
	if on {
		m.singleStep[taskID] = true
	} else {
		delete(m.singleStep, taskID)
	}
	m.mu.Unlock()
}

// Check tests an access against the armed break/watchpoints; it reports
// whether a debug exception fired.
func (m *Monitor) Check(taskID int, addr uint64, kind AccessKind) bool {
	m.mu.Lock()
	hit := false
	if kind == AccessExec {
		hit = m.breakpoints[addr] || m.singleStep[taskID]
	} else if wk, ok := m.watchpoints[addr]; ok {
		hit = wk == kind || (wk == AccessWrite && kind == AccessWrite) || (wk == AccessRead && kind == AccessRead)
	}
	var h func(DebugEvent)
	var ev DebugEvent
	if hit {
		ev = DebugEvent{TaskID: taskID, Addr: addr, Kind: kind}
		m.hits = append(m.hits, ev)
		h = m.handler
	}
	m.mu.Unlock()
	if hit && h != nil {
		h(ev)
	}
	return hit
}

// Hits returns recorded debug events.
func (m *Monitor) Hits() []DebugEvent {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]DebugEvent, len(m.hits))
	copy(out, m.hits)
	return out
}
