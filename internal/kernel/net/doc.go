// Package net is the kernel's TCP-ish stream transport over the
// simulated NIC.
//
// The shape is deliberately a miniature of the classic stack:
//
//   - A Stack owns one host address, the connection table, the listener
//     table, and (optionally) one hw.NIC. Frames the NIC delivers are
//     drained by a NAPI-style softirq goroutine — the IRQNIC handler only
//     kicks it, so protocol work never runs in interrupt context and
//     never blocks the device's goroutine.
//   - A conn is one bidirectional byte stream: bounded send and receive
//     rings drawn from the shared bufpool size classes (the same pool
//     family pipes use), sequence/ack accounting, a peer-advertised flow
//     control window, and FIN/RST teardown.
//   - Loss recovery is go-back-N behind the Options.After seam: on a
//     reliable link no timer is needed and the seam may be nil; under an
//     hw.NetFaultPlan (drop, duplication, reorder, latency spikes) the
//     retransmit timer replays from the last acknowledged byte until the
//     stream converges.
//   - A Socket is the fs.FileOps face: Caps() == 0 (a stream file, like a
//     pipe end), so the generic OpenFile/syscall layer drives it through
//     Read/Write/Close with zero socket-specific branches. The six
//     socket syscalls (socket/bind/listen/accept/connect/shutdown) are
//     the only code that knows a *Socket from any other stream.
//
// Wire format: every frame is one segment — a 32-byte header (flags,
// src/dst host:port, 64-bit seq/ack, window, payload length) followed by
// at most MSS payload bytes, sized so a full segment fits one NIC frame.
// Sequence numbers count bytes from 0 with the SYN occupying sequence 0
// and the FIN occupying the sequence just past the last data byte; being
// 64-bit they never wrap in a simulation's lifetime (a deliberate
// divergence from TCP's 32-bit wrapping arithmetic).
//
// Blocking follows the pipe discipline: every wait is a
// sched.WaitQueue.SleepUnless loop re-checking its condition under the
// connection lock (lost-wakeup-free), with host-side callers (t == nil)
// spin-yielding instead.
package net
