package net

import (
	"runtime"
	"sync"

	"protosim/internal/kernel/fs"
	"protosim/internal/kernel/sched"
)

// RingSize is each connection's send and receive ring capacity. It is
// also the largest window a conn ever advertises.
const RingSize = 32 * 1024

// connKey identifies a connection in the stack's table. The local host
// is implicit (the stack's); the local port alone cannot identify a
// conn because every connection accepted from one listener shares the
// listener's port.
type connKey struct {
	localPort  uint16
	remoteHost uint16
	remotePort uint16
}

// conn is one TCP-ish stream. All sequence bookkeeping below is in BYTE
// space: byte 0 is the first payload byte of the stream, and the wire
// sequence of byte b is b+1 (the SYN occupies wire sequence 0, the FIN
// occupies the wire sequence just past the last byte). Both directions
// use the same mapping.
//
// Locking: mu protects every field; no emission (NIC submit or loopback
// enqueue) ever happens with mu held — handlers collect segments under
// mu and send after unlock. pumpMu serializes transmission so data
// segments are SUBMITTED in sequence order even when a writer task and
// the softirq pump concurrently; it never nests inside mu.
type conn struct {
	stack  *Stack
	local  Addr
	remote Addr
	server bool // created by a listener (affects dup-SYN handling)

	mu      sync.Mutex
	synSent bool // client: SYN sent, SYN|ACK not yet received

	// pumping/repump elect a single active transmitter: whoever sets
	// pumping owns submission until the well runs dry, and anyone arriving
	// meanwhile (a writer task, the softirq on an ACK, a loopback
	// delivery re-entering from this very conn's send path) just flags
	// repump and leaves. One submitter keeps data segments in sequence
	// order on the wire, and — unlike a mutex — re-entry cannot deadlock.
	pumping bool
	repump  bool

	// Send side. Ring holds [sndUna, sndEnd); sndNxt is the next byte to
	// transmit. Go-back-N: a retransmit timeout rewinds sndNxt to sndUna.
	sndBuf    []byte
	sndUna    uint64
	sndNxt    uint64
	sndEnd    uint64
	sndLimit  uint64 // peer's flow-control edge, wire space: ack+wnd high-water
	finQueued bool   // stream ended locally: no more writes accepted
	finSent   bool   // FIN transmitted and not rewound by a retransmit
	finAcked  bool
	finWire   uint64 // wire sequence the FIN occupies (sndEnd+1 at queue time)

	// Receive side. Ring holds [rcvRead, rcvWr).
	rcvBuf  []byte
	rcvRead uint64
	rcvWr   uint64
	peerFIN bool
	zeroWnd bool // last advertised window was 0: reads owe a window update

	rdShut    bool  // shutdown(RD): reads return EOF, arriving data is acked and discarded on read? kept; simple EOF
	resetErr  error // RST received (or sent): ErrConnReset / ErrConnRefused
	ofdClosed bool  // the owning OFD released us; reap when the wire winds down
	reaped    bool  // removed from the table, rings returned

	retrans   uint64
	rtoCancel func() bool

	rwq sched.WaitQueue // blocked readers
	wwq sched.WaitQueue // blocked writers
	cwq sched.WaitQueue // connect() waiting for the handshake
}

func newConn(s *Stack, local, remote Addr, server bool) *conn {
	return &conn{
		stack:  s,
		local:  local,
		remote: remote,
		server: server,
		sndBuf: s.ringPool.Get(),
		rcvBuf: s.ringPool.Get(),
	}
}

func (c *conn) key() connKey {
	return connKey{localPort: c.local.Port, remoteHost: c.remote.Host, remotePort: c.remote.Port}
}

// ringPut copies src into ring at absolute position pos (wrapping).
func ringPut(ring []byte, pos uint64, src []byte) {
	i := int(pos % uint64(len(ring)))
	n := copy(ring[i:], src)
	if n < len(src) {
		copy(ring, src[n:])
	}
}

// ringGet copies len(dst) bytes out of ring from absolute position pos.
func ringGet(ring []byte, pos uint64, dst []byte) {
	i := int(pos % uint64(len(ring)))
	n := copy(dst, ring[i:])
	if n < len(dst) {
		copy(dst[n:], ring[:len(dst)-n])
	}
}

// freeLocked is the receive window to advertise; it records a zero
// advertisement so the next read knows to send a window update.
func (c *conn) freeLocked() uint32 {
	free := uint32(RingSize - (c.rcvWr - c.rcvRead))
	c.zeroWnd = free == 0
	return free
}

// ackWireLocked is the wire sequence we expect next from the peer.
func (c *conn) ackWireLocked() uint64 {
	a := c.rcvWr + 1
	if c.peerFIN {
		a++
	}
	return a
}

// ackSegLocked builds a pure ACK (also the window-update segment).
func (c *conn) ackSegLocked() seg {
	return seg{
		flags: flagACK,
		src:   c.local,
		dst:   c.remote,
		seq:   c.sndNxt + 1,
		ack:   c.ackWireLocked(),
		wnd:   c.freeLocked(),
	}
}

// synSegLocked builds the client SYN (wire sequence 0).
func (c *conn) synSegLocked() seg {
	return seg{flags: flagSYN, src: c.local, dst: c.remote, seq: 0, wnd: c.freeLocked()}
}

// synAckSegLocked builds the server SYN|ACK (its own wire sequence 0,
// acknowledging the client's SYN).
func (c *conn) synAckSegLocked() seg {
	return seg{flags: flagSYN | flagACK, src: c.local, dst: c.remote, seq: 0, ack: 1, wnd: c.freeLocked()}
}

// --- retransmission (the Options.After seam) ---

// armRTOLocked starts the retransmit timer if the seam is wired and no
// timer is pending.
func (c *conn) armRTOLocked() {
	if c.stack.after == nil || c.rtoCancel != nil || c.reaped || c.resetErr != nil {
		return
	}
	c.rtoCancel = c.stack.after(c.stack.rto, c.onRTO)
}

// cancelRTOLocked stops a pending timer.
func (c *conn) cancelRTOLocked() {
	if c.rtoCancel != nil {
		c.rtoCancel()
		c.rtoCancel = nil
	}
}

// outstandingLocked reports whether unacknowledged wire state exists.
func (c *conn) outstandingLocked() bool {
	return c.synSent || c.sndNxt > c.sndUna || (c.finSent && !c.finAcked)
}

// onRTO fires on the timer goroutine: go back to the last acknowledged
// byte and replay. SYNs are replayed in place (handshake retransmit).
func (c *conn) onRTO() {
	c.mu.Lock()
	c.rtoCancel = nil
	if c.reaped || c.resetErr != nil || !c.outstandingLocked() {
		c.mu.Unlock()
		return
	}
	c.retrans++
	c.stack.retrans.Add(1)
	if c.synSent {
		g := c.synSegLocked()
		c.armRTOLocked()
		c.mu.Unlock()
		c.stack.emit(nil, g)
		return
	}
	c.sndNxt = c.sndUna
	c.finSent = false
	c.armRTOLocked()
	c.mu.Unlock()
	c.pump(nil)
}

// --- transmission ---

// pump transmits whatever the window and the ring allow: data in MSS
// chunks, then the FIN once all data is out. The pumping election (see
// the field comment) keeps concurrent pumpers (writer task, softirq on
// ACK, retransmit timer) from interleaving submissions — without it
// go-back-N would see self-inflicted reordering.
func (c *conn) pump(t *sched.Task) {
	c.mu.Lock()
	if c.pumping {
		c.repump = true
		c.mu.Unlock()
		return
	}
	c.pumping = true
	for {
		if c.reaped || c.resetErr != nil || c.synSent {
			break
		}
		wireNxt := c.sndNxt + 1
		var frame []byte
		switch {
		case c.sndNxt < c.sndEnd && wireNxt < c.sndLimit:
			l := uint64(MSS)
			if d := c.sndEnd - c.sndNxt; d < l {
				l = d
			}
			if d := c.sndLimit - wireNxt; d < l {
				l = d
			}
			frame = c.stack.framePool.Get()
			ringGet(c.sndBuf, c.sndNxt, frame[HdrSize:HdrSize+l])
			g := seg{
				flags:   flagACK,
				src:     c.local,
				dst:     c.remote,
				seq:     wireNxt,
				ack:     c.ackWireLocked(),
				wnd:     c.freeLocked(),
				payload: frame[HdrSize : HdrSize+l],
			}
			n := g.marshal(frame) // payload copy is onto itself
			frame = frame[:n]
			c.sndNxt += l
			c.armRTOLocked()
		case c.finQueued && !c.finSent && c.sndNxt == c.sndEnd:
			g := seg{
				flags: flagACK | flagFIN,
				src:   c.local,
				dst:   c.remote,
				seq:   c.finWire,
				ack:   c.ackWireLocked(),
				wnd:   c.freeLocked(),
			}
			frame = c.stack.framePool.Get()
			frame = frame[:g.marshal(frame)]
			c.finSent = true
			c.armRTOLocked()
		default:
			frame = nil
		}
		if frame == nil {
			// Nothing sendable right now; one more pass if someone asked
			// for a repump while we were off submitting.
			if c.repump {
				c.repump = false
				continue
			}
			break
		}
		dstHost := c.remote.Host
		c.mu.Unlock()
		c.stack.send(t, frame, dstHost)
		c.mu.Lock()
	}
	c.repump = false
	c.pumping = false
	c.mu.Unlock()
}

// --- input ---

// deliver runs one inbound segment through the state machine, emits any
// responses, pumps if the window moved, and reaps the conn if this
// segment finished tearing it down.
func (c *conn) deliver(g seg) {
	emits, pumpNeeded, reap := c.handleSeg(g)
	for _, e := range emits {
		c.stack.emit(nil, e)
	}
	if pumpNeeded {
		c.pump(nil)
	}
	if reap {
		c.stack.removeConn(c)
	}
}

// handleSeg applies one segment under the conn lock and returns control
// segments to emit after unlock.
func (c *conn) handleSeg(g seg) (emits []seg, pumpNeeded, reap bool) {
	c.mu.Lock()
	if c.reaped {
		c.mu.Unlock()
		return nil, false, false
	}
	if g.flags&flagRST != 0 {
		if c.resetErr == nil {
			if c.synSent {
				c.resetErr = ErrConnRefused
			} else {
				c.resetErr = ErrConnReset
			}
		}
		c.cancelRTOLocked()
		reap = c.reapableLocked()
		c.mu.Unlock()
		c.rwq.WakeAll()
		c.wwq.WakeAll()
		c.cwq.WakeAll()
		return nil, false, reap
	}
	if c.resetErr != nil {
		c.mu.Unlock()
		return nil, false, false
	}

	needAck := false
	wakeReaders, wakeWriters, wakeConnect := false, false, false

	if g.flags&flagSYN != 0 {
		switch {
		case c.synSent && g.flags&flagACK != 0:
			// SYN|ACK: handshake complete.
			c.synSent = false
			c.cancelRTOLocked()
			if edge := g.ack + uint64(g.wnd); edge > c.sndLimit {
				c.sndLimit = edge
			}
			wakeConnect = true
			needAck = true
			pumpNeeded = true
		case c.server:
			// Duplicate SYN: our SYN|ACK was lost — resend it.
			emits = append(emits, c.synAckSegLocked())
		default:
			// Duplicate SYN|ACK while established: re-acknowledge.
			needAck = true
		}
	}

	if g.flags&flagACK != 0 && !c.synSent {
		if edge := g.ack + uint64(g.wnd); edge > c.sndLimit {
			c.sndLimit = edge
			pumpNeeded = true
		}
		if g.ack >= 1 {
			acked := g.ack - 1
			if acked > c.sndEnd {
				acked = c.sndEnd
			}
			if c.finQueued && g.ack >= c.finWire+1 && !c.finAcked {
				c.finAcked = true
			}
			if acked > c.sndUna {
				c.sndUna = acked
				if c.sndNxt < c.sndUna {
					c.sndNxt = c.sndUna
				}
				wakeWriters = true
				pumpNeeded = true
			}
		}
		// Re-shape the retransmit clock around what is still in flight.
		c.cancelRTOLocked()
		if c.outstandingLocked() {
			c.armRTOLocked()
		}
	}

	if len(g.payload) > 0 && !c.synSent {
		l := uint64(len(g.payload))
		switch {
		case g.seq == c.rcvWr+1 && c.rcvWr+l-c.rcvRead <= RingSize && !c.peerFIN:
			// In order and it fits: the only acceptance go-back-N makes.
			ringPut(c.rcvBuf, c.rcvWr, g.payload)
			c.rcvWr += l
			wakeReaders = true
		default:
			// Duplicate, out of order, or overflow: drop; the ACK below
			// tells the sender where we really are.
		}
		needAck = true
	}

	if g.flags&flagFIN != 0 && !c.synSent {
		finSeq := g.seq + uint64(len(g.payload))
		if finSeq == c.rcvWr+1 && !c.peerFIN {
			c.peerFIN = true
			wakeReaders = true
		}
		needAck = true
	}

	if needAck {
		emits = append(emits, c.ackSegLocked())
	}
	reap = c.reapableLocked()
	c.mu.Unlock()

	if wakeReaders {
		c.rwq.WakeAll()
	}
	if wakeWriters {
		c.wwq.WakeAll()
	}
	if wakeConnect {
		c.cwq.WakeAll()
	}
	return emits, pumpNeeded, reap
}

// reapableLocked: the OFD is gone and the wire has nothing left to say.
func (c *conn) reapableLocked() bool {
	return c.ofdClosed && !c.reaped &&
		(c.resetErr != nil || (c.finAcked && c.peerFIN))
}

// --- the blocking byte-stream face ---

// read copies buffered bytes out, blocking while the stream is open and
// empty. EOF (0, nil) after a peer FIN or a local shutdown(RD); a reset
// surfaces once the buffered data is drained.
func (c *conn) read(t *sched.Task, p []byte) (int, error) {
	if len(p) == 0 {
		return 0, nil
	}
	for {
		if t != nil && t.Killed() {
			t.CheckPreempt() // unwinds
		}
		c.mu.Lock()
		if c.rdShut {
			c.mu.Unlock()
			return 0, nil
		}
		if avail := c.rcvWr - c.rcvRead; avail > 0 {
			n := len(p)
			if uint64(n) > avail {
				n = int(avail)
			}
			ringGet(c.rcvBuf, c.rcvRead, p[:n])
			c.rcvRead += uint64(n)
			// A reader draining a ring we advertised as full owes the
			// peer a window update, or its writer sleeps forever.
			var update seg
			sendUpdate := c.zeroWnd && c.resetErr == nil && !c.reaped
			if sendUpdate {
				update = c.ackSegLocked()
			}
			c.mu.Unlock()
			if sendUpdate {
				c.stack.emit(t, update)
			}
			return n, nil
		}
		if c.peerFIN {
			c.mu.Unlock()
			return 0, nil
		}
		if c.resetErr != nil {
			err := c.resetErr
			c.mu.Unlock()
			return 0, err
		}
		c.mu.Unlock()
		if t == nil {
			runtime.Gosched()
			continue
		}
		c.rwq.SleepUnless(t, func() bool {
			if t.Killed() {
				return true
			}
			c.mu.Lock()
			d := c.rcvWr > c.rcvRead || c.peerFIN || c.rdShut || c.resetErr != nil
			c.mu.Unlock()
			return d
		})
	}
}

// write queues bytes into the send ring (pumping as it goes), blocking
// while the ring is full. Writing after shutdown(WR), close, or a reset
// is ErrPipeClosed, the EPIPE analogue — after partial progress the
// short count is returned first, like pipes.
func (c *conn) write(t *sched.Task, p []byte) (int, error) {
	written := 0
	for written < len(p) {
		if t != nil && t.Killed() {
			t.CheckPreempt() // unwinds
		}
		c.mu.Lock()
		if c.resetErr != nil || c.finQueued {
			c.mu.Unlock()
			if written > 0 {
				return written, nil
			}
			return 0, fs.ErrPipeClosed
		}
		if c.synSent {
			// Handshake still in flight (connect returned early only in
			// tests): wait for it below.
		} else if space := RingSize - (c.sndEnd - c.sndUna); space > 0 {
			n := len(p) - written
			if uint64(n) > space {
				n = int(space)
			}
			ringPut(c.sndBuf, c.sndEnd, p[written:written+n])
			c.sndEnd += uint64(n)
			c.mu.Unlock()
			written += n
			c.pump(t)
			continue
		}
		c.mu.Unlock()
		if t == nil {
			runtime.Gosched()
			continue
		}
		c.wwq.SleepUnless(t, func() bool {
			if t.Killed() {
				return true
			}
			c.mu.Lock()
			d := (!c.synSent && c.sndEnd-c.sndUna < RingSize) || c.finQueued || c.resetErr != nil
			c.mu.Unlock()
			return d
		})
	}
	return written, nil
}

// queueFIN ends the outbound stream (shutdown(WR) and close): the FIN
// takes the wire sequence just past the last queued byte and rides the
// normal pump/retransmit machinery.
func (c *conn) queueFIN(t *sched.Task) {
	c.mu.Lock()
	if c.finQueued || c.resetErr != nil || c.reaped {
		c.mu.Unlock()
		return
	}
	c.finQueued = true
	c.finWire = c.sndEnd + 1
	c.mu.Unlock()
	c.wwq.WakeAll() // blocked writers fail with ErrPipeClosed
	c.pump(t)
}

// shutRD ends the inbound stream locally: blocked and future reads
// return EOF. Nothing is said on the wire.
func (c *conn) shutRD() {
	c.mu.Lock()
	c.rdShut = true
	c.mu.Unlock()
	c.rwq.WakeAll()
}

// close is the OFD release: full shutdown plus reaping once the wire
// winds down (FIN acked and peer FIN seen, or reset).
func (c *conn) close(t *sched.Task) {
	c.mu.Lock()
	c.ofdClosed = true
	c.rdShut = true
	if c.synSent && c.resetErr == nil {
		// Close before the handshake finished: abort silently.
		c.resetErr = ErrConnReset
		c.cancelRTOLocked()
	}
	c.mu.Unlock()
	c.rwq.WakeAll()
	c.wwq.WakeAll()
	c.cwq.WakeAll()
	c.queueFIN(t)
	c.stack.removeConn(c)
}

// abort tears the conn down immediately with an RST to the peer — the
// listener-close path for never-accepted embryos.
func (c *conn) abort() {
	c.mu.Lock()
	if c.reaped || c.resetErr != nil {
		c.mu.Unlock()
		return
	}
	c.resetErr = ErrConnReset
	c.ofdClosed = true
	c.cancelRTOLocked()
	rst := seg{flags: flagRST, src: c.local, dst: c.remote}
	c.mu.Unlock()
	c.rwq.WakeAll()
	c.wwq.WakeAll()
	c.cwq.WakeAll()
	c.stack.emit(nil, rst)
	c.stack.removeConn(c)
}

// stateString renders the conn's TCP-ish state for /proc/net.
func (c *conn) stateString() string {
	c.mu.Lock()
	defer c.mu.Unlock()
	switch {
	case c.resetErr != nil:
		return "RESET"
	case c.synSent:
		return "SYN_SENT"
	case c.finQueued && c.peerFIN && c.finAcked:
		return "CLOSED"
	case c.finQueued && c.peerFIN:
		return "LAST_ACK"
	case c.finQueued:
		return "FIN_WAIT"
	case c.peerFIN:
		return "CLOSE_WAIT"
	default:
		return "ESTABLISHED"
	}
}
