package net

import (
	"encoding/binary"
	"fmt"

	"protosim/internal/hw"
)

// Wire-format constants.
const (
	// HdrSize is the fixed segment header length.
	HdrSize = 32
	// MSS is the maximum payload per segment: one NIC frame minus the
	// header.
	MSS = hw.NICMTU - HdrSize
)

// Segment flags.
const (
	flagSYN = 1 << iota
	flagACK
	flagFIN
	flagRST
)

// segVersion guards against parsing garbage as a segment.
const segVersion = 1

// Addr names a transport endpoint: a host on the simulated network and a
// port on it.
type Addr struct {
	Host uint16
	Port uint16
}

// String renders host:port.
func (a Addr) String() string { return fmt.Sprintf("%d:%d", a.Host, a.Port) }

// seg is one parsed (or to-be-marshalled) segment.
type seg struct {
	flags   byte
	src     Addr
	dst     Addr
	seq     uint64 // wire sequence of the first payload byte (or SYN/FIN)
	ack     uint64 // next wire sequence the sender expects (flagACK)
	wnd     uint32 // sender's free receive-ring space
	payload []byte
}

// header layout:
//
//	off  0: version
//	off  1: flags
//	off  2: srcHost   off  4: srcPort
//	off  6: dstHost   off  8: dstPort
//	off 10: seq (8)   off 18: ack (8)
//	off 26: wnd (4)   off 30: payload length (2)
func (g *seg) marshal(buf []byte) int {
	buf[0] = segVersion
	buf[1] = g.flags
	binary.BigEndian.PutUint16(buf[2:], g.src.Host)
	binary.BigEndian.PutUint16(buf[4:], g.src.Port)
	binary.BigEndian.PutUint16(buf[6:], g.dst.Host)
	binary.BigEndian.PutUint16(buf[8:], g.dst.Port)
	binary.BigEndian.PutUint64(buf[10:], g.seq)
	binary.BigEndian.PutUint64(buf[18:], g.ack)
	binary.BigEndian.PutUint32(buf[26:], g.wnd)
	binary.BigEndian.PutUint16(buf[30:], uint16(len(g.payload)))
	copy(buf[HdrSize:], g.payload)
	return HdrSize + len(g.payload)
}

// parseSeg decodes a frame in place: the returned seg's payload aliases
// frame's bytes.
func parseSeg(frame []byte) (seg, bool) {
	if len(frame) < HdrSize || frame[0] != segVersion {
		return seg{}, false
	}
	g := seg{
		flags: frame[1],
		src:   Addr{binary.BigEndian.Uint16(frame[2:]), binary.BigEndian.Uint16(frame[4:])},
		dst:   Addr{binary.BigEndian.Uint16(frame[6:]), binary.BigEndian.Uint16(frame[8:])},
		seq:   binary.BigEndian.Uint64(frame[10:]),
		ack:   binary.BigEndian.Uint64(frame[18:]),
		wnd:   binary.BigEndian.Uint32(frame[26:]),
	}
	n := int(binary.BigEndian.Uint16(frame[30:]))
	if HdrSize+n > len(frame) {
		return seg{}, false
	}
	g.payload = frame[HdrSize : HdrSize+n]
	return g, true
}

// flagString renders flags for /proc/net and traces.
func flagString(f byte) string {
	s := ""
	if f&flagSYN != 0 {
		s += "S"
	}
	if f&flagACK != 0 {
		s += "A"
	}
	if f&flagFIN != 0 {
		s += "F"
	}
	if f&flagRST != 0 {
		s += "R"
	}
	if s == "" {
		s = "-"
	}
	return s
}
