package net

import (
	"fmt"
	"sync"

	"protosim/internal/kernel/fs"
	"protosim/internal/kernel/sched"
)

// Shutdown directions (SysShutdown's how argument).
const (
	// ShutRD ends the inbound stream: reads return EOF.
	ShutRD = 0
	// ShutWR ends the outbound stream: a FIN is sent, writes fail.
	ShutWR = 1
	// ShutRDWR is both.
	ShutRDWR = 2
)

// Socket is the fs.FileOps face of the transport: a stream file
// (Caps() == 0, like a pipe end) the generic OpenFile layer drives
// through Read/Write/Close with no socket-specific branches. It starts
// unbound and becomes a listener (Bind+Listen) or a connection
// (Connect, or minted by Accept).
type Socket struct {
	fs.BaseOps
	stack *Stack

	mu        sync.Mutex
	c         *conn
	l         *listener
	boundPort uint16
	bound     bool // holds a bind reference on boundPort
	closed    bool
}

// NewSocket mints an unbound socket on the stack.
func (s *Stack) NewSocket() *Socket { return &Socket{stack: s} }

// Bind reserves a local port (0 picks an ephemeral one).
func (sk *Socket) Bind(t *sched.Task, port uint16) error {
	sk.mu.Lock()
	defer sk.mu.Unlock()
	if sk.closed {
		return fs.ErrBadFD
	}
	if sk.bound || sk.c != nil || sk.l != nil {
		return ErrIsConn
	}
	p, err := sk.stack.reservePort(port)
	if err != nil {
		return err
	}
	sk.boundPort = p
	sk.bound = true
	return nil
}

// LocalPort reports the bound or ephemeral local port (0 if unbound).
func (sk *Socket) LocalPort() uint16 {
	sk.mu.Lock()
	defer sk.mu.Unlock()
	if sk.c != nil {
		return sk.c.local.Port
	}
	return sk.boundPort
}

// Listen turns a bound socket passive with the given backlog.
func (sk *Socket) Listen(t *sched.Task, backlog int) error {
	sk.mu.Lock()
	defer sk.mu.Unlock()
	if sk.closed {
		return fs.ErrBadFD
	}
	if sk.c != nil || sk.l != nil {
		return ErrIsConn
	}
	if !sk.bound {
		return ErrNotConn
	}
	l, err := sk.stack.listen(sk.boundPort, backlog)
	if err != nil {
		return err
	}
	sk.l = l
	sk.bound = false // the listener owns the port reference now
	return nil
}

// Accept blocks for the next handshake-complete connection and returns
// it as a fresh connected Socket.
func (sk *Socket) Accept(t *sched.Task) (*Socket, error) {
	sk.mu.Lock()
	l := sk.l
	closed := sk.closed
	sk.mu.Unlock()
	if closed {
		return nil, fs.ErrBadFD
	}
	if l == nil {
		return nil, ErrNotListening
	}
	c, err := l.accept(t)
	if err != nil {
		return nil, err
	}
	return &Socket{stack: sk.stack, c: c}, nil
}

// Connect dials remote, binding an ephemeral port first if needed, and
// blocks until the handshake completes or is refused.
func (sk *Socket) Connect(t *sched.Task, remote Addr) error {
	sk.mu.Lock()
	if sk.closed {
		sk.mu.Unlock()
		return fs.ErrBadFD
	}
	if sk.c != nil || sk.l != nil {
		sk.mu.Unlock()
		return ErrIsConn
	}
	if !sk.bound {
		p, err := sk.stack.reservePort(0)
		if err != nil {
			sk.mu.Unlock()
			return err
		}
		sk.boundPort = p
		sk.bound = true
	}
	port := sk.boundPort
	sk.mu.Unlock()

	c, err := sk.stack.connect(t, port, remote)

	sk.mu.Lock()
	defer sk.mu.Unlock()
	if err != nil {
		return err
	}
	if sk.closed {
		// Raced with close: tear the fresh conn down.
		c.close(t)
		return fs.ErrBadFD
	}
	sk.c = c
	return nil
}

// Shutdown ends one or both directions of a connected socket. ShutWR
// sends the FIN immediately; subsequent writes fail with ErrPipeClosed
// while the peer still drains buffered data to a clean EOF.
func (sk *Socket) Shutdown(t *sched.Task, how int) error {
	sk.mu.Lock()
	c := sk.c
	closed := sk.closed
	sk.mu.Unlock()
	if closed {
		return fs.ErrBadFD
	}
	if c == nil {
		return ErrNotConn
	}
	switch how {
	case ShutRD:
		c.shutRD()
	case ShutWR:
		c.queueFIN(t)
	case ShutRDWR:
		c.shutRD()
		c.queueFIN(t)
	default:
		return fs.ErrNotSupported
	}
	return nil
}

// Addrs reports the connection's endpoints (zero values if unconnected).
func (sk *Socket) Addrs() (local, remote Addr) {
	sk.mu.Lock()
	defer sk.mu.Unlock()
	if sk.c == nil {
		return Addr{Host: sk.stack.host, Port: sk.boundPort}, Addr{}
	}
	return sk.c.local, sk.c.remote
}

// Read streams received bytes; see conn.read for blocking and EOF
// semantics.
func (sk *Socket) Read(t *sched.Task, p []byte) (int, error) {
	sk.mu.Lock()
	c := sk.c
	sk.mu.Unlock()
	if c == nil {
		return 0, ErrNotConn
	}
	return c.read(t, p)
}

// Write streams bytes out; see conn.write.
func (sk *Socket) Write(t *sched.Task, p []byte) (int, error) {
	sk.mu.Lock()
	c := sk.c
	sk.mu.Unlock()
	if c == nil {
		return 0, ErrNotConn
	}
	return c.write(t, p)
}

// Close releases whatever the socket became: connection (FIN + reap when
// the wire winds down), listener (backlog reset), or bare port
// reservation. Called once by the OpenFile layer when the last
// descriptor drops.
func (sk *Socket) Close(t *sched.Task) error {
	sk.mu.Lock()
	if sk.closed {
		sk.mu.Unlock()
		return nil
	}
	sk.closed = true
	c, l := sk.c, sk.l
	bound, port := sk.bound, sk.boundPort
	sk.bound = false
	sk.mu.Unlock()
	if c != nil {
		c.close(t)
	}
	if l != nil {
		l.close()
	}
	if bound {
		sk.stack.releasePort(port)
	}
	return nil
}

// Stat identifies the socket; Size is the unread byte count, mirroring
// pipes.
func (sk *Socket) Stat(t *sched.Task) (fs.Stat, error) {
	sk.mu.Lock()
	c, l := sk.c, sk.l
	sk.mu.Unlock()
	st := fs.Stat{Name: "socket", Type: fs.TypeSocket}
	switch {
	case c != nil:
		c.mu.Lock()
		st.Name = fmt.Sprintf("socket:%s->%s", c.local, c.remote)
		st.Size = int64(c.rcvWr - c.rcvRead)
		c.mu.Unlock()
	case l != nil:
		st.Name = fmt.Sprintf("socket:listen:%d", l.port)
	}
	return st, nil
}
