package net

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"testing"
	"time"

	"protosim/internal/hw"
	"protosim/internal/kernel/fs"
)

// twoStacks wires two stacks over a simulated NIC link. All test IO runs
// host-side (t == nil), so blocking paths spin-yield instead of sleeping
// on a scheduler.
func twoStacks(t *testing.T, cfg hw.LinkConfig, opts Options) (*Stack, *Stack) {
	t.Helper()
	nicA, nicB := hw.NewLink("netA", "netB", nil, nil, cfg)
	a := NewStack("A", 1, nicA, opts)
	b := NewStack("B", 2, nicB, opts)
	nicA.SetNotify(a.IRQ)
	nicB.SetNotify(b.IRQ)
	t.Cleanup(func() {
		a.Close()
		b.Close()
		nicA.Close()
		nicB.Close()
	})
	return a, b
}

// dial sets up a listener on srv port and a connected client socket.
func dial(t *testing.T, client, server *Stack, port uint16) (*Socket, *Socket) {
	t.Helper()
	ls := server.NewSocket()
	if err := ls.Bind(nil, port); err != nil {
		t.Fatalf("bind: %v", err)
	}
	if err := ls.Listen(nil, 8); err != nil {
		t.Fatalf("listen: %v", err)
	}
	t.Cleanup(func() { ls.Close(nil) })

	cs := client.NewSocket()
	if err := cs.Connect(nil, Addr{Host: server.Host(), Port: port}); err != nil {
		t.Fatalf("connect: %v", err)
	}
	ss, err := ls.Accept(nil)
	if err != nil {
		t.Fatalf("accept: %v", err)
	}
	return cs, ss
}

func readFull(t *testing.T, sk *Socket, n int) []byte {
	t.Helper()
	buf := make([]byte, n)
	got := 0
	for got < n {
		m, err := sk.Read(nil, buf[got:])
		if err != nil {
			t.Fatalf("read after %d/%d bytes: %v", got, n, err)
		}
		if m == 0 {
			t.Fatalf("unexpected EOF after %d/%d bytes", got, n)
		}
		got += m
	}
	return buf
}

// realAfter adapts time.AfterFunc to the Options.After seam.
func realAfter(d time.Duration, fn func()) func() bool {
	return time.AfterFunc(d, fn).Stop
}

func pattern(n int, seed int64) []byte {
	rng := rand.New(rand.NewSource(seed))
	b := make([]byte, n)
	rng.Read(b)
	return b
}

func TestConnectEchoTeardown(t *testing.T) {
	a, b := twoStacks(t, hw.LinkConfig{}, Options{})
	cs, ss := dial(t, a, b, 80)

	msg := []byte("hello over the wire")
	if n, err := cs.Write(nil, msg); err != nil || n != len(msg) {
		t.Fatalf("write: n=%d err=%v", n, err)
	}
	if got := readFull(t, ss, len(msg)); !bytes.Equal(got, msg) {
		t.Fatalf("server got %q want %q", got, msg)
	}
	// Echo back.
	if _, err := ss.Write(nil, msg); err != nil {
		t.Fatalf("echo write: %v", err)
	}
	if got := readFull(t, cs, len(msg)); !bytes.Equal(got, msg) {
		t.Fatalf("client got %q want %q", got, msg)
	}

	// Orderly close both sides: reader sees EOF, conn table drains.
	cs.Close(nil)
	if n, err := ss.Read(nil, make([]byte, 8)); n != 0 || err != nil {
		t.Fatalf("read after peer close: n=%d err=%v, want EOF", n, err)
	}
	ss.Close(nil)
	waitFor(t, "conn tables empty", func() bool {
		a.mu.Lock()
		na := len(a.conns)
		a.mu.Unlock()
		b.mu.Lock()
		nb := len(b.conns)
		b.mu.Unlock()
		return na == 0 && nb == 0
	})
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

func TestLargeTransferBothDirections(t *testing.T) {
	a, b := twoStacks(t, hw.LinkConfig{}, Options{})
	cs, ss := dial(t, a, b, 80)
	defer cs.Close(nil)
	defer ss.Close(nil)

	// Well past the window and the rings, both ways at once.
	const total = 512 * 1024
	up := pattern(total, 1)
	down := pattern(total, 2)

	var wg sync.WaitGroup
	var gotUp, gotDown []byte
	wg.Add(2)
	go func() {
		defer wg.Done()
		if _, err := cs.Write(nil, up); err != nil {
			t.Errorf("client write: %v", err)
		}
	}()
	go func() {
		defer wg.Done()
		if _, err := ss.Write(nil, down); err != nil {
			t.Errorf("server write: %v", err)
		}
	}()
	gotUp = readFull(t, ss, total)
	gotDown = readFull(t, cs, total)
	wg.Wait()

	if !bytes.Equal(gotUp, up) {
		t.Fatal("upstream corrupted")
	}
	if !bytes.Equal(gotDown, down) {
		t.Fatal("downstream corrupted")
	}
}

func TestLoopbackStack(t *testing.T) {
	s := NewStack("lo", 7, nil, Options{})
	defer s.Close()
	cs, ss := dial(t, s, s, 9000)
	defer ss.Close(nil)

	data := pattern(200*1024, 3)
	done := make(chan struct{})
	go func() {
		defer close(done)
		if _, err := cs.Write(nil, data); err != nil {
			t.Errorf("write: %v", err)
		}
		cs.Close(nil)
	}()
	got := readFull(t, ss, len(data))
	if !bytes.Equal(got, data) {
		t.Fatal("loopback corrupted")
	}
	if n, err := ss.Read(nil, make([]byte, 1)); n != 0 || err != nil {
		t.Fatalf("want EOF after close, got n=%d err=%v", n, err)
	}
	<-done
}

func TestConnectRefusedNoListener(t *testing.T) {
	a, b := twoStacks(t, hw.LinkConfig{}, Options{})
	_ = b
	cs := a.NewSocket()
	err := cs.Connect(nil, Addr{Host: 2, Port: 4444})
	if !errors.Is(err, ErrConnRefused) {
		t.Fatalf("connect to dead port: %v, want ErrConnRefused", err)
	}
	cs.Close(nil)
}

func TestShutdownWRDeliversEOFThenErrPipe(t *testing.T) {
	a, b := twoStacks(t, hw.LinkConfig{}, Options{})
	cs, ss := dial(t, a, b, 80)
	defer cs.Close(nil)
	defer ss.Close(nil)

	msg := []byte("last words")
	if _, err := cs.Write(nil, msg); err != nil {
		t.Fatalf("write: %v", err)
	}
	if err := cs.Shutdown(nil, ShutWR); err != nil {
		t.Fatalf("shutdown(WR): %v", err)
	}
	// Peer drains the buffered bytes, then a clean EOF.
	if got := readFull(t, ss, len(msg)); !bytes.Equal(got, msg) {
		t.Fatalf("got %q want %q", got, msg)
	}
	if n, err := ss.Read(nil, make([]byte, 8)); n != 0 || err != nil {
		t.Fatalf("after FIN: n=%d err=%v, want EOF", n, err)
	}
	// Local writes now fail with the pipe error.
	if _, err := cs.Write(nil, []byte("x")); !errors.Is(err, fs.ErrPipeClosed) {
		t.Fatalf("write after shutdown(WR): %v, want ErrPipeClosed", err)
	}
	// The other direction still flows.
	if _, err := ss.Write(nil, []byte("reply")); err != nil {
		t.Fatalf("server write after client FIN: %v", err)
	}
	if got := readFull(t, cs, 5); string(got) != "reply" {
		t.Fatalf("half-open read: %q", got)
	}
}

func TestShutdownRDGivesLocalEOF(t *testing.T) {
	s := NewStack("lo", 7, nil, Options{})
	defer s.Close()
	cs, ss := dial(t, s, s, 9000)
	defer cs.Close(nil)
	defer ss.Close(nil)

	if err := cs.Shutdown(nil, ShutRD); err != nil {
		t.Fatalf("shutdown(RD): %v", err)
	}
	if n, err := cs.Read(nil, make([]byte, 8)); n != 0 || err != nil {
		t.Fatalf("read after shutdown(RD): n=%d err=%v, want EOF", n, err)
	}
}

func TestListenerCloseWakesAcceptAndResetsBacklog(t *testing.T) {
	a, b := twoStacks(t, hw.LinkConfig{}, Options{})

	ls := b.NewSocket()
	if err := ls.Bind(nil, 80); err != nil {
		t.Fatal(err)
	}
	if err := ls.Listen(nil, 4); err != nil {
		t.Fatal(err)
	}

	// Park an embryo in the backlog, never accepted.
	cs := a.NewSocket()
	if err := cs.Connect(nil, Addr{Host: 2, Port: 80}); err != nil {
		t.Fatalf("connect: %v", err)
	}

	// A concurrent accept blocks, then the close wakes it.
	acceptErr := make(chan error, 1)
	ls2 := b.NewSocket() // second handle would be via dup in the kernel; here call accept twice on one listener
	_ = ls2
	go func() {
		// Drain the queued embryo first so the next accept really blocks.
		s1, err := ls.Accept(nil)
		if err == nil {
			s1.Close(nil)
			_, err = ls.Accept(nil)
		}
		acceptErr <- err
	}()
	time.Sleep(10 * time.Millisecond)
	ls.Close(nil)
	if err := <-acceptErr; !errors.Is(err, ErrListenerClosed) {
		t.Fatalf("accept after close: %v, want ErrListenerClosed", err)
	}
	// The accepted-then-closed conn tears down; client sees EOF or reset.
	waitFor(t, "client conn torn down", func() bool {
		n, err := cs.Read(nil, make([]byte, 1))
		return n == 0 && (err == nil || errors.Is(err, ErrConnReset))
	})
	cs.Close(nil)
}

func TestBacklogOverflowRefuses(t *testing.T) {
	a, b := twoStacks(t, hw.LinkConfig{}, Options{})
	ls := b.NewSocket()
	if err := ls.Bind(nil, 80); err != nil {
		t.Fatal(err)
	}
	if err := ls.Listen(nil, 1); err != nil {
		t.Fatal(err)
	}
	defer ls.Close(nil)

	// First connect fills the backlog of 1.
	c1 := a.NewSocket()
	if err := c1.Connect(nil, Addr{Host: 2, Port: 80}); err != nil {
		t.Fatalf("first connect: %v", err)
	}
	defer c1.Close(nil)
	// Second gets RST.
	c2 := a.NewSocket()
	if err := c2.Connect(nil, Addr{Host: 2, Port: 80}); !errors.Is(err, ErrConnRefused) {
		t.Fatalf("overflow connect: %v, want ErrConnRefused", err)
	}
	c2.Close(nil)
}

func TestPortAccounting(t *testing.T) {
	s := NewStack("lo", 7, nil, Options{})
	defer s.Close()

	s1 := s.NewSocket()
	if err := s1.Bind(nil, 80); err != nil {
		t.Fatal(err)
	}
	s2 := s.NewSocket()
	if err := s2.Bind(nil, 80); !errors.Is(err, ErrAddrInUse) {
		t.Fatalf("double bind: %v, want ErrAddrInUse", err)
	}
	s1.Close(nil)
	// Port released: bind works again.
	if err := s2.Bind(nil, 80); err != nil {
		t.Fatalf("rebind after close: %v", err)
	}
	s2.Close(nil)

	// Ephemeral binds pick distinct ports.
	e1, e2 := s.NewSocket(), s.NewSocket()
	if err := e1.Bind(nil, 0); err != nil {
		t.Fatal(err)
	}
	if err := e2.Bind(nil, 0); err != nil {
		t.Fatal(err)
	}
	if e1.LocalPort() == e2.LocalPort() || e1.LocalPort() < ephemeralBase {
		t.Fatalf("ephemeral ports %d, %d", e1.LocalPort(), e2.LocalPort())
	}
	e1.Close(nil)
	e2.Close(nil)
}

func TestSocketStateErrors(t *testing.T) {
	s := NewStack("lo", 7, nil, Options{})
	defer s.Close()

	sk := s.NewSocket()
	if _, err := sk.Read(nil, make([]byte, 1)); !errors.Is(err, ErrNotConn) {
		t.Fatalf("read unconnected: %v", err)
	}
	if _, err := sk.Write(nil, []byte("x")); !errors.Is(err, ErrNotConn) {
		t.Fatalf("write unconnected: %v", err)
	}
	if _, err := sk.Accept(nil); !errors.Is(err, ErrNotListening) {
		t.Fatalf("accept unlistening: %v", err)
	}
	if err := sk.Listen(nil, 4); !errors.Is(err, ErrNotConn) {
		t.Fatalf("listen unbound: %v", err)
	}
	if err := sk.Shutdown(nil, ShutWR); !errors.Is(err, ErrNotConn) {
		t.Fatalf("shutdown unconnected: %v", err)
	}
	sk.Close(nil)
	if err := sk.Bind(nil, 99); !errors.Is(err, fs.ErrBadFD) {
		t.Fatalf("bind after close: %v", err)
	}
}

func TestFlowControlZeroWindowRecovers(t *testing.T) {
	a, b := twoStacks(t, hw.LinkConfig{}, Options{})
	cs, ss := dial(t, a, b, 80)
	defer cs.Close(nil)
	defer ss.Close(nil)

	// Fill the receiver's ring and then some: the writer must block on
	// the closed window, not lose data.
	data := pattern(3*RingSize, 4)
	done := make(chan struct{})
	go func() {
		defer close(done)
		if _, err := cs.Write(nil, data); err != nil {
			t.Errorf("write: %v", err)
		}
	}()

	// Let the window actually close before draining.
	waitFor(t, "receive ring full", func() bool {
		ss.mu.Lock()
		c := ss.c
		ss.mu.Unlock()
		c.mu.Lock()
		full := c.rcvWr-c.rcvRead == RingSize
		c.mu.Unlock()
		return full
	})

	got := readFull(t, ss, len(data))
	if !bytes.Equal(got, data) {
		t.Fatal("data corrupted across zero-window stall")
	}
	<-done
}

func TestFaultPlanConverges(t *testing.T) {
	// A hostile link: drops, dups, reorders, latency spikes — and the
	// go-back-N machinery behind the After seam must still deliver every
	// byte in order, both directions.
	opts := Options{After: realAfter, RTO: 5 * time.Millisecond}
	a, b := twoStacks(t, hw.LinkConfig{}, opts)
	plan := hw.NetFaultPlan{
		Seed:          42,
		PDrop:         0.05,
		PDup:          0.05,
		PReorder:      0.05,
		ReorderWindow: 3,
		PLatency:      0.02,
	}
	a.nic.SetFaults(plan)
	b.nic.SetFaults(hw.NetFaultPlan{Seed: 43, PDrop: 0.05, PDup: 0.03, PReorder: 0.04})

	cs, ss := dial(t, a, b, 80)
	defer cs.Close(nil)
	defer ss.Close(nil)

	const total = 256 * 1024
	up := pattern(total, 5)
	down := pattern(total, 6)
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		if _, err := cs.Write(nil, up); err != nil {
			t.Errorf("client write: %v", err)
		}
	}()
	go func() {
		defer wg.Done()
		if _, err := ss.Write(nil, down); err != nil {
			t.Errorf("server write: %v", err)
		}
	}()
	gotUp := readFull(t, ss, total)
	gotDown := readFull(t, cs, total)
	wg.Wait()

	if !bytes.Equal(gotUp, up) || !bytes.Equal(gotDown, down) {
		t.Fatal("stream corrupted under faults")
	}
	// The plan really did bite, and recovery really did run.
	fsA := a.nic.FaultStats()
	if fsA.Drops == 0 {
		t.Fatalf("fault plan injected nothing: %+v", fsA)
	}
	if a.Stats().Retrans == 0 && b.Stats().Retrans == 0 {
		t.Fatal("no retransmissions under a lossy plan")
	}
}

func TestProcTextShowsConnections(t *testing.T) {
	a, b := twoStacks(t, hw.LinkConfig{}, Options{})
	cs, ss := dial(t, a, b, 80)
	defer cs.Close(nil)
	defer ss.Close(nil)

	if _, err := cs.Write(nil, []byte("abcdef")); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "server buffered data", func() bool {
		st, _ := ss.Stat(nil)
		return st.Size == 6
	})

	txt := b.ProcText()
	for _, want := range []string{"stack B host 2", "LISTEN 2:80", "ESTABLISHED", "rcvq 6"} {
		if !strings.Contains(txt, want) {
			t.Fatalf("ProcText missing %q:\n%s", want, txt)
		}
	}
	txtA := a.ProcText()
	if !strings.Contains(txtA, "ESTABLISHED") {
		t.Fatalf("client ProcText missing conn:\n%s", txtA)
	}
	// Socket stat names the endpoints.
	st, _ := cs.Stat(nil)
	if !strings.Contains(st.Name, "->2:80") || st.Type != fs.TypeSocket {
		t.Fatalf("stat: %+v", st)
	}
}

func TestSegCodecRoundTrip(t *testing.T) {
	g := seg{
		flags:   flagSYN | flagACK | flagFIN,
		src:     Addr{Host: 1, Port: 2},
		dst:     Addr{Host: 65535, Port: 32768},
		seq:     1 << 40,
		ack:     (1 << 41) + 7,
		wnd:     123456,
		payload: []byte("payload bytes"),
	}
	buf := make([]byte, hw.NICMTU)
	n := g.marshal(buf)
	got, ok := parseSeg(buf[:n])
	if !ok {
		t.Fatal("parse failed")
	}
	if got.flags != g.flags || got.src != g.src || got.dst != g.dst ||
		got.seq != g.seq || got.ack != g.ack || got.wnd != g.wnd ||
		!bytes.Equal(got.payload, g.payload) {
		t.Fatalf("round trip mismatch: %+v vs %+v", got, g)
	}
	if fs := flagString(g.flags); fs != "SAF" {
		t.Fatalf("flagString: %q", fs)
	}

	// Garbage and truncation are rejected, not mis-parsed.
	if _, ok := parseSeg(buf[:HdrSize-1]); ok {
		t.Fatal("short frame parsed")
	}
	buf[0] = 99
	if _, ok := parseSeg(buf[:n]); ok {
		t.Fatal("bad version parsed")
	}
}

func TestManyConcurrentConnsOneStackPair(t *testing.T) {
	a, b := twoStacks(t, hw.LinkConfig{}, Options{})
	ls := b.NewSocket()
	if err := ls.Bind(nil, 80); err != nil {
		t.Fatal(err)
	}
	if err := ls.Listen(nil, 64); err != nil {
		t.Fatal(err)
	}
	defer ls.Close(nil)

	const clients = 32
	const msgSize = 4096

	var wg sync.WaitGroup
	// Server: accept and echo until EOF.
	wg.Add(1)
	go func() {
		defer wg.Done()
		var swg sync.WaitGroup
		for i := 0; i < clients; i++ {
			s, err := ls.Accept(nil)
			if err != nil {
				t.Errorf("accept %d: %v", i, err)
				return
			}
			swg.Add(1)
			go func(s *Socket) {
				defer swg.Done()
				defer s.Close(nil)
				buf := make([]byte, 1024)
				for {
					n, err := s.Read(nil, buf)
					if n == 0 || err != nil {
						return
					}
					if _, err := s.Write(nil, buf[:n]); err != nil {
						return
					}
				}
			}(s)
		}
		swg.Wait()
	}()

	var cwg sync.WaitGroup
	for i := 0; i < clients; i++ {
		cwg.Add(1)
		go func(i int) {
			defer cwg.Done()
			cs := a.NewSocket()
			if err := cs.Connect(nil, Addr{Host: 2, Port: 80}); err != nil {
				t.Errorf("client %d connect: %v", i, err)
				return
			}
			defer cs.Close(nil)
			out := pattern(msgSize, int64(100+i))
			go cs.Write(nil, out)
			got := make([]byte, msgSize)
			n := 0
			for n < msgSize {
				m, err := cs.Read(nil, got[n:])
				if err != nil || m == 0 {
					t.Errorf("client %d read: n=%d err=%v", i, m, err)
					return
				}
				n += m
			}
			if !bytes.Equal(got, out) {
				t.Errorf("client %d echo mismatch", i)
			}
		}(i)
	}
	cwg.Wait()
	wg.Wait()
}

func TestStackStatsAndRSTPath(t *testing.T) {
	a, b := twoStacks(t, hw.LinkConfig{}, Options{})
	cs, ss := dial(t, a, b, 80)
	cs.Write(nil, []byte("x"))
	readFull(t, ss, 1)
	if st := a.Stats(); st.SegsOut == 0 || st.SegsIn == 0 {
		t.Fatalf("client stats flat: %+v", st)
	}
	if st := b.Stats(); st.Accepted != 1 {
		t.Fatalf("accepted = %d, want 1", st.Accepted)
	}
	cs.Close(nil)
	ss.Close(nil)

	// A stray data segment at a port with nothing behind it draws a RST.
	before := b.Stats().RstsOut
	a.emit(nil, seg{flags: flagACK, src: Addr{1, 999}, dst: Addr{2, 888}, seq: 1, ack: 1})
	waitFor(t, "RST emitted", func() bool { return b.Stats().RstsOut > before })
}

func ExampleAddr_String() {
	fmt.Println(Addr{Host: 3, Port: 8080})
	// Output: 3:8080
}
