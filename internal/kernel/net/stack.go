package net

import (
	"errors"
	"fmt"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"protosim/internal/hw"
	"protosim/internal/kernel/bufpool"
	"protosim/internal/kernel/sched"
)

// Transport errors.
var (
	// ErrConnRefused: the peer answered the SYN with a RST (no listener,
	// or its backlog was full).
	ErrConnRefused = errors.New("net: connection refused")
	// ErrConnReset: the peer reset an established connection.
	ErrConnReset = errors.New("net: connection reset by peer")
	// ErrAddrInUse: the requested port already has a listener or
	// connection on it.
	ErrAddrInUse = errors.New("net: address already in use")
	// ErrNotConn: stream IO on a socket with no connection.
	ErrNotConn = errors.New("net: socket is not connected")
	// ErrIsConn: connect/bind/listen on a socket already past that state.
	ErrIsConn = errors.New("net: socket is already connected")
	// ErrNotListening: accept on a socket that isn't a listener.
	ErrNotListening = errors.New("net: socket is not listening")
	// ErrListenerClosed: accept woke because the listener was closed.
	ErrListenerClosed = errors.New("net: listener closed")
	// ErrNoPorts: the ephemeral port range is exhausted.
	ErrNoPorts = errors.New("net: no free ephemeral ports")
)

// ephemeralBase is the first auto-assigned local port for connect.
const ephemeralBase = 32768

// defaultRTO is the retransmit timeout when Options wires the After seam
// without choosing one. Link latencies in tests are sub-millisecond, so
// 20ms is lazy enough to stay quiet on a clean link and fast enough to
// converge under heavy fault plans.
const defaultRTO = 20 * time.Millisecond

// Options configures a Stack.
type Options struct {
	// After is the retransmit-timer seam: schedule fn after d and return
	// a cancel function. nil disables retransmission entirely — correct
	// on a loss-free link, and what most unit tests want (no timers, no
	// nondeterminism). Production wiring passes time.AfterFunc; tests may
	// pass a virtual clock.
	After func(d time.Duration, fn func()) func() bool
	// RTO overrides the retransmit timeout (default 20ms).
	RTO time.Duration
}

// StackStats is a snapshot of stack-wide counters.
type StackStats struct {
	SegsIn   uint64 // segments accepted from the wire (including loopback)
	SegsOut  uint64 // segments emitted
	BadSegs  uint64 // frames that failed to parse or were misaddressed
	RstsOut  uint64 // RSTs emitted at segments with no home
	Retrans  uint64 // go-back-N replays (data and SYN)
	Accepted uint64 // connections minted by listeners
}

// Stack is one host's transport state: the connection and listener
// tables, the NIC (optional — a nil NIC makes a loopback-only stack),
// and the softirq goroutine that turns NIC interrupts into protocol
// work.
type Stack struct {
	name string
	host uint16
	nic  *hw.NIC

	after func(time.Duration, func()) func() bool
	rto   time.Duration

	framePool *bufpool.Pool // hw.NICMTU frames, shared across stacks
	ringPool  *bufpool.Pool // RingSize conn rings, shared with nobody else's size class

	mu        sync.Mutex
	conns     map[connKey]*conn
	listeners map[uint16]*listener
	portUse   map[uint16]int // refs per local port: one per listener + one per conn
	nextEphem uint16
	closed    bool

	txWait sched.WaitQueue // tasks blocked on a full NIC TX ring
	tag    atomic.Uint64   // NIC submission tags (debug identity only)

	kick chan struct{}
	stop chan struct{}

	// loopq is the loopback path: segments a stack sends to itself. A
	// single non-reentrant drainer keeps delivery FIFO and bounds stack
	// depth (send → input → send → ... would otherwise recurse).
	loopMu  sync.Mutex
	loopq   [][]byte
	looping bool

	segsIn   atomic.Uint64
	segsOut  atomic.Uint64
	badSegs  atomic.Uint64
	rstsOut  atomic.Uint64
	retrans  atomic.Uint64
	accepted atomic.Uint64
}

// NewStack builds a stack for host addr `host` over nic (nil for
// loopback-only). The caller wires delivery: either register IRQNIC with
// the IRQ controller routing to s.IRQ, or nic.SetNotify(s.IRQ).
func NewStack(name string, host uint16, nic *hw.NIC, opts Options) *Stack {
	rto := opts.RTO
	if rto <= 0 {
		rto = defaultRTO
	}
	s := &Stack{
		name:      name,
		host:      host,
		nic:       nic,
		after:     opts.After,
		rto:       rto,
		framePool: bufpool.Shared(hw.NICMTU),
		ringPool:  bufpool.Shared(RingSize),
		conns:     make(map[connKey]*conn),
		listeners: make(map[uint16]*listener),
		portUse:   make(map[uint16]int),
		nextEphem: ephemeralBase,
		kick:      make(chan struct{}, 1),
		stop:      make(chan struct{}),
	}
	if nic != nil {
		go s.softirq()
	}
	return s
}

// Host returns the stack's host address.
func (s *Stack) Host() uint16 { return s.host }

// Stats snapshots the stack-wide counters.
func (s *Stack) Stats() StackStats {
	return StackStats{
		SegsIn:   s.segsIn.Load(),
		SegsOut:  s.segsOut.Load(),
		BadSegs:  s.badSegs.Load(),
		RstsOut:  s.rstsOut.Load(),
		Retrans:  s.retrans.Load(),
		Accepted: s.accepted.Load(),
	}
}

// IRQ is the interrupt hook: register it as the IRQNIC handler (or the
// NIC notify fn). It only kicks the softirq goroutine — never blocks,
// never does protocol work, safe from any goroutine.
func (s *Stack) IRQ() {
	select {
	case s.kick <- struct{}{}:
	default:
	}
}

// Close stops the softirq goroutine and aborts every conn and listener.
// The NIC itself belongs to the machine and is closed separately.
func (s *Stack) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	conns := make([]*conn, 0, len(s.conns))
	for _, c := range s.conns {
		conns = append(conns, c)
	}
	ls := make([]*listener, 0, len(s.listeners))
	for _, l := range s.listeners {
		ls = append(ls, l)
	}
	s.mu.Unlock()
	for _, l := range ls {
		l.close()
	}
	for _, c := range conns {
		c.abort()
	}
	close(s.stop)
}

// softirq is the NAPI-style bottom half: woken by IRQ(), it drains TX
// completions (freeing writers blocked on a full ring) and then runs
// every received frame through the protocol. All protocol work happens
// here or on syscall tasks — never on the device goroutines.
func (s *Stack) softirq() {
	for {
		select {
		case <-s.kick:
		case <-s.stop:
			return
		}
		s.drainNIC()
	}
}

func (s *Stack) drainNIC() {
	if _, _, ok := s.nic.PopTX(); ok {
		for {
			if _, _, ok := s.nic.PopTX(); !ok {
				break
			}
		}
		s.txWait.WakeAll()
	}
	for {
		frame, ok := s.nic.PopRX()
		if !ok {
			return
		}
		s.input(frame)
	}
}

// send transmits one marshalled frame: loopback when the destination is
// this host (or the stack has no NIC), otherwise the NIC TX ring,
// sleeping on txWait when the ring is full. Tasks sleep; the softirq and
// timer goroutines (t == nil) spin-yield, which the TX-completion design
// keeps finite: the NIC frees ring slots at serialization time, not at
// completion-drain time.
func (s *Stack) send(t *sched.Task, frame []byte, dstHost uint16) {
	s.segsOut.Add(1)
	if s.nic == nil || dstHost == s.host {
		s.loopback(frame)
		return
	}
	for {
		err := s.nic.SubmitTX(s.tag.Add(1), frame)
		switch {
		case err == nil:
			return
		case errors.Is(err, hw.ErrNICTxRingFull):
			if t != nil {
				if t.Killed() {
					// A killed task must not park uninterruptibly here;
					// drop the frame — retransmission (or the peer's RST
					// handling) owns recovery.
					return
				}
				s.txWait.Sleep(t)
			} else {
				runtime.Gosched()
			}
		default:
			// NIC down: drop. Conns wind down via resets/timeouts.
			return
		}
	}
}

// emit marshals a control segment into a pooled frame and sends it.
func (s *Stack) emit(t *sched.Task, g seg) {
	frame := s.framePool.Get()
	frame = frame[:g.marshal(frame)]
	s.send(t, frame, g.dst.Host)
}

// loopback queues a frame to ourselves and drains the queue unless
// another goroutine already is. The single-drainer discipline keeps
// loopback FIFO and prevents input→send→input recursion from nesting
// conn locks across connections.
func (s *Stack) loopback(frame []byte) {
	s.loopMu.Lock()
	s.loopq = append(s.loopq, frame)
	if s.looping {
		s.loopMu.Unlock()
		return
	}
	s.looping = true
	for len(s.loopq) > 0 {
		f := s.loopq[0]
		s.loopq = s.loopq[1:]
		s.loopMu.Unlock()
		s.input(f)
		s.loopMu.Lock()
	}
	s.looping = false
	s.loopMu.Unlock()
}

// input dispatches one received frame: an existing conn, a listener
// (SYN), or a RST back at the sender. The frame is recycled afterwards —
// handleSeg copies payload bytes into the receive ring, so nothing
// aliases the frame once dispatch returns.
func (s *Stack) input(frame []byte) {
	g, ok := parseSeg(frame)
	if !ok || g.dst.Host != s.host {
		s.badSegs.Add(1)
		s.recycle(frame)
		return
	}
	s.segsIn.Add(1)
	key := connKey{localPort: g.dst.Port, remoteHost: g.src.Host, remotePort: g.src.Port}
	s.mu.Lock()
	c := s.conns[key]
	var l *listener
	if c == nil {
		l = s.listeners[g.dst.Port]
	}
	s.mu.Unlock()
	switch {
	case c != nil:
		c.deliver(g)
	case l != nil && g.flags&flagSYN != 0 && g.flags&flagACK == 0:
		s.handleSYN(l, g)
	case g.flags&flagRST != 0:
		// A RST aimed at nothing: drop silently (never RST a RST).
	default:
		s.emitRST(g)
	}
	s.recycle(frame)
}

// recycle returns a frame to the shared pool if it is pool-shaped. The
// fault layer's duplicated frames are exact-length copies and fall
// through — only true pool buffers (cap == hw.NICMTU) go back.
func (s *Stack) recycle(frame []byte) {
	if cap(frame) == hw.NICMTU {
		s.framePool.Put(frame[:hw.NICMTU])
	}
}

// emitRST answers a segment that reached no conn and no listener.
func (s *Stack) emitRST(g seg) {
	s.rstsOut.Add(1)
	s.emit(nil, seg{
		flags: flagRST,
		src:   g.dst,
		dst:   g.src,
		seq:   g.ack,
		ack:   g.seq + uint64(len(g.payload)),
	})
}

// handleSYN mints an embryo conn for a listener. The conn enters the
// table before the backlog check so a duplicate SYN arriving on another
// goroutine finds it rather than minting a twin.
func (s *Stack) handleSYN(l *listener, g seg) {
	local := Addr{Host: s.host, Port: g.dst.Port}
	c := newConn(s, local, g.src, true)
	c.mu.Lock()
	c.sndLimit = 1 + uint64(g.wnd) // SYN carries the client's opening window
	c.mu.Unlock()

	s.mu.Lock()
	if exist := s.conns[c.key()]; exist != nil {
		s.mu.Unlock()
		s.releaseRings(c)
		exist.deliver(g) // duplicate SYN: the existing conn re-SYN|ACKs
		return
	}
	s.conns[c.key()] = c
	s.portUse[c.local.Port]++
	s.mu.Unlock()

	if !l.enqueue(c) {
		s.removeEmbryo(c)
		s.emitRST(g)
		return
	}
	s.accepted.Add(1)
	c.mu.Lock()
	sa := c.synAckSegLocked()
	c.mu.Unlock()
	s.emit(nil, sa)
}

// removeEmbryo evicts a conn that never reached a backlog (closed or
// full listener): mark it dead and pull it from the table.
func (s *Stack) removeEmbryo(c *conn) {
	c.mu.Lock()
	c.resetErr = ErrConnReset
	c.ofdClosed = true
	c.mu.Unlock()
	s.removeConn(c)
}

// removeConn reaps a conn whose teardown is complete: returns its rings
// to the pool and drops it from the table. Safe to call repeatedly; only
// the first effective call does work. Lock order: conn.mu fully released
// before stack.mu.
func (s *Stack) removeConn(c *conn) {
	c.mu.Lock()
	if !c.reapableLocked() {
		c.mu.Unlock()
		return
	}
	c.reaped = true
	c.cancelRTOLocked()
	c.mu.Unlock()
	s.releaseRings(c)

	s.mu.Lock()
	if s.conns[c.key()] == c {
		delete(s.conns, c.key())
		s.releasePortLocked(c.local.Port)
	}
	s.mu.Unlock()
}

func (s *Stack) releaseRings(c *conn) {
	c.mu.Lock()
	snd, rcv := c.sndBuf, c.rcvBuf
	c.sndBuf, c.rcvBuf = nil, nil
	c.mu.Unlock()
	if snd != nil {
		s.ringPool.Put(snd)
	}
	if rcv != nil {
		s.ringPool.Put(rcv)
	}
}

func (s *Stack) releasePortLocked(port uint16) {
	if n := s.portUse[port]; n <= 1 {
		delete(s.portUse, port)
	} else {
		s.portUse[port] = n - 1
	}
}

// --- binding, listening, connecting ---

// reservePort claims an explicit local port (bind). Port 0 is "any".
func (s *Stack) reservePort(port uint16) (uint16, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if port == 0 {
		return s.allocEphemeralLocked()
	}
	if s.portUse[port] > 0 {
		return 0, ErrAddrInUse
	}
	s.portUse[port] = 1
	return port, nil
}

func (s *Stack) allocEphemeralLocked() (uint16, error) {
	for i := 0; i < 1<<15; i++ {
		p := s.nextEphem
		s.nextEphem++
		if s.nextEphem == 0 {
			s.nextEphem = ephemeralBase
		}
		if p >= ephemeralBase && s.portUse[p] == 0 {
			s.portUse[p] = 1
			return p, nil
		}
	}
	return 0, ErrNoPorts
}

// releasePort drops one reference on a local port (close of a bound but
// never-listening socket, or a failed connect cleanup).
func (s *Stack) releasePort(port uint16) {
	s.mu.Lock()
	s.releasePortLocked(port)
	s.mu.Unlock()
}

// listen installs a listener on an already-reserved port.
func (s *Stack) listen(port uint16, backlog int) (*listener, error) {
	if backlog < 1 {
		backlog = 1
	}
	l := &listener{stack: s, port: port, backlog: backlog}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.listeners[port] != nil {
		return nil, ErrAddrInUse
	}
	s.listeners[port] = l
	return l, nil
}

// connect dials remote from an already-reserved local port, blocking
// until the handshake completes or is refused. The conn is inserted in
// the table before the SYN leaves so the SYN|ACK finds it.
func (s *Stack) connect(t *sched.Task, localPort uint16, remote Addr) (*conn, error) {
	local := Addr{Host: s.host, Port: localPort}
	c := newConn(s, local, remote, false)
	c.synSent = true

	s.mu.Lock()
	if s.conns[c.key()] != nil {
		s.mu.Unlock()
		s.releaseRings(c)
		return nil, ErrAddrInUse
	}
	s.conns[c.key()] = c
	s.portUse[localPort]++ // the conn's own ref, alongside the bind ref the socket holds
	s.mu.Unlock()

	c.mu.Lock()
	g := c.synSegLocked()
	c.armRTOLocked()
	c.mu.Unlock()
	s.emit(t, g)

	for {
		if t != nil && t.Killed() {
			t.CheckPreempt() // unwinds
		}
		c.mu.Lock()
		if c.resetErr != nil {
			err := c.resetErr
			c.ofdClosed = true // make the dead conn reapable, then evict it
			c.mu.Unlock()
			s.removeConn(c)
			return nil, err
		}
		if !c.synSent {
			c.mu.Unlock()
			return c, nil
		}
		c.mu.Unlock()
		if t == nil {
			runtime.Gosched()
			continue
		}
		c.cwq.SleepUnless(t, func() bool {
			if t.Killed() {
				return true
			}
			c.mu.Lock()
			d := !c.synSent || c.resetErr != nil
			c.mu.Unlock()
			return d
		})
	}
}

// --- listener ---

// listener is one passive port: a bounded backlog of handshake-complete
// conns awaiting accept.
type listener struct {
	stack   *Stack
	port    uint16
	backlog int

	mu     sync.Mutex
	q      []*conn
	closed bool
	wq     sched.WaitQueue
}

// enqueue adds an embryo to the backlog; false when closed or full.
func (l *listener) enqueue(c *conn) bool {
	l.mu.Lock()
	if l.closed || len(l.q) >= l.backlog {
		l.mu.Unlock()
		return false
	}
	l.q = append(l.q, c)
	l.mu.Unlock()
	l.wq.WakeAll()
	return true
}

// accept blocks for the next handshake-complete conn.
func (l *listener) accept(t *sched.Task) (*conn, error) {
	for {
		if t != nil && t.Killed() {
			t.CheckPreempt() // unwinds
		}
		l.mu.Lock()
		if len(l.q) > 0 {
			c := l.q[0]
			l.q = l.q[1:]
			l.mu.Unlock()
			return c, nil
		}
		if l.closed {
			l.mu.Unlock()
			return nil, ErrListenerClosed
		}
		l.mu.Unlock()
		if t == nil {
			runtime.Gosched()
			continue
		}
		l.wq.SleepUnless(t, func() bool {
			if t.Killed() {
				return true
			}
			l.mu.Lock()
			d := len(l.q) > 0 || l.closed
			l.mu.Unlock()
			return d
		})
	}
}

// close shuts the listener: pending accepts fail, queued embryos are
// reset (their peers see ErrConnReset), and the port reference drops.
func (l *listener) close() {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return
	}
	l.closed = true
	q := l.q
	l.q = nil
	l.mu.Unlock()
	l.wq.WakeAll()
	for _, c := range q {
		c.abort()
	}
	s := l.stack
	s.mu.Lock()
	if s.listeners[l.port] == l {
		delete(s.listeners, l.port)
		s.releasePortLocked(l.port)
	}
	s.mu.Unlock()
}

// --- /proc/net ---

// ProcText renders the stack for /proc/net: one listener line and one
// conn line each, with states, sequence space, and ring occupancy.
func (s *Stack) ProcText() string {
	var b strings.Builder
	fmt.Fprintf(&b, "stack %s host %d\n", s.name, s.host)
	st := s.Stats()
	fmt.Fprintf(&b, "  segs in %d out %d bad %d rst %d retrans %d accepted %d\n",
		st.SegsIn, st.SegsOut, st.BadSegs, st.RstsOut, st.Retrans, st.Accepted)
	if s.nic != nil {
		ns := s.nic.Stats()
		fmt.Fprintf(&b, "  nic tx %d frames %d bytes, rx %d frames %d bytes, rxdrops %d\n",
			ns.TxFrames, ns.TxBytes, ns.RxFrames, ns.RxBytes, ns.RxDrops)
	}

	s.mu.Lock()
	ls := make([]*listener, 0, len(s.listeners))
	for _, l := range s.listeners {
		ls = append(ls, l)
	}
	cs := make([]*conn, 0, len(s.conns))
	for _, c := range s.conns {
		cs = append(cs, c)
	}
	s.mu.Unlock()

	sort.Slice(ls, func(i, j int) bool { return ls[i].port < ls[j].port })
	for _, l := range ls {
		l.mu.Lock()
		fmt.Fprintf(&b, "  LISTEN %d:%d backlog %d/%d\n", s.host, l.port, len(l.q), l.backlog)
		l.mu.Unlock()
	}

	sort.Slice(cs, func(i, j int) bool {
		a, z := cs[i], cs[j]
		if a.local.Port != z.local.Port {
			return a.local.Port < z.local.Port
		}
		if a.remote.Host != z.remote.Host {
			return a.remote.Host < z.remote.Host
		}
		return a.remote.Port < z.remote.Port
	})
	for _, c := range cs {
		state := c.stateString()
		c.mu.Lock()
		fmt.Fprintf(&b, "  %s %s -> %s snd %d/%d/%d rcv %d/%d sndq %d rcvq %d retrans %d\n",
			state, c.local, c.remote,
			c.sndUna, c.sndNxt, c.sndEnd, c.rcvRead, c.rcvWr,
			c.sndEnd-c.sndUna, c.rcvWr-c.rcvRead, c.retrans)
		c.mu.Unlock()
	}
	return b.String()
}
