package kernel

import (
	"strings"
	"testing"

	"protosim/internal/kernel/fs"
	"protosim/internal/kernel/xv6fs"
)

// TestAsyncIOStackWiredThroughBoot boots a Prototype 5-class kernel and
// checks the whole async IO stack is assembled: request queues front both
// block devices (the SD one IRQ-driven), a kflushd daemon runs per mount,
// syscall writes land write-behind and SyncAll makes them durable, and
// /proc/diskstats reports the queue and writeback statistics.
func TestAsyncIOStackWiredThroughBoot(t *testing.T) {
	m := testMachine(2)
	if err := fat32Mkfs(sdBlockDev{m.SD}); err != nil {
		t.Fatal(err)
	}
	rd, _ := xv6fs.BuildImage(1024, 64, nil)
	cfg := fullConfig(m, rd.Image())
	cfg.EnableFAT = true
	k := New(cfg)
	if err := k.Boot(); err != nil {
		t.Fatal(err)
	}
	defer k.Shutdown()

	// Queues front every device; the caches run write-behind.
	for _, d := range k.BlockDevs() {
		if d.Queue() == nil {
			t.Fatalf("device %s has no request queue", d.Name())
		}
		if c := k.blockCaches[d.Name()]; c == nil || !c.WriteBehind() {
			t.Fatalf("device %s cache is not write-behind", d.Name())
		}
	}

	// One kflushd task per mount.
	daemons := 0
	for _, task := range k.Sched.Tasks() {
		if strings.HasPrefix(task.Name, "kflushd-") {
			daemons++
		}
	}
	if daemons != 2 {
		t.Fatalf("found %d kflushd tasks, want 2 (rd0, sd0)", daemons)
	}

	// Drive writes through the syscall layer on both mounts — fsyncing
	// each file (the per-file barrier, riding the anticipatory plug),
	// then the whole-system sync.
	code := run(t, k, "writer", func(p *Proc, _ []string) int {
		for _, path := range []string{"/a.dat", "/d/b.dat"} {
			fd, err := p.SysOpen(path, fs.OCreate|fs.OWrOnly)
			if err != nil {
				return 1
			}
			payload := make([]byte, 64<<10)
			for i := range payload {
				payload[i] = byte(i * 7)
			}
			if _, err := p.SysWrite(fd, payload); err != nil {
				return 2
			}
			if err := p.SysFsync(fd); err != nil {
				return 5
			}
			if err := p.SysClose(fd); err != nil {
				return 3
			}
		}
		// The whole-system barrier: flushes what fsync's per-file scope
		// left behind (foreign metadata, the other mount's state).
		if err := p.SysSync(); err != nil {
			return 4
		}
		return 0
	})
	if code != 0 {
		t.Fatalf("writer exit = %d", code)
	}
	for _, d := range k.BlockDevs() {
		if c := k.blockCaches[d.Name()]; c.DirtyBuffers() != 0 {
			t.Fatalf("%s: %d dirty buffers after SyncAll", d.Name(), c.DirtyBuffers())
		}
	}

	// diskstats carries the queue, plug, and writeback telemetry.
	stats := readProc(t, k, "diskstats")
	for _, want := range []string{"sd0.q depth=", "rd0.q depth=", "merge_ratio=",
		"plug_hits=", "plug_timeouts=", "daemon_flushes=", "dirty=0"} {
		if !strings.Contains(stats, want) {
			t.Fatalf("diskstats missing %q:\n%s", want, stats)
		}
	}

	// The SD queue really ran its async half: submissions were dispatched
	// and completion IRQs fired.
	for _, d := range k.BlockDevs() {
		if d.Name() != "sd0" {
			continue
		}
		sub, disp, _, _, _ := d.Queue().Stats()
		if sub == 0 || disp == 0 {
			t.Fatalf("sd0 queue idle: submitted=%d dispatched=%d", sub, disp)
		}
	}
}

// readProc reads a whole procfs node through the file layer.
func readProc(t *testing.T, k *Kernel, name string) string {
	t.Helper()
	f, err := k.VFS.Open(nil, "/proc/"+name, fs.ORdOnly)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close(nil)
	var sb strings.Builder
	buf := make([]byte, 4096)
	for {
		n, err := f.Read(nil, buf)
		if n > 0 {
			sb.Write(buf[:n])
		}
		if err != nil || n == 0 {
			break
		}
	}
	return sb.String()
}
