package kernel

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"protosim/internal/hw"
	"protosim/internal/kernel/blkq"
	"protosim/internal/kernel/fs"
	"protosim/internal/kernel/sched"
	"protosim/internal/kernel/wm"
)

// --- unified block IO path ---

// BlockIO is the kernel's single entry point to a block device: every
// filesystem mounts over one of these (the ramdisk under xv6fs, the SD
// card under FAT32), so all block traffic — cached, range, or baseline
// bypass — funnels through here and is accounted uniformly. When the
// device has split submit/completion halves (the SD card), BlockIO
// forwards them so a blkq request queue stacked on top can drive the
// async path; the queue is registered back here (SetQueue) so its
// merge/depth statistics ride the same /proc/diskstats node as the
// command counts. /dev/<name> exposes the raw (read-only) device.
type BlockIO struct {
	name string
	dev  fs.BlockDevice
	abe  blkq.AsyncBackend // non-nil when dev has submit/completion halves
	q    *blkq.Queue       // non-nil when a request queue fronts this device

	readCmds, readBlocks   atomic.Int64
	writeCmds, writeBlocks atomic.Int64
}

// NewBlockIO wraps dev as a named kernel block device.
func NewBlockIO(name string, dev fs.BlockDevice) *BlockIO {
	d := &BlockIO{name: name, dev: dev}
	d.abe, _ = dev.(blkq.AsyncBackend)
	return d
}

// Async returns the device's split submit/completion half — routed back
// through this BlockIO so async commands are counted too — or nil when
// the underlying device is synchronous only.
func (d *BlockIO) Async() blkq.AsyncBackend {
	if d.abe == nil {
		return nil
	}
	return d
}

// SubmitRead forwards the async read half, counting the command.
func (d *BlockIO) SubmitRead(tag uint64, lba, n int, dst []byte) error {
	err := d.abe.SubmitRead(tag, lba, n, dst)
	if err == nil {
		d.readCmds.Add(1)
		d.readBlocks.Add(int64(n))
	}
	return err
}

// SubmitWrite forwards the async write half, counting the command.
func (d *BlockIO) SubmitWrite(tag uint64, lba, n int, src []byte) error {
	err := d.abe.SubmitWrite(tag, lba, n, src)
	if err == nil {
		d.writeCmds.Add(1)
		d.writeBlocks.Add(int64(n))
	}
	return err
}

// PopCompletion forwards the completion half.
func (d *BlockIO) PopCompletion() (uint64, error, bool) { return d.abe.PopCompletion() }

// SetQueue records the request queue stacked on this device so diskstats
// can report its statistics alongside the command counts.
func (d *BlockIO) SetQueue(q *blkq.Queue) { d.q = q }

// Queue returns the request queue fronting this device, or nil.
func (d *BlockIO) Queue() *blkq.Queue { return d.q }

// Name returns the device name ("rd0", "sd0").
func (d *BlockIO) Name() string { return d.name }

// BlockSize implements fs.BlockDevice.
func (d *BlockIO) BlockSize() int { return d.dev.BlockSize() }

// Blocks implements fs.BlockDevice.
func (d *BlockIO) Blocks() int { return d.dev.Blocks() }

// ReadBlocks implements fs.BlockDevice.
func (d *BlockIO) ReadBlocks(lba, n int, dst []byte) error {
	d.readCmds.Add(1)
	d.readBlocks.Add(int64(n))
	return d.dev.ReadBlocks(lba, n, dst)
}

// WriteBlocks implements fs.BlockDevice.
func (d *BlockIO) WriteBlocks(lba, n int, src []byte) error {
	d.writeCmds.Add(1)
	d.writeBlocks.Add(int64(n))
	return d.dev.WriteBlocks(lba, n, src)
}

// Stats reports commands and blocks moved in each direction. The command
// counts are what the §5.2 batching optimizations shrink: one range
// command for n blocks instead of n single-block commands.
func (d *BlockIO) Stats() (readCmds, readBlocks, writeCmds, writeBlocks int64) {
	return d.readCmds.Load(), d.readBlocks.Load(), d.writeCmds.Load(), d.writeBlocks.Load()
}

// addBlockDev records a block device and, once /dev exists, exposes it as
// a raw (read-only) device file.
func (k *Kernel) addBlockDev(d *BlockIO) {
	k.blockDevs = append(k.blockDevs, d)
	if k.DevFS != nil {
		k.registerBlockDevFile(d)
	}
}

// BlockDevs lists the kernel's block devices.
func (k *Kernel) BlockDevs() []*BlockIO { return k.blockDevs }

func (k *Kernel) registerBlockDevFile(d *BlockIO) {
	k.DevFS.Register(d.name, func(*sched.Task, int) (fs.FileOps, error) {
		return &blockFile{dev: d}, nil
	})
}

// blockFile is a raw, read-only, positional view of a block device —
// `cat /dev/sd0` territory. Writes are refused: scribbling under a mounted
// filesystem is how images get corrupted. It holds no state at all — the
// offset lives in the OpenFile.
type blockFile struct {
	fs.BaseOps
	dev *BlockIO
}

// Pread implements fs.FileOps: an unaligned read served by covering block
// commands.
func (f *blockFile) Pread(_ *sched.Task, p []byte, off int64) (int, error) {
	bs := int64(f.dev.BlockSize())
	size := int64(f.dev.Blocks()) * bs
	if off >= size {
		return 0, nil
	}
	if int64(len(p)) > size-off {
		p = p[:size-off]
	}
	// Read the covering block range, then slice out the unaligned view.
	first := off / bs
	last := (off + int64(len(p)) - 1) / bs
	buf := make([]byte, (last-first+1)*bs)
	if err := f.dev.ReadBlocks(int(first), int(last-first+1), buf); err != nil {
		return 0, err
	}
	return copy(p, buf[off-first*bs:]), nil
}

// Pwrite implements fs.FileOps: refused, the device is mounted.
func (f *blockFile) Pwrite(*sched.Task, []byte, int64) (int, int64, error) {
	return 0, 0, fs.ErrPerm
}

// Stat implements fs.FileOps.
func (f *blockFile) Stat(*sched.Task) (fs.Stat, error) {
	return fs.Stat{
		Name: f.dev.Name(),
		Type: fs.TypeDevice,
		Size: int64(f.dev.Blocks()) * int64(f.dev.BlockSize()),
	}, nil
}

// Caps implements fs.FileOps: positional (seekable).
func (f *blockFile) Caps() fs.Caps { return fs.CapSeek }

// eventQueue buffers keyboard events for /dev/events when no window
// manager is routing input (Prototype 4).
type eventQueue struct {
	mu     sync.Mutex
	events []wm.InputEvent
	wq     sched.WaitQueue
}

func (q *eventQueue) push(e wm.InputEvent) {
	q.mu.Lock()
	if len(q.events) < 512 {
		q.events = append(q.events, e)
	}
	q.mu.Unlock()
	q.wq.WakeAll()
}

func (q *eventQueue) pop(t *sched.Task, block bool) (wm.InputEvent, bool) {
	for {
		q.mu.Lock()
		if len(q.events) > 0 {
			e := q.events[0]
			q.events = q.events[1:]
			q.mu.Unlock()
			return e, true
		}
		q.mu.Unlock()
		if !block {
			return wm.InputEvent{}, false
		}
		q.wq.Sleep(t)
	}
}

// initKeyboard performs the USPi-style enumeration dance and installs the
// IRQ handler that turns HID reports into input events.
func (k *Kernel) initKeyboard() error {
	usb := k.m.USB
	if !usb.PortConnected() {
		return fmt.Errorf("no keyboard on the root hub")
	}
	// Enumeration: read the device descriptor at address 0, assign an
	// address, read configuration, set configuration, boot protocol.
	if _, err := usb.ControlTransfer(0, hw.SetupPacket{Request: 6, Value: 1 << 8, Length: 18}); err != nil {
		return fmt.Errorf("get device descriptor: %w", err)
	}
	const addr = 1
	if _, err := usb.ControlTransfer(0, hw.SetupPacket{Request: 5, Value: addr}); err != nil {
		return fmt.Errorf("set address: %w", err)
	}
	cfg, err := usb.ControlTransfer(addr, hw.SetupPacket{Request: 6, Value: 2 << 8, Length: 64})
	if err != nil {
		return fmt.Errorf("get config descriptor: %w", err)
	}
	if len(cfg) < 17 || cfg[14] != 3 {
		return fmt.Errorf("device is not HID class")
	}
	if _, err := usb.ControlTransfer(addr, hw.SetupPacket{Request: 9, Value: 1}); err != nil {
		return fmt.Errorf("set configuration: %w", err)
	}
	if _, err := usb.ControlTransfer(addr, hw.SetupPacket{Request: 11, Value: 0}); err != nil {
		return fmt.Errorf("set boot protocol: %w", err)
	}
	k.kbdAddr = addr
	k.rawEvents = &eventQueue{}
	k.m.IRQ.Register(hw.IRQUSB, 0, func(hw.IRQLine, int) { k.drainKeyboard() })

	// Game HAT buttons arrive via GPIO and are translated to the same
	// event stream (§5.5: buttons "emit key events through /dev/events").
	k.m.IRQ.Register(hw.IRQGPIO, 0, func(hw.IRQLine, int) { k.drainButtons() })
	k.Printk("proto: usb keyboard at address %d\n", addr)
	return nil
}

// drainKeyboard services the USB interrupt: fetch reports, diff against
// the previous state to produce down/up events, and route them.
func (k *Kernel) drainKeyboard() {
	for {
		rep, ok, err := k.m.USB.InterruptTransfer(k.kbdAddr)
		if err != nil || !ok {
			return
		}
		prev := k.kbdLast
		k.kbdLast = rep
		mods := rep[0]
		// Releases: usages in prev but not in rep.
		for _, u := range prev[2:] {
			if u == 0 {
				continue
			}
			if !reportHas(rep, u) {
				k.routeEvent(wm.InputEvent{Down: false, Code: u, Mods: mods, ASCII: hw.UsageToASCII(u, mods)})
			}
		}
		// Presses: usages in rep but not in prev.
		for _, u := range rep[2:] {
			if u == 0 {
				continue
			}
			if !reportHas(prev, u) {
				k.routeEvent(wm.InputEvent{Down: true, Code: u, Mods: mods, ASCII: hw.UsageToASCII(u, mods)})
			}
		}
	}
}

func reportHas(rep [hw.HIDReportLen]byte, usage byte) bool {
	for _, u := range rep[2:] {
		if u == usage {
			return true
		}
	}
	return false
}

// drainButtons maps Game HAT GPIO edges to key events.
func (k *Kernel) drainButtons() {
	for _, ev := range k.m.GPIO.DrainEvents() {
		var usage byte
		switch ev.Pin {
		case hw.PinUp:
			usage = hw.UsageUp
		case hw.PinDown:
			usage = hw.UsageDown
		case hw.PinLeft:
			usage = hw.UsageLeft
		case hw.PinRight:
			usage = hw.UsageRight
		case hw.PinA:
			usage = hw.UsageA
		case hw.PinB:
			usage = hw.UsageA + 1
		case hw.PinStart:
			usage = hw.UsageEnter
		case hw.PinSelect:
			usage = hw.UsageTab
		default:
			continue
		}
		k.routeEvent(wm.InputEvent{Down: ev.Pressed, Code: usage, ASCII: hw.UsageToASCII(usage, 0)})
	}
}

// routeEvent sends an input event to the WM's focused window; when no
// window exists (direct-rendering apps like DOOM, or a bare console), it
// lands in the raw /dev/events queue instead.
func (k *Kernel) routeEvent(e wm.InputEvent) {
	if k.WM != nil && k.WM.Focused() != nil {
		k.WM.DeliverKey(e)
		return
	}
	if k.rawEvents != nil {
		k.rawEvents.push(e)
	}
}

// InjectKey lets tests and examples type without a USB device attached
// (it still flows through the normal routing).
func (k *Kernel) InjectKey(e wm.InputEvent) { k.routeEvent(e) }

// registerDevices populates /dev.
func (k *Kernel) registerDevices() {
	k.DevFS.Register("uart", func(*sched.Task, int) (fs.FileOps, error) {
		return &uartFile{k: k}, nil
	})
	k.DevFS.Register("console", func(*sched.Task, int) (fs.FileOps, error) {
		return &consoleFile{k: k}, nil
	})
	k.DevFS.Register("fb", func(_ *sched.Task, flags int) (fs.FileOps, error) {
		return &fbFile{k: k}, nil
	})
	k.DevFS.Register("events", func(_ *sched.Task, flags int) (fs.FileOps, error) {
		return &eventsFile{k: k, nonblock: flags&fs.ONonblock != 0}, nil
	})
	if k.cfg.EnableSound {
		k.DevFS.Register("sb", func(*sched.Task, int) (fs.FileOps, error) {
			return &soundFile{dev: k.sound}, nil
		})
	}
}

// registerWMDevices adds the Prototype 5 surface devices once a WM exists.
// Called lazily from the surface open path.

// --- /dev/uart and /dev/console ---

// uartFile is raw serial: writes transmit, reads poll the RX FIFO.
type uartFile struct {
	fs.BaseOps
	k *Kernel
}

// Read implements fs.FileOps.
func (u *uartFile) Read(t *sched.Task, p []byte) (int, error) {
	n := 0
	for n < len(p) {
		b, ok := u.k.m.UART.RxByte()
		if !ok {
			break
		}
		p[n] = b
		n++
	}
	return n, nil
}

// Write implements fs.FileOps.
func (u *uartFile) Write(_ *sched.Task, p []byte) (int, error) {
	return u.k.m.UART.Write(p)
}

// Stat implements fs.FileOps.
func (u *uartFile) Stat(*sched.Task) (fs.Stat, error) {
	return fs.Stat{Name: "uart", Type: fs.TypeDevice}, nil
}

// consoleFile is the shell's terminal: reads block for keyboard ASCII
// (falling back to UART RX), writes go to the UART synchronously.
type consoleFile struct {
	fs.BaseOps
	k *Kernel
}

// Read implements fs.FileOps: blocks for the next typed byte.
func (c *consoleFile) Read(t *sched.Task, p []byte) (int, error) {
	if len(p) == 0 {
		return 0, nil
	}
	for {
		// Keyboard first.
		if q := c.k.rawEvents; q != nil {
			if e, ok := q.pop(t, false); ok {
				if e.Down && e.ASCII != 0 {
					p[0] = e.ASCII
					return 1, nil
				}
				continue // releases and unprintables are skipped
			}
		}
		if b, ok := c.k.m.UART.RxByte(); ok {
			p[0] = b
			return 1, nil
		}
		// Nothing pending: sleep briefly (console poll tick).
		t.SleepFor(2 * time.Millisecond)
	}
}

// Write implements fs.FileOps.
func (c *consoleFile) Write(_ *sched.Task, p []byte) (int, error) {
	return c.k.m.UART.Write(p)
}

// Stat implements fs.FileOps.
func (c *consoleFile) Stat(*sched.Task) (fs.Stat, error) {
	return fs.Stat{Name: "console", Type: fs.TypeDevice}, nil
}

// --- /dev/fb ---

// fbFile exposes the framebuffer as a positional device file; ioctl
// flushes the cache so the panel shows the writes. The offset lives in
// the OpenFile.
type fbFile struct {
	fs.BaseOps
	k *Kernel
}

// Pread implements fs.FileOps.
func (f *fbFile) Pread(_ *sched.Task, p []byte, off int64) (int, error) {
	fb := f.k.FB
	if off >= int64(fb.Size()) {
		return 0, nil
	}
	return copy(p, fb.Mem()[off:]), nil
}

// Pwrite implements fs.FileOps.
func (f *fbFile) Pwrite(_ *sched.Task, p []byte, off int64) (int, int64, error) {
	fb := f.k.FB
	if off == fs.OffAppend {
		return 0, 0, fs.ErrBadSeek
	}
	if off >= int64(fb.Size()) {
		return 0, off, fs.ErrNoSpace
	}
	n := copy(fb.Mem()[off:], p)
	return n, off + int64(n), nil
}

// Stat implements fs.FileOps.
func (f *fbFile) Stat(*sched.Task) (fs.Stat, error) {
	return fs.Stat{Name: "fb", Type: fs.TypeDevice, Size: int64(f.k.FB.Size())}, nil
}

// Caps implements fs.FileOps: positional, with control operations.
func (f *fbFile) Caps() fs.Caps { return fs.CapSeek | fs.CapIoctl }

// Ioctl implements fs.FileOps.
func (f *fbFile) Ioctl(_ *sched.Task, op int, arg int64) (int64, error) {
	switch op {
	case IoctlFBFlush:
		f.k.FB.Flush()
		return 0, nil
	case IoctlFBInfo:
		return int64(f.k.FB.Width())<<32 | int64(f.k.FB.Height()), nil
	}
	return 0, fmt.Errorf("kernel: fb ioctl %d", op)
}

// --- /dev/events ---

// eventsFile delivers raw keyboard events as 8-byte records; with
// O_NONBLOCK (or the ioctl) an empty queue returns ErrWouldBlock — the
// §4.5 non-blocking IO path DOOM's key polling needs.
type eventsFile struct {
	fs.BaseOps
	k        *Kernel
	nonblock bool
}

// Read implements fs.FileOps: the next 8-byte event record.
func (f *eventsFile) Read(t *sched.Task, p []byte) (int, error) {
	if len(p) < wm.EventSize {
		return 0, fmt.Errorf("kernel: events read needs %d bytes", wm.EventSize)
	}
	q := f.k.rawEvents
	if q == nil {
		return 0, fs.ErrNotFound
	}
	e, ok := q.pop(t, !f.nonblock)
	if !ok {
		return 0, fs.ErrWouldBlock
	}
	e.Encode(p)
	return wm.EventSize, nil
}

// Stat implements fs.FileOps.
func (f *eventsFile) Stat(*sched.Task) (fs.Stat, error) {
	return fs.Stat{Name: "events", Type: fs.TypeDevice}, nil
}

// Caps implements fs.FileOps: a stream with control operations.
func (f *eventsFile) Caps() fs.Caps { return fs.CapIoctl }

// Ioctl implements fs.FileOps.
func (f *eventsFile) Ioctl(_ *sched.Task, op int, arg int64) (int64, error) {
	if op == IoctlNonblock {
		f.nonblock = arg != 0
		return 0, nil
	}
	return 0, fmt.Errorf("kernel: events ioctl %d", op)
}
