// Package uring is the submission/completion ring for batched file IO —
// the io_uring-shaped amortization layer over the open-file-description
// (fs.OpenFile) contract.
//
// The cost model it attacks: every Sys* file operation is one scheduler
// entry (syscall count, preemption checkpoint, and — for the calling
// task — one full trip through the simulated-core dispatch). A workload
// issuing thousands of small positional IOs pays that per operation. The
// ring batches them: user code stages SQEs (submission queue entries)
// with Ring.Queue — plain memory writes into pooled slots, no syscall at
// all, the analogue of io_uring's shared SQ pages — and then ONE
// SysRingEnter drains the whole batch. Completions are posted
// asynchronously into the pooled CQ as each operation finishes and are
// reaped with Ring.Reap, again without a syscall.
//
// # Execution model
//
// A ring owns a small pool of kernel worker tasks (spawned through
// Options.Spawn so the kernel can place them on its scheduler). Enter's
// handoff moves staged SQEs into the active set under a single blkq
// Plug/Unplug bracket (Options.Plug/Unplug) and wakes the pool; workers
// pull entries and run them against the process's FD table concurrently,
// so a 64-SQE batch overlaps at the device up to the queue depth instead
// of serializing 64 latency round-trips. The bracket covers only the
// non-blocking handoff — workers never hold a queue-global plug across a
// blocking operation (a plug held by a sleeping owner is the deadlock
// shape blkq's plug parking exists to defuse); batch merging comes from
// worker concurrency plus the queue's anticipatory plug.
//
// # Semantics
//
//   - Operations are positional only (pread/pwrite/preadv/pwritev/fsync
//     plus nop): everything the OFD serves without touching the shared
//     file offset, so concurrent in-flight SQEs cannot corrupt a file
//     position. Ordering between in-flight SQEs is NOT guaranteed — as
//     in io_uring, a caller that needs write-before-fsync issues the
//     fsync in a later batch (after reaping the writes).
//   - Per-op errors land in the op's CQE (bad descriptor, ErrBadSeek on
//     a non-positional file, short IO), never in Enter's return: one bad
//     SQE does not abort its batch.
//   - Fsync SQEs run fs.OpenFile.Sync, which observes the description's
//     per-open errseq cursor — an asynchronous writeback failure
//     surfaces in exactly one fsync CQE per descriptor, the same
//     exactly-once contract the synchronous SysFsync path has.
//   - The slots are pooled at Setup (SQ of `entries`, active and CQ of
//     2×entries): the steady-state hot loop allocates nothing, and
//     admission control in Enter never hands off more work than the CQ
//     can absorb, so completions are never dropped.
//
// The kernel face is two syscalls on *kernel.Proc: SysRingSetup(entries)
// and SysRingEnter(toSubmit, minComplete); the ring handle's Queue/Reap
// are the "shared memory" halves. The ring is per process group (threads
// share it, like the FD table) and is closed on process exit before the
// descriptor table is torn down: Close joins the worker pool (its exit
// accounting watches the worker tasks' Done channels, so even a worker
// killed before its first dispatch is counted), while a condemned task's
// finalize uses Abandon — close without the join — because parking
// host-side would hold the core the workers need to exit.
package uring
