// Ring behavior under device failure: the batch syscall must never hang
// on a dead device — every staged op gets its own CQE carrying its own
// error, and the drain completes even when the filesystem under the
// descriptors has latched read-only mid-batch.
package uring_test

import (
	"errors"
	"testing"
	"time"

	"protosim/internal/hw"
	"protosim/internal/kernel/blkq"
	"protosim/internal/kernel/fs"
	"protosim/internal/kernel/sched"
	"protosim/internal/kernel/uring"
	"protosim/internal/kernel/xv6fs"
)

// deviceDeathError matches everything a dead device may surface through a
// CQE: the dead-device sentinel itself, the read-only latch it trips, and
// the journal-abort wrapper both arrive under.
func deviceDeathError(err error) bool {
	for _, e := range []error{fs.ErrDeviceDead, fs.ErrReadOnly, fs.ErrBadSector} {
		if errors.Is(err, e) {
			return true
		}
	}
	return false
}

// TestRingEnterDeviceDeath: a batch staged against a healthy mount is
// entered after the device dies. Enter must return (no hung drain), every
// op must complete with a per-op CQE, the failures must be typed, and the
// trailing fsync must report the durability loss.
func TestRingEnterDeviceDeath(t *testing.T) {
	wd := time.AfterFunc(2*time.Minute, func() { panic("ring drain hung on dead device") })
	defer wd.Stop()

	s := sched.New(sched.Config{Cores: 2})
	s.Start()
	t.Cleanup(func() { s.Shutdown(5 * time.Second) })

	rd := fs.NewRamdisk(xv6fs.BlockSize, 1024)
	if err := xv6fs.Mkfs(rd, 64); err != nil {
		t.Fatal(err)
	}
	fd := hw.NewFaultDisk(rd, hw.FaultPlan{Seed: 1})
	q := blkq.New(fd, blkq.Options{Async: fd, PlugDelay: -1})
	fd.SetNotify(func() { q.CompletionIRQ() })
	fsys, err := xv6fs.Mount(q, nil)
	if err != nil {
		t.Fatal(err)
	}

	fds := fs.NewFDTable(16)
	r, err := uring.New(16, fds, uring.Options{
		Workers: 2,
		Spawn:   func(name string, fn func(*sched.Task)) *sched.Task { return s.Go("uring-"+name, 1, fn) },
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { r.Close(nil) })

	ops, err := fsys.Open(nil, "/dying.dat", fs.OCreate|fs.ORdWr)
	if err != nil {
		t.Fatal(err)
	}
	of := fs.NewOpenFile(ops, fs.ORdWr)
	rfd, err := fds.Install(of)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := of.Write(nil, []byte("healthy")); err != nil {
		t.Fatal(err)
	}
	if err := fsys.Sync(nil); err != nil {
		t.Fatal(err)
	}

	fd.Kill()

	// Extending pwrites force allocation transactions against the dead
	// device, plus a trailing fsync that must hear about the loss.
	const n = 8
	chunk := make([]byte, 2*xv6fs.BlockSize)
	for i := 0; i < n; i++ {
		sqe := uring.SQE{Op: uring.OpPwrite, FD: rfd, Off: int64(i * len(chunk)), Buf: chunk, User: uint64(i)}
		if err := r.Queue(sqe); err != nil {
			t.Fatal(err)
		}
	}
	if err := r.Queue(uring.SQE{Op: uring.OpFsync, FD: rfd, User: uint64(n)}); err != nil {
		t.Fatal(err)
	}

	got, err := r.Enter(nil, n+1, n+1)
	if err != nil || got != n+1 {
		t.Fatalf("Enter = %d, %v, want %d submitted", got, err, n+1)
	}
	cqes := make(map[uint64]uring.CQE, n+1)
	for {
		c, ok := r.Reap()
		if !ok {
			break
		}
		cqes[c.User] = c
	}
	if len(cqes) != n+1 {
		t.Fatalf("reaped %d CQEs, want %d — ops vanished from the drain", len(cqes), n+1)
	}
	failures := 0
	for u, c := range cqes {
		if c.Err == nil {
			continue // write-behind may absorb an op into the cache
		}
		if !deviceDeathError(c.Err) {
			t.Fatalf("CQE %d: untyped error %v", u, c.Err)
		}
		failures++
	}
	if failures == 0 {
		t.Fatal("no op reported the dead device")
	}
	if c := cqes[n]; c.Err == nil || !deviceDeathError(c.Err) {
		t.Fatalf("fsync CQE = %v, want a typed device error", c.Err)
	}
	if degraded, ro, cause := fsys.Health(); !degraded || !ro || !deviceDeathError(cause) {
		t.Fatalf("Health = (%v, %v, %v), want degraded read-only with a typed cause", degraded, ro, cause)
	}

	// The ring itself is still serviceable: a read of the cached prefix
	// completes cleanly after the failed batch.
	buf := make([]byte, 7)
	if err := r.Queue(uring.SQE{Op: uring.OpPread, FD: rfd, Buf: buf, User: 99}); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Enter(nil, 1, 1); err != nil {
		t.Fatal(err)
	}
	c, ok := r.Reap()
	if !ok || c.Err != nil || c.Res != 7 || string(buf) != "healthy" {
		t.Fatalf("post-death cached read CQE = %+v buf %q, want clean 7-byte read", c, buf)
	}
}
