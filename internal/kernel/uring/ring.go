package uring

import (
	"errors"
	"fmt"
	"sync"

	"protosim/internal/kernel/fs"
	"protosim/internal/kernel/sched"
)

// Op selects what a submission queue entry does.
type Op uint8

// Ring opcodes. All are positional (offset in the SQE, shared file offset
// untouched) so concurrent in-flight entries cannot corrupt a position.
const (
	// OpNop completes immediately with Res 0 — the latency/overhead probe.
	OpNop Op = iota
	// OpPread reads len(Buf) bytes from FD at Off into Buf.
	OpPread
	// OpPwrite writes Buf to FD at Off (OffAppend for atomic append).
	OpPwrite
	// OpPreadv scatters one contiguous read at Off into Iovs.
	OpPreadv
	// OpPwritev gathers Iovs into one contiguous write at Off.
	OpPwritev
	// OpFsync flushes FD and observes its per-open writeback-error cursor.
	OpFsync
)

// SQE is one submission queue entry: an opcode plus its arguments. User
// is an opaque correlation token echoed in the matching CQE (io_uring's
// user_data).
type SQE struct {
	Op   Op
	FD   int
	Off  int64
	Buf  []byte
	Iovs [][]byte
	User uint64
}

// CQE is one completion queue entry. Res is the operation's byte count
// (0 for nop/fsync); Err is its error, nil on success. Every submitted
// SQE produces exactly one CQE — errors complete, they do not abort the
// batch.
type CQE struct {
	User uint64
	Res  int
	Err  error
}

// Ring errors.
var (
	ErrClosed     = errors.New("uring: ring closed")
	ErrSQFull     = errors.New("uring: submission queue full")
	ErrBadOp      = errors.New("uring: unknown opcode")
	ErrBadEntries = errors.New("uring: entries out of range")
)

// MaxEntries bounds a ring's submission queue size.
const MaxEntries = 256

const defaultWorkers = 4

// Options configures a Ring. Spawn is required: it places each worker on
// the owning scheduler (the kernel passes Sched.Go; tests pass their own
// test scheduler). Plug/Unplug, when set, bracket each Enter handoff —
// the kernel wires them to every block device queue's Plug/Unplug so a
// drain's first dispatches accumulate and merge.
type Options struct {
	// Workers sizes the worker pool (default 4, clamped to entries).
	Workers int
	// Spawn starts one kernel worker task running fn and returns its
	// task handle. The ring watches the handles' Done channels so a
	// worker killed before its first dispatch — whose fn never runs —
	// still counts as exited and cannot wedge Close.
	Spawn func(name string, fn func(t *sched.Task)) *sched.Task
	// Plug opens the drain bracket (nil: no bracket).
	Plug func(t *sched.Task)
	// Unplug closes the drain bracket.
	Unplug func(t *sched.Task)
}

// Ring is one submission/completion ring: pooled SQE/CQE slots, a worker
// pool executing ops against an FD table, and the Enter/Reap faces. All
// slot storage is allocated at New — the steady-state hot loop (Queue,
// Enter, worker dispatch, Reap) performs no allocation.
type Ring struct {
	entries int
	fds     *fs.FDTable
	plug    func(t *sched.Task)
	unplug  func(t *sched.Task)

	mu sync.Mutex
	// Three pooled ring buffers: staged SQEs (capacity entries), the
	// active set handed to workers, and completions (each 2×entries —
	// Enter's admission keeps active+inflight+unreaped ≤ 2×entries, so a
	// CQE slot always exists and completions are never dropped).
	sq            []SQE
	sqHead, sqLen int
	work          []SQE
	wHead, wLen   int
	cq            []CQE
	cqHead, cqLen int
	inflight      int // ops executing in workers right now
	closed        bool
	workersLive   int
	nSubmitted    int64
	nCompleted    int64
	nDrains       int64

	workWQ  sched.WaitQueue // workers waiting for entries
	cqWQ    sched.WaitQueue // Enter tasks waiting for completions
	closeWQ sched.WaitQueue // Close waiting for the pool to exit
	cond    *sync.Cond      // host-side (nil-task) waiters
}

// New builds a ring with pooled slots and starts its worker pool. The FD
// table is the process's: workers resolve each SQE's descriptor at
// execution time, so a descriptor closed between Queue and execution
// fails that one op's CQE with ErrBadFD instead of faulting the ring.
func New(entries int, fds *fs.FDTable, opts Options) (*Ring, error) {
	if entries < 1 || entries > MaxEntries {
		return nil, ErrBadEntries
	}
	if fds == nil {
		return nil, errors.New("uring: nil fd table")
	}
	if opts.Spawn == nil {
		return nil, errors.New("uring: Options.Spawn is required")
	}
	workers := opts.Workers
	if workers <= 0 {
		workers = defaultWorkers
	}
	if workers > entries {
		workers = entries
	}
	r := &Ring{
		entries: entries,
		fds:     fds,
		plug:    opts.Plug,
		unplug:  opts.Unplug,
		sq:      make([]SQE, entries),
		work:    make([]SQE, 2*entries),
		cq:      make([]CQE, 2*entries),
	}
	r.cond = sync.NewCond(&r.mu)
	r.workersLive = workers
	tasks := make([]*sched.Task, workers)
	for i := 0; i < workers; i++ {
		tasks[i] = opts.Spawn(fmt.Sprintf("w%d", i), r.worker)
	}
	// The pool's death watcher. Worker accounting keys off the task
	// goroutines' Done channels, not off r.worker's own exit path: a
	// worker killed before its first dispatch (scheduler shutdown racing
	// a fresh SysRingSetup) never runs r.worker at all, and per-fn
	// bookkeeping would leave Close waiting on it forever. Only when
	// every goroutine has fully exited does the watcher zero workersLive
	// and fail the ring — no worker can touch the FD table after the
	// wakeup, and waiters stuck on completions that can no longer arrive
	// get ErrClosed instead of sleeping forever.
	go func() {
		for _, wt := range tasks {
			if wt != nil {
				<-wt.Done()
			}
		}
		r.mu.Lock()
		r.workersLive = 0
		r.closed = true
		r.mu.Unlock()
		r.workWQ.WakeAll()
		r.cqWQ.WakeAll()
		r.closeWQ.WakeAll()
		r.cond.Broadcast()
	}()
	return r, nil
}

// Entries reports the submission queue capacity.
func (r *Ring) Entries() int { return r.entries }

// Stats reports lifetime counters: SQEs handed off, CQEs posted, and
// Enter drains that moved at least one entry.
func (r *Ring) Stats() (submitted, completed, drains int64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.nSubmitted, r.nCompleted, r.nDrains
}

// Queue stages one SQE — a memory write into a pooled slot, no syscall
// and no kernel entry. It fails with ErrSQFull when all `entries` staged
// slots are taken (drain with Enter first) and ErrClosed on a dead ring.
func (r *Ring) Queue(e SQE) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return ErrClosed
	}
	if r.sqLen == len(r.sq) {
		return ErrSQFull
	}
	r.sq[(r.sqHead+r.sqLen)%len(r.sq)] = e
	r.sqLen++
	return nil
}

// Enter is the ring's one kernel entry: it moves up to toSubmit staged
// SQEs into the active set — the whole handoff under a single
// Plug/Unplug bracket, with the worker pool woken while the bracket is
// open so the batch's first dispatches accumulate and merge — and then
// sleeps until at least minComplete completions are reapable.
//
// It returns how many entries were actually handed off: fewer than
// toSubmit when the staging queue is shorter (a short batch is not an
// error) or when admission has to hold entries back so the CQ can absorb
// every outstanding completion. minComplete is clamped to the number of
// completions that can still arrive (unreaped + in flight + handed off),
// so over-asking cannot sleep forever. A nil task busy-waits host-style
// (tests); real callers pass their scheduler task and sleep on the
// simulated core.
func (r *Ring) Enter(t *sched.Task, toSubmit, minComplete int) (int, error) {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return 0, ErrClosed
	}
	n := toSubmit
	if n > r.sqLen {
		n = r.sqLen
	}
	if room := 2*r.entries - (r.wLen + r.inflight + r.cqLen); n > room {
		n = room
	}
	if n < 0 {
		n = 0
	}
	r.mu.Unlock()

	if n > 0 {
		if r.plug != nil {
			r.plug(t)
		}
		r.mu.Lock()
		for i := 0; i < n; i++ {
			r.work[(r.wHead+r.wLen)%len(r.work)] = r.sq[r.sqHead]
			r.sq[r.sqHead] = SQE{} // drop buffer references from the pool
			r.sqHead = (r.sqHead + 1) % len(r.sq)
			r.sqLen--
			r.wLen++
		}
		r.nSubmitted += int64(n)
		r.nDrains++
		r.mu.Unlock()
		r.workWQ.WakeAll()
		if r.unplug != nil {
			r.unplug(t)
		}
	}
	if minComplete <= 0 {
		return n, nil
	}
	r.mu.Lock()
	if max := r.cqLen + r.inflight + r.wLen; minComplete > max {
		minComplete = max
	}
	r.mu.Unlock()
	for {
		r.mu.Lock()
		if r.cqLen >= minComplete {
			r.mu.Unlock()
			return n, nil
		}
		if r.closed {
			r.mu.Unlock()
			return n, ErrClosed
		}
		if t == nil {
			// Host-side waiter: sleep on the condition variable (the
			// workers broadcast every completion).
			for r.cqLen < minComplete && !r.closed {
				r.cond.Wait()
			}
			r.mu.Unlock()
			continue
		}
		r.mu.Unlock()
		r.cqWQ.SleepUnless(t, func() bool {
			r.mu.Lock()
			done := r.cqLen >= minComplete || r.closed
			r.mu.Unlock()
			return done
		})
	}
}

// Reap pops the oldest completion — a pooled-slot read, no syscall.
// ok is false when the CQ is empty.
func (r *Ring) Reap() (cqe CQE, ok bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.cqLen == 0 {
		return CQE{}, false
	}
	cqe = r.cq[r.cqHead]
	r.cq[r.cqHead] = CQE{}
	r.cqHead = (r.cqHead + 1) % len(r.cq)
	r.cqLen--
	return cqe, true
}

// Pending reports staged, active+in-flight, and reapable entry counts
// (diagnostics and tests).
func (r *Ring) Pending() (staged, active, reapable int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.sqLen, r.wLen + r.inflight, r.cqLen
}

// Close shuts the ring down: no new Queue/Enter, staged entries are
// dropped, active ones drain (their CQEs still post), and the worker
// pool exits. Close waits for the pool (the watcher's wakeup fires only
// after every worker goroutine is gone), so after it returns no worker
// can touch the FD table — process exit closes the ring BEFORE tearing
// descriptors down. Closing twice returns ErrClosed.
//
// The wait needs the workers to be schedulable: a task that must not
// sleep AND must not park host-side while holding its core (a killed
// task in finalize) uses Abandon instead.
func (r *Ring) Close(t *sched.Task) error {
	if err := r.shut(); err != nil {
		return err
	}
	for {
		r.mu.Lock()
		done := r.workersLive == 0
		r.mu.Unlock()
		if done {
			return nil
		}
		if t == nil {
			r.mu.Lock()
			for r.workersLive > 0 {
				r.cond.Wait()
			}
			r.mu.Unlock()
			return nil
		}
		r.closeWQ.SleepUnless(t, func() bool {
			r.mu.Lock()
			done := r.workersLive == 0
			r.mu.Unlock()
			return done
		})
	}
}

// Abandon closes the ring without waiting for the worker pool: staged
// entries are dropped, workers wake, drain the active set, and exit on
// their own schedule. The caller that cannot wait — a killed task's
// finalize, which on a one-core kernel would hold the only CPU the
// workers need to exit — relies on the OpenFile in-flight guards for
// descriptor safety instead of the join: a worker mid-op holds its
// description across a racing close, and one not yet dispatched fails
// its CQE with ErrBadFD. Abandoning twice returns ErrClosed.
func (r *Ring) Abandon() error {
	return r.shut()
}

// shut flips the ring closed, drops staged SQEs, and wakes everyone —
// the common prefix of Close and Abandon.
func (r *Ring) shut() error {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return ErrClosed
	}
	r.closed = true
	// Drop staged entries (never handed off — no CQEs owed).
	r.sqHead, r.sqLen = 0, 0
	for i := range r.sq {
		r.sq[i] = SQE{}
	}
	r.mu.Unlock()
	r.workWQ.WakeAll()
	r.cqWQ.WakeAll()
	r.cond.Broadcast()
	return nil
}

// worker is one pool task: pull an active entry, execute it against the
// FD table, post its CQE, repeat. On close it drains the active set
// first — every handed-off SQE is owed a completion — then exits. The
// ready closure is allocated once per worker, not per sleep: the loop
// itself is allocation-free.
func (r *Ring) worker(t *sched.Task) {
	ready := func() bool {
		r.mu.Lock()
		d := r.wLen > 0 || r.closed
		r.mu.Unlock()
		return d
	}
	for {
		r.mu.Lock()
		if r.wLen == 0 {
			if r.closed {
				// Exit; the pool watcher (New) does the accounting once
				// the goroutine is fully gone.
				r.mu.Unlock()
				return
			}
			r.mu.Unlock()
			r.workWQ.SleepUnless(t, ready)
			continue
		}
		e := r.work[r.wHead]
		r.work[r.wHead] = SQE{}
		r.wHead = (r.wHead + 1) % len(r.work)
		r.wLen--
		r.inflight++
		r.mu.Unlock()

		cqe := r.exec(t, e)

		r.mu.Lock()
		r.inflight--
		r.nCompleted++
		// Admission control guarantees a free CQ slot.
		r.cq[(r.cqHead+r.cqLen)%len(r.cq)] = cqe
		r.cqLen++
		r.mu.Unlock()
		r.cqWQ.WakeAll()
		r.cond.Broadcast()
	}
}

// exec runs one SQE on the worker's task. The descriptor resolves here,
// at execution time, through the same FDTable.Get every Sys* call uses;
// the OpenFile layer supplies the error semantics (ErrBadFD, ErrPerm,
// ErrBadSeek/ESPIPE, ErrIsDir) and the in-flight use/done guard that
// makes a racing close safe.
func (r *Ring) exec(t *sched.Task, e SQE) CQE {
	if e.Op == OpNop {
		return CQE{User: e.User}
	}
	of, err := r.fds.Get(e.FD)
	if err != nil {
		return CQE{User: e.User, Err: err}
	}
	var n int
	switch e.Op {
	case OpPread:
		n, err = of.Pread(t, e.Buf, e.Off)
	case OpPwrite:
		n, err = of.Pwrite(t, e.Buf, e.Off)
	case OpPreadv:
		n, err = of.Preadv(t, e.Iovs, e.Off)
	case OpPwritev:
		n, err = of.Pwritev(t, e.Iovs, e.Off)
	case OpFsync:
		// OpenFile.Sync flushes and then observes THIS description's
		// errseq cursor: an async writeback failure lands in exactly one
		// fsync CQE per descriptor.
		err = of.Sync(t)
	default:
		err = ErrBadOp
	}
	return CQE{User: e.User, Res: n, Err: err}
}
