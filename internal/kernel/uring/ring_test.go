package uring

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"protosim/internal/kernel/errseq"
	"protosim/internal/kernel/fs"
	"protosim/internal/kernel/sched"
)

// memFile is a positional in-memory file: the minimal CapSeek|CapSync
// FileOps a ring worker can drive, with an errseq stream so fsync's
// exactly-once error contract is testable without a filesystem.
type memFile struct {
	fs.BaseOps
	mu   sync.Mutex
	data []byte
	wb   errseq.Stream
}

func (m *memFile) Pread(_ *sched.Task, p []byte, off int64) (int, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if off >= int64(len(m.data)) {
		return 0, nil
	}
	return copy(p, m.data[off:]), nil
}

func (m *memFile) Pwrite(_ *sched.Task, p []byte, off int64) (int, int64, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if off == fs.OffAppend {
		off = int64(len(m.data))
	}
	if end := off + int64(len(p)); end > int64(len(m.data)) {
		m.data = append(m.data, make([]byte, end-int64(len(m.data)))...)
	}
	copy(m.data[off:], p)
	return len(p), off + int64(len(p)), nil
}

func (m *memFile) Caps() fs.Caps            { return fs.CapSeek | fs.CapSync }
func (m *memFile) WbStream() *errseq.Stream { return &m.wb }

func (m *memFile) Stat(*sched.Task) (fs.Stat, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return fs.Stat{Name: "memfile", Type: fs.TypeFile, Size: int64(len(m.data))}, nil
}

// espipeFile is the pipe shape: BaseOps defaults everywhere, so Pread and
// Pwrite fail with ErrBadSeek (ESPIPE).
type espipeFile struct{ fs.BaseOps }

func (espipeFile) Stat(*sched.Task) (fs.Stat, error) {
	return fs.Stat{Name: "espipe", Type: fs.TypeFile}, nil
}
func (m *memFile) bytes() []byte {
	m.mu.Lock()
	defer m.mu.Unlock()
	return append([]byte(nil), m.data...)
}

// testRing boots a scheduler-backed ring over a fresh FD table, returning
// the pieces plus a plug/unplug drain-bracket counter.
func testRing(t *testing.T, entries, workers int) (*Ring, *fs.FDTable, *sched.Scheduler, func() (int64, int64)) {
	t.Helper()
	s := sched.New(sched.Config{Cores: 2})
	s.Start()
	t.Cleanup(func() { s.Shutdown(5 * time.Second) })
	var mu sync.Mutex
	var plugs, unplugs int64
	fds := fs.NewFDTable(16)
	r, err := New(entries, fds, Options{
		Workers: workers,
		Spawn:   func(name string, fn func(*sched.Task)) *sched.Task { return s.Go("uring-"+name, 1, fn) },
		Plug:    func(*sched.Task) { mu.Lock(); plugs++; mu.Unlock() },
		Unplug:  func(*sched.Task) { mu.Lock(); unplugs++; mu.Unlock() },
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { r.Close(nil) })
	return r, fds, s, func() (int64, int64) {
		mu.Lock()
		defer mu.Unlock()
		return plugs, unplugs
	}
}

func install(t *testing.T, fds *fs.FDTable, ops fs.FileOps, flags int) int {
	t.Helper()
	fd, err := fds.Install(fs.NewOpenFile(ops, flags))
	if err != nil {
		t.Fatal(err)
	}
	return fd
}

// reapAll drains the CQ into a User-keyed map.
func reapAll(r *Ring) map[uint64]CQE {
	out := make(map[uint64]CQE)
	for {
		cqe, ok := r.Reap()
		if !ok {
			return out
		}
		out[cqe.User] = cqe
	}
}

// TestRingRoundTrip pushes a mixed pwrite/pread/pwritev/preadv batch
// through one Enter each and checks the data and byte counts land.
func TestRingRoundTrip(t *testing.T) {
	r, fds, _, brackets := testRing(t, 32, 4)
	mf := &memFile{}
	fd := install(t, fds, mf, fs.ORdWr)

	// One batch of positional writes, one Enter, all CQEs.
	const n = 8
	for i := 0; i < n; i++ {
		if err := r.Queue(SQE{Op: OpPwrite, FD: fd, Off: int64(i * 4), Buf: []byte(fmt.Sprintf("b%02d.", i)), User: uint64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if got, err := r.Enter(nil, n, n); err != nil || got != n {
		t.Fatalf("Enter = %d, %v, want %d submitted", got, err, n)
	}
	cqes := reapAll(r)
	if len(cqes) != n {
		t.Fatalf("reaped %d CQEs, want %d", len(cqes), n)
	}
	for u, c := range cqes {
		if c.Err != nil || c.Res != 4 {
			t.Fatalf("pwrite CQE %d = res %d err %v", u, c.Res, c.Err)
		}
	}
	want := []byte("b00.b01.b02.b03.b04.b05.b06.b07.")
	if got := mf.bytes(); !bytes.Equal(got, want) {
		t.Fatalf("file = %q, want %q", got, want)
	}
	if p, u := brackets(); p != 1 || u != 1 {
		t.Fatalf("drain brackets = %d/%d, want exactly one Plug/Unplug for the whole batch", p, u)
	}

	// Vectored pair: a gathered write then a scattered read of it. Each
	// batch is reaped before the next — minComplete counts reapable CQEs,
	// so an unreaped completion from the last batch would satisfy this
	// Enter's wait immediately (io_uring semantics: the CQ is cumulative).
	if err := r.Queue(SQE{Op: OpPwritev, FD: fd, Off: 32, Iovs: [][]byte{[]byte("xx"), []byte("yy")}, User: 100}); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Enter(nil, 1, 1); err != nil {
		t.Fatal(err)
	}
	if c := reapAll(r)[100]; c.Err != nil || c.Res != 4 {
		t.Fatalf("pwritev CQE = res %d err %v", c.Res, c.Err)
	}
	a, b := make([]byte, 3), make([]byte, 1)
	if err := r.Queue(SQE{Op: OpPreadv, FD: fd, Off: 32, Iovs: [][]byte{a, b}, User: 101}); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Enter(nil, 1, 1); err != nil {
		t.Fatal(err)
	}
	if c := reapAll(r)[101]; c.Err != nil || c.Res != 4 || string(a)+string(b) != "xxyy" {
		t.Fatalf("preadv CQE = res %d err %v, iovs %q+%q", c.Res, c.Err, a, b)
	}

	// Plain pread round-trip.
	buf := make([]byte, 4)
	if err := r.Queue(SQE{Op: OpPread, FD: fd, Off: 4, Buf: buf, User: 200}); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Enter(nil, 1, 1); err != nil {
		t.Fatal(err)
	}
	if c := reapAll(r)[200]; c.Err != nil || c.Res != 4 || string(buf) != "b01." {
		t.Fatalf("pread CQE = res %d err %v buf %q", c.Res, c.Err, buf)
	}

	sub, comp, drains := r.Stats()
	if sub != n+3 || comp != n+3 || drains != 4 {
		t.Fatalf("stats = %d/%d/%d, want %d submitted, %d completed, 4 drains", sub, comp, drains, n+3, n+3)
	}
}

// TestRingErrorsInCQEs: a bad descriptor, an ESPIPE file, a write to a
// read-only descriptor, and an unknown opcode each fail their OWN CQE —
// none of them aborts the batch, and the good op beside them completes.
func TestRingErrorsInCQEs(t *testing.T) {
	r, fds, _, _ := testRing(t, 16, 2)
	mf := &memFile{}
	fd := install(t, fds, mf, fs.ORdWr)
	// BaseOps alone: no CapSeek, Pread/Pwrite are ErrBadSeek (ESPIPE), the
	// pipe shape.
	pipeFD := install(t, fds, espipeFile{}, fs.ORdWr)
	roFD := install(t, fds, &memFile{}, fs.ORdOnly)

	batch := []SQE{
		{Op: OpPwrite, FD: 13, Buf: []byte("x"), User: 0},          // never opened
		{Op: OpPread, FD: pipeFD, Buf: make([]byte, 4), User: 1},   // ESPIPE
		{Op: OpPwrite, FD: roFD, Buf: []byte("x"), User: 2},        // read-only
		{Op: Op(250), FD: fd, User: 3},                             // unknown opcode
		{Op: OpPwrite, FD: fd, Off: 0, Buf: []byte("ok"), User: 4}, // the survivor
	}
	for _, e := range batch {
		if err := r.Queue(e); err != nil {
			t.Fatal(err)
		}
	}
	if got, err := r.Enter(nil, len(batch), len(batch)); err != nil || got != len(batch) {
		t.Fatalf("Enter = %d, %v", got, err)
	}
	cqes := reapAll(r)
	if c := cqes[0]; !errors.Is(c.Err, fs.ErrBadFD) {
		t.Fatalf("bad-fd CQE err = %v, want ErrBadFD", c.Err)
	}
	if c := cqes[1]; !errors.Is(c.Err, fs.ErrBadSeek) {
		t.Fatalf("pipe pread CQE err = %v, want ErrBadSeek (ESPIPE)", c.Err)
	}
	if c := cqes[2]; !errors.Is(c.Err, fs.ErrPerm) {
		t.Fatalf("read-only pwrite CQE err = %v, want ErrPerm", c.Err)
	}
	if c := cqes[3]; !errors.Is(c.Err, ErrBadOp) {
		t.Fatalf("unknown-op CQE err = %v, want ErrBadOp", c.Err)
	}
	if c := cqes[4]; c.Err != nil || c.Res != 2 {
		t.Fatalf("good CQE beside the failures = res %d err %v", c.Res, c.Err)
	}
	if got := mf.bytes(); !bytes.Equal(got, []byte("ok")) {
		t.Fatalf("file = %q, want the good op's write", got)
	}
}

// TestRingShortBatchAndClamp: Enter hands off only what is staged, a
// too-large minComplete is clamped to what can still arrive, and an empty
// Enter returns immediately instead of sleeping forever.
func TestRingShortBatchAndClamp(t *testing.T) {
	r, fds, _, _ := testRing(t, 16, 2)
	fd := install(t, fds, &memFile{}, fs.ORdWr)
	for i := 0; i < 3; i++ {
		if err := r.Queue(SQE{Op: OpPwrite, FD: fd, Off: int64(i), Buf: []byte{byte(i)}, User: uint64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	// Ask for 10, have 3; ask to wait for 50 completions, only 3 can come.
	done := make(chan struct{})
	var n int
	var err error
	go func() { n, err = r.Enter(nil, 10, 50); close(done) }()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("Enter slept forever on an over-asked minComplete")
	}
	if err != nil || n != 3 {
		t.Fatalf("Enter = %d, %v, want the 3 staged entries", n, err)
	}
	if got := len(reapAll(r)); got != 3 {
		t.Fatalf("reaped %d, want 3", got)
	}
	// Nothing staged, nothing outstanding: Enter(0, 5) must not block.
	if n, err := r.Enter(nil, 0, 5); err != nil || n != 0 {
		t.Fatalf("empty Enter = %d, %v", n, err)
	}
}

// TestRingSQFull: the staging queue holds exactly `entries` SQEs; the
// overflow Queue fails with ErrSQFull and a drain makes room again.
func TestRingSQFull(t *testing.T) {
	r, fds, _, _ := testRing(t, 4, 2)
	fd := install(t, fds, &memFile{}, fs.ORdWr)
	for i := 0; i < 4; i++ {
		if err := r.Queue(SQE{Op: OpNop, FD: fd, User: uint64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := r.Queue(SQE{Op: OpNop}); !errors.Is(err, ErrSQFull) {
		t.Fatalf("overflow Queue = %v, want ErrSQFull", err)
	}
	if _, err := r.Enter(nil, 4, 4); err != nil {
		t.Fatal(err)
	}
	if err := r.Queue(SQE{Op: OpNop}); err != nil {
		t.Fatalf("Queue after drain = %v, want room again", err)
	}
}

// TestRingFsyncErrorExactlyOnce is the satellite contract: an async
// writeback failure recorded on the file's errseq stream surfaces in
// exactly one fsync CQE per open description — the next fsync through the
// same description is clean, while a descriptor opened later (own cursor,
// error already reported) never sees it.
func TestRingFsyncErrorExactlyOnce(t *testing.T) {
	r, fds, _, _ := testRing(t, 8, 1)
	mf := &memFile{}
	fd := install(t, fds, mf, fs.ORdWr)

	wbErr := errors.New("simulated writeback failure")
	mf.wb.Record(wbErr)

	fsync := func(user uint64, fd int) CQE {
		t.Helper()
		if err := r.Queue(SQE{Op: OpFsync, FD: fd, User: user}); err != nil {
			t.Fatal(err)
		}
		if _, err := r.Enter(nil, 1, 1); err != nil {
			t.Fatal(err)
		}
		c, ok := reapAll(r)[user]
		if !ok {
			t.Fatalf("fsync %d: no CQE", user)
		}
		return c
	}

	if c := fsync(1, fd); !errors.Is(c.Err, wbErr) {
		t.Fatalf("first fsync CQE err = %v, want the writeback failure", c.Err)
	}
	if c := fsync(2, fd); c.Err != nil {
		t.Fatalf("second fsync CQE err = %v, want nil (cursor already observed)", c.Err)
	}
	// A description opened after the report samples a cursor past it.
	late := install(t, fds, mf, fs.ORdWr)
	if c := fsync(3, late); c.Err != nil {
		t.Fatalf("late-open fsync CQE err = %v, want nil", c.Err)
	}
}

// TestRingClose: staged entries are dropped, active ones still post
// their CQEs, and every face of a closed ring says ErrClosed.
func TestRingClose(t *testing.T) {
	r, fds, _, _ := testRing(t, 8, 2)
	fd := install(t, fds, &memFile{}, fs.ORdWr)
	// Hand one batch off and let it complete.
	if err := r.Queue(SQE{Op: OpPwrite, FD: fd, Off: 0, Buf: []byte("z"), User: 1}); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Enter(nil, 1, 1); err != nil {
		t.Fatal(err)
	}
	// Stage one more but never enter: Close drops it.
	if err := r.Queue(SQE{Op: OpPwrite, FD: fd, Off: 1, Buf: []byte("q"), User: 2}); err != nil {
		t.Fatal(err)
	}
	if err := r.Close(nil); err != nil {
		t.Fatal(err)
	}
	cqes := reapAll(r) // reaping a closed ring's leftovers still works
	if _, ok := cqes[1]; !ok {
		t.Fatal("completed CQE lost across Close")
	}
	if _, ok := cqes[2]; ok {
		t.Fatal("staged-but-never-entered SQE completed after Close")
	}
	if err := r.Queue(SQE{Op: OpNop}); !errors.Is(err, ErrClosed) {
		t.Fatalf("Queue after close = %v", err)
	}
	if _, err := r.Enter(nil, 0, 0); !errors.Is(err, ErrClosed) {
		t.Fatalf("Enter after close = %v", err)
	}
	if err := r.Close(nil); !errors.Is(err, ErrClosed) {
		t.Fatalf("double Close = %v", err)
	}
}

// TestRingNew rejects bad configurations.
func TestRingNew(t *testing.T) {
	fds := fs.NewFDTable(4)
	spawn := func(string, func(*sched.Task)) *sched.Task { return nil }
	if _, err := New(0, fds, Options{Spawn: spawn}); !errors.Is(err, ErrBadEntries) {
		t.Fatalf("entries 0: %v", err)
	}
	if _, err := New(MaxEntries+1, fds, Options{Spawn: spawn}); !errors.Is(err, ErrBadEntries) {
		t.Fatalf("entries over max: %v", err)
	}
	if _, err := New(8, nil, Options{Spawn: spawn}); err == nil {
		t.Fatal("nil fd table accepted")
	}
	if _, err := New(8, fds, Options{}); err == nil {
		t.Fatal("missing Spawn accepted")
	}
}

// TestRingHotLoopAllocs: the SQE/CQE slots are pooled at New, so a full
// queue→enter→reap batch allocates far less than one allocation per
// operation (the residue is scheduler wait-queue bookkeeping, not ring
// slots).
func TestRingHotLoopAllocs(t *testing.T) {
	r, _, _, _ := testRing(t, 64, 4)
	// Warm up: first drains grow the wait-queue slices once.
	for warm := 0; warm < 3; warm++ {
		for i := 0; i < 64; i++ {
			if err := r.Queue(SQE{Op: OpNop, User: uint64(i)}); err != nil {
				t.Fatal(err)
			}
		}
		if _, err := r.Enter(nil, 64, 64); err != nil {
			t.Fatal(err)
		}
		reapAll(r)
	}
	avg := testing.AllocsPerRun(10, func() {
		for i := 0; i < 64; i++ {
			r.Queue(SQE{Op: OpNop, User: uint64(i)})
		}
		r.Enter(nil, 64, 64)
		for {
			if _, ok := r.Reap(); !ok {
				break
			}
		}
	})
	// AllocsPerRun sees every goroutine, workers included; the budget is
	// half an allocation per op — pooled slots keep the ring itself at
	// zero, only cross-task wakeup bookkeeping remains.
	if avg > 32 {
		t.Fatalf("64-op batch averaged %.1f allocs, want <= 32 (pooled slots)", avg)
	}
}
