package kernel

import (
	"errors"

	"protosim/internal/kernel/fs"
	"protosim/internal/kernel/net"
)

// Host addresses on the simulated two-node network: the board NIC is one
// end of the link, the peer NIC (driven by a host-side stack in tests and
// workloads) is the other.
const (
	// NetLocalHost is the kernel stack's address.
	NetLocalHost uint16 = 1
	// NetPeerHost is the conventional address of a stack on Machine.PeerNIC.
	NetPeerHost uint16 = 2
)

// Network syscall errors.
var (
	// ErrNoNet: the network stack is not enabled in this prototype.
	ErrNoNet = errors.New("kernel: network not enabled in this prototype")
	// ErrNotSocket: a socket syscall on a descriptor that is not a socket.
	ErrNotSocket = errors.New("kernel: not a socket")
)

// --- Socket syscalls ---
//
// A socket descriptor is an ordinary *fs.OpenFile over a *net.Socket
// (Caps() == 0, a stream file like a pipe end): read/write/close/dup/fork
// sharing all go through the generic descriptor layer with zero
// socket-specific branches. Only the six calls below know what a socket
// is, because only they speak addresses and connection state.

// socketFD resolves fd to its socket, or ErrNotSocket for any other file.
func (p *Proc) socketFD(fd int) (*net.Socket, error) {
	of, err := p.fds.Get(fd)
	if err != nil {
		return nil, err
	}
	sk, ok := of.Ops().(*net.Socket)
	if !ok {
		return nil, ErrNotSocket
	}
	return sk, nil
}

// SysSocket mints an unbound stream socket and returns its descriptor.
func (p *Proc) SysSocket() (int, error) {
	p.k.count()
	if p.fds == nil {
		return -1, ErrNoFiles
	}
	if p.k.Net == nil {
		return -1, ErrNoNet
	}
	return p.installOF(p.k.Net.NewSocket(), fs.ORdWr)
}

// SysBind reserves a local port for the socket (0 picks an ephemeral
// port; the choice is visible through net.Socket addresses in /proc/net).
func (p *Proc) SysBind(fd int, port uint16) error {
	p.k.count()
	if p.fds == nil {
		return ErrNoFiles
	}
	sk, err := p.socketFD(fd)
	if err != nil {
		return err
	}
	return sk.Bind(p.Task, port)
}

// SysListen turns a bound socket passive with the given backlog.
func (p *Proc) SysListen(fd int, backlog int) error {
	p.k.count()
	if p.fds == nil {
		return ErrNoFiles
	}
	sk, err := p.socketFD(fd)
	if err != nil {
		return err
	}
	return sk.Listen(p.Task, backlog)
}

// SysAccept blocks for the next handshake-complete connection and
// returns its descriptor.
func (p *Proc) SysAccept(fd int) (int, error) {
	p.k.count()
	if p.fds == nil {
		return -1, ErrNoFiles
	}
	sk, err := p.socketFD(fd)
	if err != nil {
		return -1, err
	}
	defer p.Task.CheckPreempt()
	conn, err := sk.Accept(p.Task)
	if err != nil {
		return -1, err
	}
	nfd, err := p.installOF(conn, fs.ORdWr)
	if err != nil {
		return -1, err
	}
	return nfd, nil
}

// SysConnect dials host:port, blocking until the handshake completes or
// the peer refuses.
func (p *Proc) SysConnect(fd int, host, port uint16) error {
	p.k.count()
	if p.fds == nil {
		return ErrNoFiles
	}
	sk, err := p.socketFD(fd)
	if err != nil {
		return err
	}
	defer p.Task.CheckPreempt()
	return sk.Connect(p.Task, net.Addr{Host: host, Port: port})
}

// SysShutdown ends one or both directions of a connected socket
// (net.ShutRD, net.ShutWR, net.ShutRDWR).
func (p *Proc) SysShutdown(fd int, how int) error {
	p.k.count()
	if p.fds == nil {
		return ErrNoFiles
	}
	sk, err := p.socketFD(fd)
	if err != nil {
		return err
	}
	defer p.Task.CheckPreempt()
	return sk.Shutdown(p.Task, how)
}
