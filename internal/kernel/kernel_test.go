package kernel

import (
	"errors"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"protosim/internal/hw"
	"protosim/internal/kernel/fs"
	"protosim/internal/kernel/mm"
	"protosim/internal/kernel/wm"
	"protosim/internal/kernel/xv6fs"
	"protosim/internal/uelf"
)

// testMachine returns a small, fast board.
func testMachine(cores int) *hw.Machine {
	cfg := hw.DefaultConfig()
	cfg.Cores = cores
	cfg.MemBytes = 32 << 20
	cfg.SDBlocks = 8192
	cfg.FBWidth, cfg.FBHeight = 320, 240
	m := hw.NewMachine(cfg)
	m.SD.SetLatencyScale(0)
	return m
}

// fullConfig is a Prototype 5-class kernel.
func fullConfig(m *hw.Machine, ramdisk []byte) Config {
	return Config{
		Machine:       m,
		Mode:          ModeProto,
		EnableVM:      true,
		EnableFiles:   true,
		EnableUSB:     true,
		EnableSound:   true,
		EnableThreads: true,
		EnableTrace:   true,
		RamdiskImage:  ramdisk,
		TickInterval:  2 * time.Millisecond,
	}
}

// bootKernel boots a full kernel with a ramdisk containing the given files.
func bootKernel(t *testing.T, cores int, files map[string][]byte) *Kernel {
	t.Helper()
	m := testMachine(cores)
	rd, err := xv6fs.BuildImage(2048, 128, files)
	if err != nil {
		t.Fatal(err)
	}
	k := New(fullConfig(m, rd.Image()))
	if err := k.Boot(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if err := k.Shutdown(); err != nil {
			t.Errorf("shutdown: %v", err)
		}
	})
	return k
}

// run launches fn as a process and waits for it to finish.
func run(t *testing.T, k *Kernel, name string, fn Program) int {
	t.Helper()
	code := make(chan int, 1)
	k.Spawn(name, 0, func(p *Proc, argv []string) int {
		c := fn(p, argv)
		code <- c
		return c
	}, nil)
	select {
	case c := <-code:
		return c
	case <-time.After(20 * time.Second):
		t.Fatalf("process %s never finished", name)
		return -1
	}
}

func TestBootFullKernel(t *testing.T) {
	k := bootKernel(t, 4, map[string][]byte{"/etc/motd": []byte("hi")})
	if !strings.Contains(k.Transcript(), "boot complete") {
		t.Fatalf("transcript = %q", k.Transcript())
	}
	if k.RootFS == nil || k.DevFS == nil || k.ProcFS == nil {
		t.Fatal("filesystems missing")
	}
	if k.BootDuration() <= 0 {
		t.Fatal("no boot duration")
	}
}

func TestSyscallBasics(t *testing.T) {
	k := bootKernel(t, 2, map[string][]byte{"/hello.txt": []byte("file content")})
	code := run(t, k, "basics", func(p *Proc, _ []string) int {
		if p.SysGetPID() <= 0 {
			return 1
		}
		fd, err := p.SysOpen("/hello.txt", fs.ORdOnly)
		if err != nil {
			return 2
		}
		buf := make([]byte, 32)
		n, err := p.SysRead(fd, buf)
		if err != nil || string(buf[:n]) != "file content" {
			return 3
		}
		if err := p.SysClose(fd); err != nil {
			return 4
		}
		if _, err := p.SysOpen("/absent", fs.ORdOnly); !errors.Is(err, fs.ErrNotFound) {
			return 5
		}
		up := p.SysUptime()
		p.SysSleep(5)
		if p.SysUptime() <= up {
			return 6
		}
		return 0
	})
	if code != 0 {
		t.Fatalf("exit = %d", code)
	}
	if k.SyscallCount() == 0 {
		t.Fatal("no syscalls counted")
	}
}

func TestSbrkAndUserMemory(t *testing.T) {
	k := bootKernel(t, 2, nil)
	code := run(t, k, "sbrk", func(p *Proc, _ []string) int {
		old, err := p.SysSbrk(3 * mm.PageSize)
		if err != nil {
			return 1
		}
		data := []byte("heap bytes across pages")
		if err := p.AddressSpace().WriteAt(old+mm.PageSize-4, data); err != nil {
			return 2
		}
		back := make([]byte, len(data))
		if err := p.AddressSpace().ReadAt(old+mm.PageSize-4, back); err != nil {
			return 3
		}
		if string(back) != string(data) {
			return 4
		}
		return 0
	})
	if code != 0 {
		t.Fatalf("exit = %d", code)
	}
}

func TestForkWaitExit(t *testing.T) {
	k := bootKernel(t, 2, nil)
	code := run(t, k, "parent", func(p *Proc, _ []string) int {
		pid, err := p.SysFork(func(c *Proc) {
			c.SysSleep(2)
			c.SysExit(42)
		})
		if err != nil {
			return 1
		}
		gotPID, status, err := p.SysWait()
		if err != nil || gotPID != pid || status != 42 {
			return 2
		}
		if _, _, err := p.SysWait(); !errors.Is(err, ErrNoKids) {
			return 3
		}
		return 0
	})
	if code != 0 {
		t.Fatalf("exit = %d", code)
	}
}

func TestForkIsolatesMemory(t *testing.T) {
	k := bootKernel(t, 2, nil)
	code := run(t, k, "isolate", func(p *Proc, _ []string) int {
		old, _ := p.SysSbrk(mm.PageSize)
		p.AddressSpace().WriteAt(old, []byte("parent"))
		childSaw := make(chan string, 1)
		p.SysFork(func(c *Proc) {
			b := make([]byte, 6)
			c.AddressSpace().ReadAt(old, b)
			childSaw <- string(b)
			c.AddressSpace().WriteAt(old, []byte("child!"))
		})
		p.SysWait()
		if got := <-childSaw; got != "parent" {
			return 1
		}
		b := make([]byte, 6)
		p.AddressSpace().ReadAt(old, b)
		if string(b) != "parent" {
			return 2 // child write leaked into parent
		}
		return 0
	})
	if code != 0 {
		t.Fatalf("exit = %d", code)
	}
}

func TestExecLoadsELF(t *testing.T) {
	elf := uelf.Build("greeter", []byte("payload!"), 4096)
	k := bootKernel(t, 2, map[string][]byte{"/bin/greeter": elf})
	var ranArgs atomic.Value
	k.RegisterProgram("greeter", func(p *Proc, argv []string) int {
		ranArgs.Store(strings.Join(argv, " "))
		// The data segment must be mapped and readable.
		img, _ := uelf.Parse(elf)
		b := make([]byte, 8)
		if err := p.AddressSpace().ReadAt(img.Segments[1].Vaddr, b); err != nil {
			return 9
		}
		if string(b) != "payload!" {
			return 8
		}
		return 7
	})
	code := run(t, k, "execer", func(p *Proc, _ []string) int {
		var childStatus int
		p.SysFork(func(c *Proc) {
			if err := c.SysExec("/bin/greeter", []string{"greeter", "-v"}); err != nil {
				c.SysExit(99)
			}
		})
		_, childStatus, _ = p.SysWait()
		return childStatus
	})
	if code != 7 {
		t.Fatalf("exec'd program exit = %d", code)
	}
	if got := ranArgs.Load(); got != "greeter -v" {
		t.Fatalf("argv = %v", got)
	}
}

func TestExecRejectsGarbageELF(t *testing.T) {
	k := bootKernel(t, 2, map[string][]byte{"/bin/bad": []byte("MZ not an elf")})
	code := run(t, k, "badexec", func(p *Proc, _ []string) int {
		if err := p.SysExec("/bin/bad", nil); err == nil {
			return 1
		}
		return 0
	})
	if code != 0 {
		t.Fatal("garbage ELF exec'd")
	}
}

func TestPipesBetweenProcesses(t *testing.T) {
	k := bootKernel(t, 2, nil)
	code := run(t, k, "piper", func(p *Proc, _ []string) int {
		rfd, wfd, err := p.SysPipe()
		if err != nil {
			return 1
		}
		p.SysFork(func(c *Proc) {
			c.SysWrite(wfd, []byte("through the pipe"))
			c.SysClose(wfd)
			c.SysClose(rfd)
		})
		p.SysClose(wfd)
		buf := make([]byte, 64)
		var all []byte
		for {
			n, err := p.SysRead(rfd, buf)
			if err != nil || n == 0 {
				break
			}
			all = append(all, buf[:n]...)
		}
		p.SysWait()
		if string(all) != "through the pipe" {
			return 2
		}
		return 0
	})
	if code != 0 {
		t.Fatalf("exit = %d", code)
	}
}

func TestCloneThreadsAndSemaphores(t *testing.T) {
	k := bootKernel(t, 4, nil)
	code := run(t, k, "threads", func(p *Proc, _ []string) int {
		done, err := p.SysSemCreate(0)
		if err != nil {
			return 1
		}
		var counter atomic.Int64
		const workers = 4
		for i := 0; i < workers; i++ {
			if _, err := p.SysClone("worker", func(tp *Proc) {
				for j := 0; j < 1000; j++ {
					counter.Add(1)
					if j%256 == 0 {
						tp.Checkpoint()
					}
				}
				tp.SysSemPost(done)
			}); err != nil {
				return 2
			}
		}
		for i := 0; i < workers; i++ {
			p.SysSemWait(done)
		}
		if counter.Load() != workers*1000 {
			return 3
		}
		return 0
	})
	if code != 0 {
		t.Fatalf("exit = %d", code)
	}
}

func TestThreadsShareAddressSpace(t *testing.T) {
	k := bootKernel(t, 2, nil)
	code := run(t, k, "sharemem", func(p *Proc, _ []string) int {
		old, _ := p.SysSbrk(mm.PageSize)
		done, _ := p.SysSemCreate(0)
		p.SysClone("writer", func(tp *Proc) {
			tp.AddressSpace().WriteAt(old, []byte("thread"))
			tp.SysSemPost(done)
		})
		p.SysSemWait(done)
		b := make([]byte, 6)
		p.AddressSpace().ReadAt(old, b)
		if string(b) != "thread" {
			return 1 // CLONE_VM broken
		}
		return 0
	})
	if code != 0 {
		t.Fatalf("exit = %d", code)
	}
}

func TestDevConsoleAndProcFS(t *testing.T) {
	k := bootKernel(t, 2, nil)
	code := run(t, k, "proc", func(p *Proc, _ []string) int {
		fd, err := p.SysOpen("/proc/meminfo", fs.ORdOnly)
		if err != nil {
			return 1
		}
		buf := make([]byte, 256)
		n, _ := p.SysRead(fd, buf)
		if !strings.Contains(string(buf[:n]), "MemTotal") {
			return 2
		}
		p.SysClose(fd)
		cfd, err := p.SysOpen("/dev/console", fs.OWrOnly)
		if err != nil {
			return 3
		}
		p.SysWrite(cfd, []byte("hello console\n"))
		return 0
	})
	if code != 0 {
		t.Fatalf("exit = %d", code)
	}
	if !strings.Contains(k.Transcript(), "hello console") {
		t.Fatal("console write did not reach UART")
	}
}

// TestProcMountsAndFaultCounters pins the degraded-mount proc surface:
// /proc/mounts lists each filesystem rw and undegraded on a healthy boot,
// and /proc/diskstats carries the queue's fault counters and the cache's
// give-up/read-retry counters.
func TestProcMountsAndFaultCounters(t *testing.T) {
	k := bootKernel(t, 2, nil)
	readProc := func(p *Proc, path string) (string, int) {
		fd, err := p.SysOpen(path, fs.ORdOnly)
		if err != nil {
			return "", 1
		}
		defer p.SysClose(fd)
		buf := make([]byte, 4096)
		n, _ := p.SysRead(fd, buf)
		return string(buf[:n]), 0
	}
	code := run(t, k, "mounts", func(p *Proc, _ []string) int {
		mounts, rc := readProc(p, "/proc/mounts")
		if rc != 0 {
			return rc
		}
		if !strings.Contains(mounts, "rd0 / xv6fs rw=true degraded=false") {
			return 2
		}
		stats, rc := readProc(p, "/proc/diskstats")
		if rc != 0 {
			return rc
		}
		for _, field := range []string{"retries=", "cmd_timeouts=", "splits=", "dead=false", "give_ups=", "read_retries="} {
			if !strings.Contains(stats, field) {
				return 3
			}
		}
		return 0
	})
	if code != 0 {
		t.Fatalf("exit = %d", code)
	}
}

func TestKeyboardToDevEvents(t *testing.T) {
	k := bootKernel(t, 2, nil)
	kbd := k.Machine().USB.AttachKeyboard()
	_ = kbd
	// The keyboard was attached after boot; re-init the driver.
	if err := k.initKeyboard(); err != nil {
		t.Fatal(err)
	}
	code := run(t, k, "events", func(p *Proc, _ []string) int {
		fd, err := p.SysOpen("/dev/events", fs.ORdOnly)
		if err != nil {
			return 1
		}
		go func() {
			time.Sleep(5 * time.Millisecond)
			kbd.Tap(hw.UsageA)
		}()
		buf := make([]byte, wm.EventSize)
		if _, err := p.SysRead(fd, buf); err != nil {
			return 2
		}
		e, ok := wm.DecodeEvent(buf)
		if !ok || !e.Down || e.ASCII != 'a' {
			return 3
		}
		// The release event follows.
		p.SysRead(fd, buf)
		if e, _ := wm.DecodeEvent(buf); e.Down {
			return 4
		}
		return 0
	})
	if code != 0 {
		t.Fatalf("exit = %d", code)
	}
}

func TestNonblockingEvents(t *testing.T) {
	k := bootKernel(t, 2, nil)
	k.Machine().USB.AttachKeyboard()
	if err := k.initKeyboard(); err != nil {
		t.Fatal(err)
	}
	code := run(t, k, "nb", func(p *Proc, _ []string) int {
		fd, err := p.SysOpen("/dev/events", fs.ORdOnly|fs.ONonblock)
		if err != nil {
			return 1
		}
		buf := make([]byte, wm.EventSize)
		if _, err := p.SysRead(fd, buf); !errors.Is(err, fs.ErrWouldBlock) {
			return 2
		}
		return 0
	})
	if code != 0 {
		t.Fatalf("exit = %d", code)
	}
}

func TestSoundPipelineViaDevSB(t *testing.T) {
	k := bootKernel(t, 2, nil)
	code := run(t, k, "audio", func(p *Proc, _ []string) int {
		fd, err := p.SysOpen("/dev/sb", fs.OWrOnly)
		if err != nil {
			return 1
		}
		// A second of square wave, written in chunks: exercises the ring,
		// DMA kicks, and back-pressure.
		chunk := make([]byte, 4096)
		for i := 0; i < len(chunk); i += 2 {
			v := int16(6000)
			if (i/2)%64 < 32 {
				v = -6000
			}
			chunk[i] = byte(uint16(v))
			chunk[i+1] = byte(uint16(v) >> 8)
		}
		for i := 0; i < 40; i++ {
			if _, err := p.SysWrite(fd, chunk); err != nil {
				return 2
			}
		}
		if _, err := p.SysIoctl(fd, IoctlSoundDrain, 0); err != nil {
			return 3
		}
		return 0
	})
	if code != 0 {
		t.Fatalf("exit = %d", code)
	}
	consumed, _, energy := k.Machine().PWM.Stats()
	if consumed == 0 || energy == 0 {
		t.Fatalf("no audio reached the PWM (consumed=%d energy=%f)", consumed, energy)
	}
	xfers, _ := k.Machine().DMA.Stats()
	if xfers < 2 {
		t.Fatalf("DMA transfers = %d; pipeline not chunking", xfers)
	}
}

func TestFramebufferMapAndCacheFlush(t *testing.T) {
	k := bootKernel(t, 2, nil)
	code := run(t, k, "fbapp", func(p *Proc, _ []string) int {
		px, err := p.MapFramebuffer()
		if err != nil {
			return 1
		}
		for i := 0; i < 64; i++ {
			px[i] = 0x7F
		}
		// Without a flush the panel must NOT see it (the §4.3 artifact).
		if k.FB.PixelAt(0, 0) == 0x7F7F7F7F {
			return 2
		}
		if err := p.SysCacheFlush(0, 64); err != nil {
			return 3
		}
		if k.FB.PixelAt(0, 0) != 0x7F7F7F7F {
			return 4
		}
		return 0
	})
	if code != 0 {
		t.Fatalf("exit = %d", code)
	}
}

func TestFATMountAndLargeFile(t *testing.T) {
	m := testMachine(2)
	// Put a FAT32 filesystem on the SD card first.
	sd := sdBlockDev{m.SD}
	if err := fat32Mkfs(sd); err != nil {
		t.Fatal(err)
	}
	rd, _ := xv6fs.BuildImage(1024, 64, nil)
	cfg := fullConfig(m, rd.Image())
	cfg.EnableFAT = true
	k := New(cfg)
	if err := k.Boot(); err != nil {
		t.Fatal(err)
	}
	defer k.Shutdown()
	code := run(t, k, "fatapp", func(p *Proc, _ []string) int {
		fd, err := p.SysOpen("/d/movie.mpv", fs.OCreate|fs.ORdWr)
		if err != nil {
			return 1
		}
		big := make([]byte, 600<<10) // way past xv6fs's 268 KB limit
		for i := range big {
			big[i] = byte(i)
		}
		if _, err := p.SysWrite(fd, big); err != nil {
			return 2
		}
		if _, err := p.SysLseek(fd, 0, fs.SeekSet); err != nil {
			return 3
		}
		got := make([]byte, len(big))
		read := 0
		for read < len(got) {
			n, err := p.SysRead(fd, got[read:])
			if err != nil || n == 0 {
				break
			}
			read += n
		}
		if read != len(big) {
			return 4
		}
		for i := range got {
			if got[i] != byte(i) {
				return 5
			}
		}
		// Meanwhile the root filesystem still enforces its cap.
		rfd, err := p.SysOpen("/toobig", fs.OCreate|fs.OWrOnly)
		if err != nil {
			return 6
		}
		if _, err := p.SysWrite(rfd, big); !errors.Is(err, fs.ErrFileTooBig) {
			return 7
		}
		return 0
	})
	if code != 0 {
		t.Fatalf("exit = %d", code)
	}
}

func TestSurfaceAndWM(t *testing.T) {
	m := testMachine(2)
	rd, _ := xv6fs.BuildImage(1024, 64, nil)
	cfg := fullConfig(m, rd.Image())
	cfg.EnableWM = true
	k := New(cfg)
	if err := k.Boot(); err != nil {
		t.Fatal(err)
	}
	defer k.Shutdown()
	code := run(t, k, "winapp", func(p *Proc, _ []string) int {
		sfd, err := p.OpenSurface("test", 64, 48)
		if err != nil {
			return 1
		}
		frame := make([]byte, 64*48*4)
		for i := 0; i < len(frame); i += 4 {
			frame[i+2] = 0xEE // red
			frame[i+3] = 0xFF
		}
		if _, err := p.SysWrite(sfd, frame); err != nil {
			return 2
		}
		// Wait for the WM kernel thread to composite.
		deadline := time.Now().Add(5 * time.Second)
		s := p.Surface()
		x, y := s.Pos()
		for time.Now().Before(deadline) {
			if px := k.FB.PixelAt(x+5, y+5); px&0xFF0000 == 0xEE0000 {
				return 0
			}
			p.SysSleep(5)
		}
		return 3
	})
	if code != 0 {
		t.Fatalf("exit = %d", code)
	}
}

func TestCrashingTaskKillsOnlyItself(t *testing.T) {
	k := bootKernel(t, 2, nil)
	crashed := make(chan struct{})
	k.Spawn("crasher", 0, func(p *Proc, _ []string) int {
		defer close(crashed)
		// Access way outside any mapping: the fault storm/segfault path
		// terminates the task via Go panic -> oops.
		err := p.AddressSpace().WriteAt(0x3000_0000, []byte{1})
		if err != nil {
			panic(err) // simulate the hardware fault killing the task
		}
		return 0
	}, nil)
	select {
	case <-crashed:
	case <-time.After(5 * time.Second):
		t.Fatal("crasher still alive")
	}
	time.Sleep(10 * time.Millisecond)
	if !strings.Contains(k.Transcript(), "oops") {
		t.Fatalf("no oops in transcript: %q", k.Transcript())
	}
	// The kernel survives.
	if code := run(t, k, "after", func(p *Proc, _ []string) int { return 0 }); code != 0 {
		t.Fatal("kernel unusable after task crash")
	}
}

func TestPanicButtonDumpsAllCores(t *testing.T) {
	k := bootKernel(t, 4, nil)
	// Wedge two tasks in compute loops.
	stop := make(chan struct{})
	defer close(stop)
	for i := 0; i < 2; i++ {
		k.Spawn("wedge", 0, func(p *Proc, _ []string) int {
			for {
				select {
				case <-stop:
					return 0
				default:
					p.Checkpoint()
				}
			}
		}, nil)
	}
	time.Sleep(5 * time.Millisecond)
	k.Machine().GPIO.Press(hw.PinPanic)
	if k.PanicDumps() != 1 {
		t.Fatalf("panic dumps = %d", k.PanicDumps())
	}
	tr := k.Transcript()
	if !strings.Contains(tr, "PANIC BUTTON") || !strings.Contains(tr, "cpu0") || !strings.Contains(tr, "cpu3") {
		t.Fatalf("dump missing cores: %q", tr)
	}
	k.Machine().GPIO.Release(hw.PinPanic)
}

func TestPrototypeGating(t *testing.T) {
	// A kernel without threads must refuse clone and semaphores.
	m := testMachine(1)
	rd, _ := xv6fs.BuildImage(512, 64, nil)
	cfg := fullConfig(m, rd.Image())
	cfg.EnableThreads = false
	k := New(cfg)
	if err := k.Boot(); err != nil {
		t.Fatal(err)
	}
	defer k.Shutdown()
	code := run(t, k, "gated", func(p *Proc, _ []string) int {
		if _, err := p.SysClone("x", func(*Proc) {}); !errors.Is(err, ErrNoThreads) {
			return 1
		}
		if _, err := p.SysSemCreate(0); !errors.Is(err, ErrNoThreads) {
			return 2
		}
		return 0
	})
	if code != 0 {
		t.Fatalf("exit = %d", code)
	}
}

func TestChdirAndRelativePaths(t *testing.T) {
	k := bootKernel(t, 2, map[string][]byte{"/home/docs/a.txt": []byte("A")})
	code := run(t, k, "chdir", func(p *Proc, _ []string) int {
		if err := p.SysChdir("/home/docs"); err != nil {
			return 1
		}
		fd, err := p.SysOpen("a.txt", fs.ORdOnly)
		if err != nil {
			return 2
		}
		b := make([]byte, 1)
		p.SysRead(fd, b)
		if b[0] != 'A' {
			return 3
		}
		if err := p.SysChdir("/home/docs/a.txt"); !errors.Is(err, fs.ErrNotDir) {
			return 4
		}
		return 0
	})
	if code != 0 {
		t.Fatalf("exit = %d", code)
	}
}

// fat32Mkfs formats the SD for TestFATMountAndLargeFile (avoids an import
// cycle of convenience helpers).
func fat32Mkfs(dev fs.BlockDevice) error {
	return fat32MkfsFn(dev)
}

// fat32MkfsFn indirection so the test file reads naturally.
var fat32MkfsFn = func(dev fs.BlockDevice) error {
	return fat32Format(dev)
}
