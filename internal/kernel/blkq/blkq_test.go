package blkq

import (
	"bytes"
	"errors"
	"sync"
	"testing"
	"time"

	"protosim/internal/hw"
	"protosim/internal/kernel/fs"
	"protosim/internal/kernel/sched"
)

// cmdDev records every device command for merge/order assertions.
type cmdDev struct {
	fs.BlockDevice
	mu     sync.Mutex
	reads  [][2]int
	writes [][2]int
}

func (d *cmdDev) ReadBlocks(lba, n int, dst []byte) error {
	d.mu.Lock()
	d.reads = append(d.reads, [2]int{lba, n})
	d.mu.Unlock()
	return d.BlockDevice.ReadBlocks(lba, n, dst)
}

func (d *cmdDev) WriteBlocks(lba, n int, src []byte) error {
	d.mu.Lock()
	d.writes = append(d.writes, [2]int{lba, n})
	d.mu.Unlock()
	return d.BlockDevice.WriteBlocks(lba, n, src)
}

func (d *cmdDev) writeCmds() [][2]int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return append([][2]int(nil), d.writes...)
}

func TestSyncDeviceReadWrite(t *testing.T) {
	rd := fs.NewRamdisk(512, 64)
	q := New(rd, Options{})
	src := make([]byte, 4*512)
	for i := range src {
		src[i] = byte(i * 11)
	}
	if err := q.WriteBlocks(8, 4, src); err != nil {
		t.Fatal(err)
	}
	dst := make([]byte, 4*512)
	if err := q.ReadBlocks(8, 4, dst); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(dst, src) {
		t.Fatal("queue round-trip corrupted data")
	}
	if err := q.ReadBlocks(-1, 1, dst); err == nil {
		t.Fatal("bad range accepted")
	}
	if err := q.ReadBlocks(0, 1, dst[:10]); err == nil {
		t.Fatal("short buffer accepted")
	}
}

// TestPlugMergesAdjacentWrites: writes submitted under a plug merge into
// one device command, ordered by LBA regardless of submission order.
func TestPlugMergesAdjacentWrites(t *testing.T) {
	dev := &cmdDev{BlockDevice: fs.NewRamdisk(512, 64)}
	q := New(dev, Options{})
	bufs := make([][]byte, 8)
	for i := range bufs {
		bufs[i] = bytes.Repeat([]byte{byte(0x10 + i)}, 512)
	}
	q.Plug(nil)
	var tks []fs.BlockTicket
	for _, i := range []int{5, 2, 7, 0, 3, 6, 1, 4} { // scrambled order
		tk, err := q.SubmitWrite(nil, 10+i, 1, bufs[i])
		if err != nil {
			t.Fatal(err)
		}
		tks = append(tks, tk)
	}
	q.Unplug(nil)
	for _, tk := range tks {
		if err := tk.Wait(nil); err != nil {
			t.Fatal(err)
		}
	}
	if cmds := dev.writeCmds(); len(cmds) != 1 || cmds[0] != [2]int{10, 8} {
		t.Fatalf("8 adjacent writes dispatched as %v, want one [10 8] command", cmds)
	}
	raw := make([]byte, 512)
	for i := 0; i < 8; i++ {
		dev.BlockDevice.ReadBlocks(10+i, 1, raw)
		if raw[0] != byte(0x10+i) {
			t.Fatalf("block %d holds %#x after merged write", 10+i, raw[0])
		}
	}
	sub, disp, merged, _, _ := q.Stats()
	if sub != 8 || disp != 1 || merged != 7 {
		t.Fatalf("stats submitted=%d dispatched=%d merged=%d, want 8/1/7", sub, disp, merged)
	}
}

// TestAnticipatoryPlugMergesLoneSubmitter is the lone-sequential-writer
// contract: per-block submissions trickling into an idle queue with no
// explicit plug dispatch solo when anticipatory plugging is off, but
// accumulate in the anticipatory window and go out as one merged command
// when it is on — with the first Wait releasing the window, so the
// submitter never pays the full delay.
func TestAnticipatoryPlugMergesLoneSubmitter(t *testing.T) {
	run := func(delay time.Duration) (cmds int, hits int64) {
		dev := &cmdDev{BlockDevice: fs.NewRamdisk(512, 64)}
		q := New(dev, Options{PlugDelay: delay})
		buf := make([]byte, 512)
		var tks []fs.BlockTicket
		for i := 0; i < 8; i++ {
			tk, err := q.SubmitWrite(nil, 10+i, 1, buf)
			if err != nil {
				t.Fatal(err)
			}
			tks = append(tks, tk)
		}
		for _, tk := range tks {
			if err := tk.Wait(nil); err != nil {
				t.Fatal(err)
			}
		}
		h, _ := q.PlugStats()
		return len(dev.writeCmds()), h
	}
	// Window deliberately enormous: if the waiter-release path were
	// broken, the test would hang instead of silently passing slow.
	plugged, hits := run(time.Minute)
	if plugged != 1 {
		t.Fatalf("anticipatory plug dispatched %d commands for a lone writer's burst, want 1", plugged)
	}
	if hits != 7 {
		t.Fatalf("plug hits = %d, want 7 (every follow-up request rode the window)", hits)
	}
	solo, _ := run(-1)
	if solo != 8 {
		t.Fatalf("disabled plugging dispatched %d commands, want 8 solo (nothing else merges a lone submitter)", solo)
	}
}

// TestAnticipatoryPlugTimeout: a lone request whose submitter never waits
// must still dispatch — the window expires on its timer and counts as a
// plug timeout.
func TestAnticipatoryPlugTimeout(t *testing.T) {
	dev := &cmdDev{BlockDevice: fs.NewRamdisk(512, 64)}
	q := New(dev, Options{PlugDelay: 2 * time.Millisecond})
	if _, err := q.SubmitWrite(nil, 5, 1, make([]byte, 512)); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for len(dev.writeCmds()) == 0 {
		if time.Now().After(deadline) {
			t.Fatal("window never expired: the fire-and-forget request is stuck")
		}
		time.Sleep(100 * time.Microsecond)
	}
	if _, timeouts := q.PlugStats(); timeouts != 1 {
		t.Fatalf("plug timeouts = %d, want 1", timeouts)
	}
}

// TestExplicitPlugBypassesAnticipatoryDelay: a Plug/Unplug bracket is an
// explicit batch — Unplug dispatches it immediately, it never waits out
// PlugDelay (set here to a minute: any accidental wait would hang the
// test), and no anticipatory window opens or expires around it.
func TestExplicitPlugBypassesAnticipatoryDelay(t *testing.T) {
	dev := &cmdDev{BlockDevice: fs.NewRamdisk(512, 64)}
	q := New(dev, Options{PlugDelay: time.Minute})
	buf := make([]byte, 512)
	q.Plug(nil)
	var tks []fs.BlockTicket
	for i := 0; i < 4; i++ {
		tk, err := q.SubmitWrite(nil, 20+i, 1, buf)
		if err != nil {
			t.Fatal(err)
		}
		tks = append(tks, tk)
	}
	q.Unplug(nil)
	// Synchronous backend: Unplug's dispatch runs the IO inline, so the
	// command must be on the device before any ticket is waited on.
	if cmds := dev.writeCmds(); len(cmds) != 1 || cmds[0] != [2]int{20, 4} {
		t.Fatalf("explicit batch dispatched %v at Unplug, want one immediate [20 4] command", cmds)
	}
	for _, tk := range tks {
		if err := tk.Wait(nil); err != nil {
			t.Fatal(err)
		}
	}
	hits, timeouts := q.PlugStats()
	if hits != 0 || timeouts != 0 {
		t.Fatalf("explicit batch touched the anticipatory plug: hits=%d timeouts=%d", hits, timeouts)
	}
}

// TestNoMergeAcrossGapsOrDirections: non-adjacent writes and mixed
// read/write never share a command.
func TestNoMergeAcrossGapsOrDirections(t *testing.T) {
	dev := &cmdDev{BlockDevice: fs.NewRamdisk(512, 64)}
	q := New(dev, Options{})
	a := make([]byte, 512)
	b := make([]byte, 512)
	r := make([]byte, 512)
	q.Plug(nil)
	t1, _ := q.SubmitWrite(nil, 10, 1, a)
	t2, _ := q.SubmitWrite(nil, 12, 1, b) // gap at 11
	q.Unplug(nil)
	t1.Wait(nil)
	t2.Wait(nil)
	if cmds := dev.writeCmds(); len(cmds) != 2 {
		t.Fatalf("gapped writes merged: %v", cmds)
	}
	if err := q.ReadBlocks(10, 1, r); err != nil {
		t.Fatal(err)
	}
	dev.mu.Lock()
	nr := len(dev.reads)
	dev.mu.Unlock()
	if nr != 1 {
		t.Fatalf("read dispatched %d read commands", nr)
	}
}

// TestOverlappingReadsShareOneCommand: reads covering overlapping spans
// are served by one covering transfer, each getting its own slice.
func TestOverlappingReadsShareOneCommand(t *testing.T) {
	rd := fs.NewRamdisk(512, 64)
	blk := make([]byte, 512)
	for lba := 0; lba < 64; lba++ {
		blk[0] = byte(lba)
		rd.WriteBlocks(lba, 1, blk)
	}
	dev := &cmdDev{BlockDevice: rd}
	q := New(dev, Options{})
	d1 := make([]byte, 4*512)
	d2 := make([]byte, 4*512)
	q.Plug(nil)
	var wg sync.WaitGroup
	var e1, e2 error
	wg.Add(2)
	go func() { defer wg.Done(); e1 = q.ReadBlocks(20, 4, d1) }()
	go func() { defer wg.Done(); e2 = q.ReadBlocks(22, 4, d2) }()
	// Let both submissions land under the plug before releasing.
	for {
		q.mu.Lock(nil)
		n := len(q.pending)
		q.mu.Unlock()
		if n == 2 {
			break
		}
		time.Sleep(100 * time.Microsecond)
	}
	q.Unplug(nil)
	wg.Wait()
	if e1 != nil || e2 != nil {
		t.Fatal(e1, e2)
	}
	dev.mu.Lock()
	reads := append([][2]int(nil), dev.reads...)
	dev.mu.Unlock()
	if len(reads) != 1 || reads[0] != [2]int{20, 6} {
		t.Fatalf("overlapping reads dispatched %v, want one [20 6] command", reads)
	}
	for i := 0; i < 4; i++ {
		if d1[i*512] != byte(20+i) || d2[i*512] != byte(22+i) {
			t.Fatalf("scattered read data wrong at %d: %d %d", i, d1[i*512], d2[i*512])
		}
	}
}

// TestDepthBoundsInflight: a depth-1 queue never has two commands at the
// device at once.
func TestDepthBoundsInflight(t *testing.T) {
	rd := fs.NewRamdisk(512, 64)
	var cur, peak, over int64
	var mu sync.Mutex
	dev := &gateDev{BlockDevice: rd, enter: func() {
		mu.Lock()
		cur++
		if cur > peak {
			peak = cur
		}
		if cur > 1 {
			over++
		}
		mu.Unlock()
		time.Sleep(time.Millisecond)
		mu.Lock()
		cur--
		mu.Unlock()
	}}
	q := New(dev, Options{Depth: 1})
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if err := q.WriteBlocks(i*5, 1, make([]byte, 512)); err != nil {
				t.Error(err)
			}
		}(i)
	}
	wg.Wait()
	if over != 0 {
		t.Fatalf("depth-1 queue overlapped commands (peak %d)", peak)
	}
}

type gateDev struct {
	fs.BlockDevice
	enter func()
}

func (d *gateDev) WriteBlocks(lba, n int, src []byte) error {
	d.enter()
	return d.BlockDevice.WriteBlocks(lba, n, src)
}

// TestAsyncSDCompletionViaIRQ drives the split-device path end to end:
// submissions program the card, the DMA completion raises IRQSD, the IRQ
// handler drains completions and wakes the waiter.
func TestAsyncSDCompletionViaIRQ(t *testing.T) {
	ic := hw.NewIRQController(1)
	sd := hw.NewSDCard(64, ic)
	sd.SetLatencyScale(0.01)
	dev := sdDev{sd}
	q := New(dev, Options{Async: dev})
	ic.Register(hw.IRQSD, 0, func(hw.IRQLine, int) { q.CompletionIRQ() })

	src := bytes.Repeat([]byte{0xC3}, 512)
	if err := q.WriteBlocks(7, 1, src); err != nil {
		t.Fatal(err)
	}
	if ic.Count(hw.IRQSD) == 0 {
		t.Fatal("no completion IRQ fired")
	}
	dst := make([]byte, 512)
	if err := q.ReadBlocks(7, 1, dst); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(dst, src) {
		t.Fatal("async round trip corrupted data")
	}
	// Media errors surface in the completion, not the submission — and a
	// single transient failure is absorbed by the retry path, invisibly to
	// the submitter.
	sd.InjectErrors(1)
	if err := q.WriteBlocks(7, 1, src); err != nil {
		t.Fatalf("transient injected error not retried: %v", err)
	}
	if retries, _, _, dead := q.FaultStats(); retries != 1 || dead {
		t.Fatalf("retries=%d dead=%v, want 1 retry and a live device", retries, dead)
	}
	// A burst longer than the retry budget does surface.
	sd.InjectErrors(DefaultMaxRetries + 1)
	if err := q.WriteBlocks(7, 1, src); !errors.Is(err, hw.ErrSDInjected) {
		t.Fatalf("exhausted retries = %v, want ErrSDInjected", err)
	}
}

// TestTaskWaitersSleepOnSimulatedCore: a submitting task must release its
// simulated core while the transfer is in flight — another task gets CPU
// time during the wait.
func TestTaskWaitersSleepOnSimulatedCore(t *testing.T) {
	ic := hw.NewIRQController(1)
	sd := hw.NewSDCard(64, ic)
	sd.SetLatencyScale(0.5) // ~250 µs per single-block command
	dev := sdDev{sd}
	q := New(dev, Options{Async: dev})
	ic.Register(hw.IRQSD, 0, func(hw.IRQLine, int) { q.CompletionIRQ() })

	s := sched.New(sched.Config{Cores: 1})
	s.Start()
	defer s.Shutdown(5 * time.Second)

	progressed := make(chan int, 1)
	stop := make(chan struct{})
	s.Go("cpu-bound", 0, func(task *sched.Task) {
		n := 0
		for {
			select {
			case <-stop:
				progressed <- n
				return
			default:
			}
			n++
			task.Yield()
		}
	})
	done := make(chan error, 1)
	s.Go("io-bound", 0, func(task *sched.Task) {
		var err error
		buf := make([]byte, 512)
		for i := 0; i < 10 && err == nil; i++ {
			err = q.ReadBlocksT(task, i, 1, buf)
		}
		done <- err
	})
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	close(stop)
	if n := <-progressed; n < 100 {
		t.Fatalf("cpu-bound task made %d iterations during IO waits; IO task is hogging the core", n)
	}
}

// TestConcurrentMixedTraffic hammers the queue from many goroutines under
// -race: disjoint write regions, shared read region, final contents exact.
func TestConcurrentMixedTraffic(t *testing.T) {
	rd := fs.NewRamdisk(512, 512)
	q := New(rd, Options{Depth: 3})
	blk := make([]byte, 512)
	for lba := 0; lba < 64; lba++ {
		blk[0] = byte(lba)
		rd.WriteBlocks(lba, 1, blk)
	}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			base := 64 + w*32
			src := bytes.Repeat([]byte{byte(w + 1)}, 4*512)
			dst := make([]byte, 4*512)
			for r := 0; r < 50; r++ {
				if err := q.WriteBlocks(base+(r%8)*4, 4, src); err != nil {
					t.Error(err)
					return
				}
				lba := (w*7 + r) % 60
				if err := q.ReadBlocks(lba, 4, dst); err != nil {
					t.Error(err)
					return
				}
				for i := 0; i < 4; i++ {
					if dst[i*512] != byte(lba+i) {
						t.Errorf("read block %d got %d", lba+i, dst[i*512])
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	raw := make([]byte, 512)
	for w := 0; w < 8; w++ {
		rd.ReadBlocks(64+w*32, 1, raw)
		if raw[0] != byte(w+1) {
			t.Fatalf("worker %d region corrupted", w)
		}
	}
	if _, _, _, peak, _ := q.Stats(); peak > 3 {
		t.Fatalf("depth peak %d exceeds configured 3", peak)
	}
}

// sdDev adapts hw.SDCard to the queue's device interfaces.
type sdDev struct{ sd *hw.SDCard }

func (d sdDev) BlockSize() int { return hw.SDBlockSize }
func (d sdDev) Blocks() int    { return d.sd.Blocks() }
func (d sdDev) ReadBlocks(lba, n int, dst []byte) error {
	return d.sd.ReadBlocks(lba, n, dst)
}
func (d sdDev) WriteBlocks(lba, n int, src []byte) error {
	return d.sd.WriteBlocks(lba, n, src)
}
func (d sdDev) SubmitRead(tag uint64, lba, n int, dst []byte) error {
	return d.sd.SubmitRead(tag, lba, n, dst)
}
func (d sdDev) SubmitWrite(tag uint64, lba, n int, src []byte) error {
	return d.sd.SubmitWrite(tag, lba, n, src)
}
func (d sdDev) PopCompletion() (uint64, error, bool) { return d.sd.PopCompletion() }
