// Recovery-path tests: the queue over a FaultDisk. Transient faults must
// be absorbed by bounded retry, persistent bad sectors must fail only the
// requests covering them after a merged-command split, timeouts must break
// device hangs, and a dead device must fast-fail everything — submitters
// never sleep forever.
package blkq

import (
	"bytes"
	"errors"
	"testing"
	"time"

	"protosim/internal/hw"
	"protosim/internal/kernel/fs"
)

func newFaultQueue(blocks int, plan hw.FaultPlan, opts Options) (*hw.FaultDisk, *Queue) {
	fd := hw.NewFaultDisk(fs.NewRamdisk(512, blocks), plan)
	opts.Async = fd
	q := New(fd, opts)
	fd.SetNotify(func() { q.CompletionIRQ() })
	return fd, q
}

// TestTransientWriteRetriedNoDataLoss pins the acceptance criterion: a
// transient single-sector write fault is retried to success and the data
// lands intact.
func TestTransientWriteRetriedNoDataLoss(t *testing.T) {
	for _, async := range []bool{false, true} {
		fd := hw.NewFaultDisk(fs.NewRamdisk(512, 64), hw.FaultPlan{Seed: 1})
		opts := Options{PlugDelay: -1}
		if async {
			opts.Async = fd
		}
		q := New(fd, opts)
		fd.SetNotify(func() { q.CompletionIRQ() })
		// Open a 2-failure transient burst at LBA 5 (initial + one retry).
		fd.InjectTransient(5, 2)
		src := bytes.Repeat([]byte{0x5A}, 512)
		if err := q.WriteBlocks(5, 1, src); err != nil {
			t.Fatalf("async=%v: transient write fault not healed: %v", async, err)
		}
		got := make([]byte, 512)
		if err := q.ReadBlocks(5, 1, got); err != nil {
			t.Fatalf("async=%v: %v", async, err)
		}
		if !bytes.Equal(got, src) {
			t.Fatalf("async=%v: data lost across retry", async)
		}
		retries, _, _, dead := q.FaultStats()
		if retries < 2 || dead {
			t.Fatalf("async=%v: retries=%d dead=%v, want >=2 retries, live device", async, retries, dead)
		}
	}
}

// TestBadSectorSplitFailsOnlyCoveringRequests merges several adjacent
// writes into one command over a known bad sector: after the split, only
// the request covering the bad LBA fails — its merged neighbors land.
func TestBadSectorSplitFailsOnlyCoveringRequests(t *testing.T) {
	fd, q := newFaultQueue(64, hw.FaultPlan{Seed: 1}, Options{PlugDelay: -1})
	const base, nReqs, badLBA = 8, 6, 10
	fd.AddBadSector(badLBA)

	q.Plug(nil)
	tickets := make([]fs.BlockTicket, nReqs)
	bufs := make([][]byte, nReqs)
	for i := 0; i < nReqs; i++ {
		bufs[i] = bytes.Repeat([]byte{byte(0xA0 + i)}, 512)
		tk, err := q.SubmitWrite(nil, base+i, 1, bufs[i])
		if err != nil {
			t.Fatal(err)
		}
		tickets[i] = tk
	}
	q.Unplug(nil)

	for i, tk := range tickets {
		err := tk.Wait(nil)
		if base+i == badLBA {
			if !errors.Is(err, fs.ErrBadSector) {
				t.Fatalf("request over bad sector: %v, want ErrBadSector", err)
			}
			continue
		}
		if err != nil {
			t.Fatalf("merged neighbor %d failed: %v", base+i, err)
		}
	}
	if _, _, splits, dead := q.FaultStats(); splits == 0 || dead {
		t.Fatalf("splits=%d dead=%v, want a split and a live device", splits, dead)
	}
	// The neighbors' data must be on media; the bad sector's must not.
	got := make([]byte, 512)
	for i := 0; i < nReqs; i++ {
		if base+i == badLBA {
			continue
		}
		if err := q.ReadBlocks(base+i, 1, got); err != nil {
			t.Fatalf("readback %d: %v", base+i, err)
		}
		if !bytes.Equal(got, bufs[i]) {
			t.Fatalf("neighbor %d data lost in split", base+i)
		}
	}
}

// TestDeadDeviceFastFails: device death fails the in-flight and queued
// requests promptly and every later submission rejects immediately — no
// submitter sleeps forever.
func TestDeadDeviceFastFails(t *testing.T) {
	fd, q := newFaultQueue(64, hw.FaultPlan{Seed: 1}, Options{PlugDelay: -1, MaxRetries: -1})
	buf := make([]byte, 512)
	if err := q.WriteBlocks(1, 1, buf); err != nil {
		t.Fatal(err)
	}
	fd.Kill()

	done := make(chan error, 4)
	for i := 0; i < 4; i++ {
		go func(lba int) { done <- q.WriteBlocks(lba, 1, make([]byte, 512)) }(2 + i)
	}
	for i := 0; i < 4; i++ {
		select {
		case err := <-done:
			if !errors.Is(err, fs.ErrDeviceDead) {
				t.Fatalf("post-death write: %v, want ErrDeviceDead", err)
			}
		case <-time.After(5 * time.Second):
			t.Fatal("submitter hung on a dead device")
		}
	}
	if !q.Dead() {
		t.Fatal("queue did not latch the dead state")
	}
	// Future submissions fast-fail at submit time.
	if err := q.ReadBlocks(0, 1, buf); !errors.Is(err, fs.ErrDeviceDead) {
		t.Fatalf("read on dead queue: %v, want ErrDeviceDead", err)
	}
	if _, err := q.SubmitWrite(nil, 0, 1, buf); !errors.Is(err, fs.ErrDeviceDead) {
		t.Fatalf("ticket on dead queue: %v, want ErrDeviceDead", err)
	}
}

// TestStalledCommandsTimeOutToDeath: a device that swallows commands
// without ever completing them is broken by the command timeout; when
// every attempt times out the queue declares the device dead rather than
// letting the submitter wait out window after window.
func TestStalledCommandsTimeOutToDeath(t *testing.T) {
	_, q := newFaultQueue(64, hw.FaultPlan{Seed: 1, PStall: 1.0},
		Options{PlugDelay: -1, CmdTimeout: 5 * time.Millisecond, MaxRetries: 2})
	done := make(chan error, 1)
	go func() { done <- q.WriteBlocks(3, 1, make([]byte, 512)) }()
	select {
	case err := <-done:
		if !errors.Is(err, fs.ErrDeviceDead) {
			t.Fatalf("stalled write: %v, want ErrDeviceDead", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("stalled submitter never woke")
	}
	_, timeouts, _, dead := q.FaultStats()
	if timeouts < 3 || !dead {
		t.Fatalf("timeouts=%d dead=%v, want 3 timeouts then death", timeouts, dead)
	}
}

// TestTransientMergedCommandHealsWhole: a transient failure of a MERGED
// command is retried as a whole (no split) and every member succeeds.
func TestTransientMergedCommandHealsWhole(t *testing.T) {
	fd, q := newFaultQueue(64, hw.FaultPlan{Seed: 1}, Options{PlugDelay: -1})
	const base, nReqs = 16, 4
	fd.InjectTransient(base, 2)
	q.Plug(nil)
	tickets := make([]fs.BlockTicket, nReqs)
	for i := 0; i < nReqs; i++ {
		tk, err := q.SubmitWrite(nil, base+i, 1, bytes.Repeat([]byte{byte(i + 1)}, 512))
		if err != nil {
			t.Fatal(err)
		}
		tickets[i] = tk
	}
	q.Unplug(nil)
	for i, tk := range tickets {
		if err := tk.Wait(nil); err != nil {
			t.Fatalf("member %d: %v", i, err)
		}
	}
	retries, _, splits, _ := q.FaultStats()
	if retries == 0 || splits != 0 {
		t.Fatalf("retries=%d splits=%d, want retry without split", retries, splits)
	}
}
