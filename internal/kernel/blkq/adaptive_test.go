package blkq

import (
	"testing"
	"time"

	"protosim/internal/kernel/fs"
	"protosim/internal/kernel/sched"
)

// TestAdaptiveWindowSizing drives the cadence estimator directly (white
// box, no timers) through its whole policy: full window with no estimate,
// shrunken window for a fast burst, zero window once the typical gap
// exceeds the ceiling, and recovery when the submitter speeds back up.
func TestAdaptiveWindowSizing(t *testing.T) {
	const delay = time.Millisecond
	q := New(fs.NewRamdisk(512, 64), Options{PlugDelay: delay, AdaptivePlug: true})

	window := func() time.Duration {
		q.mu.Lock(nil)
		defer q.mu.Unlock()
		return q.windowDelayLocked()
	}
	feed := func(gap time.Duration, n int) {
		q.mu.Lock(nil)
		defer q.mu.Unlock()
		now := q.lastSubmit
		if now.IsZero() {
			now = time.Unix(1000, 0)
			q.noteSubmitGapLocked(now) // first sample only records lastSubmit
		}
		for i := 0; i < n; i++ {
			now = now.Add(gap)
			q.noteSubmitGapLocked(now)
		}
	}

	if w := window(); w != delay {
		t.Fatalf("window with no estimate = %v, want the full PlugDelay %v", w, delay)
	}
	// A fast burst (50 µs cadence) shrinks the window below the ceiling but
	// keeps it at or above the floor.
	feed(50*time.Microsecond, 8)
	if w := window(); w <= 0 || w >= delay || w < delay/16 {
		t.Fatalf("window for a 50µs cadence = %v, want inside [%v, %v)", w, delay/16, delay)
	}
	// A slow submitter (gaps beyond the ceiling, clamped to 4x) pushes the
	// estimate past PlugDelay: anticipation cannot pay, window goes to zero.
	feed(10*delay, 12)
	if on, gap, w := q.AdaptivePlug(); !on || gap < delay || w != 0 {
		t.Fatalf("after slow gaps: on=%v gap=%v window=%v, want on, gap >= %v, window 0", on, gap, w, delay)
	}
	// Speeding back up recovers: the EWMA decays and windows reopen.
	feed(50*time.Microsecond, 16)
	if w := window(); w <= 0 || w > delay {
		t.Fatalf("window after recovery = %v, want back inside (0, %v]", w, delay)
	}
	// Fixed-mode queues never shrink: the estimator is bypassed entirely.
	qf := New(fs.NewRamdisk(512, 64), Options{PlugDelay: delay})
	if on, _, w := qf.AdaptivePlug(); on || w != delay {
		t.Fatalf("fixed queue reports on=%v window=%v, want off with the full delay", on, w)
	}
}

// TestAdaptivePlugSkipsHopelessWindows is the satellite's contract: a
// fire-and-forget submitter whose cadence is far slower than PlugDelay
// makes every fixed-mode window expire (one timeout per request, one
// PlugDelay of added latency each), while adaptive mode learns the cadence
// after the first window and stops opening them — plug_timeouts drops.
func TestAdaptivePlugSkipsHopelessWindows(t *testing.T) {
	const delay = 2 * time.Millisecond
	const rounds = 6
	run := func(adaptive bool) int64 {
		dev := &cmdDev{BlockDevice: fs.NewRamdisk(512, 64)}
		q := New(dev, Options{PlugDelay: delay, AdaptivePlug: adaptive})
		for i := 0; i < rounds; i++ {
			if _, err := q.SubmitWrite(nil, 10+2*i, 1, make([]byte, 512)); err != nil {
				t.Fatal(err)
			}
			// Wait for the request to hit the device before the next one, so
			// every submission finds an idle queue (the anticipation case)
			// and the inter-submit gap is driven by our pacing, not timer
			// jitter.
			deadline := time.Now().Add(5 * time.Second)
			for len(dev.writeCmds()) <= i {
				if time.Now().After(deadline) {
					t.Fatalf("round %d (adaptive=%v): request never dispatched", i, adaptive)
				}
				time.Sleep(50 * time.Microsecond)
			}
			time.Sleep(5 * delay) // cadence far beyond the window
		}
		_, timeouts := q.PlugStats()
		return timeouts
	}

	fixed := run(false)
	adaptive := run(true)
	if fixed != rounds {
		t.Fatalf("fixed-mode timeouts = %d, want %d (every lone request waits out the window)", fixed, rounds)
	}
	// Adaptive mode pays full windows only until the estimate forms (the
	// first gap already clamps to 4x PlugDelay, past the give-up threshold).
	if adaptive > 2 {
		t.Fatalf("adaptive timeouts = %d, want <= 2 (windows stop opening once the cadence is known)", adaptive)
	}
	if on, gap, window := func() (bool, time.Duration, time.Duration) {
		dev := &cmdDev{BlockDevice: fs.NewRamdisk(512, 64)}
		q := New(dev, Options{PlugDelay: delay, AdaptivePlug: true})
		q.SubmitWrite(nil, 1, 1, make([]byte, 512))
		time.Sleep(5 * delay)
		q.SubmitWrite(nil, 3, 1, make([]byte, 512))
		return q.AdaptivePlug()
	}(); !on || gap < delay || window != 0 {
		t.Fatalf("estimator after slow pair: on=%v gap=%v window=%v, want gap >= %v and window 0", on, gap, window, delay)
	}
}

// TestAdaptiveExpiryAfterMergeIsNotTimeout: in adaptive mode a window that
// merged traffic before its timer fired closed successfully — the burst
// simply ended — so it must not count as a plug timeout. The fixed mode
// keeps the old accounting (every expiry is a miss) so the existing
// diskstats semantics hold when the knob is off.
func TestAdaptiveExpiryAfterMergeIsNotTimeout(t *testing.T) {
	run := func(adaptive bool) (cmds [][2]int, hits, timeouts int64) {
		dev := &cmdDev{BlockDevice: fs.NewRamdisk(512, 64)}
		q := New(dev, Options{PlugDelay: 2 * time.Millisecond, AdaptivePlug: adaptive})
		// Two adjacent fire-and-forget writes: the first opens a window (no
		// estimate yet, so adaptive also waits the full delay), the second
		// rides it; nobody waits, so only the timer can release the batch.
		for i := 0; i < 2; i++ {
			if _, err := q.SubmitWrite(nil, 10+i, 1, make([]byte, 512)); err != nil {
				t.Fatal(err)
			}
		}
		deadline := time.Now().Add(5 * time.Second)
		for len(dev.writeCmds()) == 0 {
			if time.Now().After(deadline) {
				t.Fatal("window never expired")
			}
			time.Sleep(50 * time.Microsecond)
		}
		h, to := q.PlugStats()
		return dev.writeCmds(), h, to
	}

	cmds, hits, timeouts := run(true)
	if len(cmds) != 1 || cmds[0] != [2]int{10, 2} {
		t.Fatalf("adaptive window dispatched %v, want one merged [10 2] command", cmds)
	}
	if hits != 1 || timeouts != 0 {
		t.Fatalf("adaptive hits=%d timeouts=%d, want 1/0 (a window that merged is a success)", hits, timeouts)
	}
	_, hits, timeouts = run(false)
	if hits != 1 || timeouts != 1 {
		t.Fatalf("fixed hits=%d timeouts=%d, want 1/1 (PR 4 accounting unchanged)", hits, timeouts)
	}
}

// TestWaitParksExplicitPlug is the schedule()-flushes-the-plug rule: a
// task that waits on its own request while holding an explicit plug would
// deadlock — the plug holds back the very dispatch it sleeps on — so wait
// parks the sleeper's plugs (dispatching the batch) and reinstates them on
// wake, where they keep holding later submissions until the real Unplug.
func TestWaitParksExplicitPlug(t *testing.T) {
	dev := &cmdDev{BlockDevice: fs.NewRamdisk(512, 64)}
	q := New(dev, Options{PlugDelay: -1}) // isolate the explicit plug
	s := sched.New(sched.Config{Cores: 1})
	s.Start()
	defer s.Shutdown(5 * time.Second)

	done := make(chan error, 1)
	s.Go("plugged-writer", 0, func(task *sched.Task) {
		q.Plug(task)
		defer q.Unplug(task)
		tk, err := q.SubmitWrite(task, 10, 1, make([]byte, 512))
		if err != nil {
			done <- err
			return
		}
		// Without parking this sleep never ends: the task's own plug holds
		// the request it is waiting for.
		if err := tk.Wait(task); err != nil {
			done <- err
			return
		}
		if cmds := dev.writeCmds(); len(cmds) != 1 {
			t.Errorf("after parked wait: %v device commands, want the batch dispatched", cmds)
		}
		// The plug survived the sleep: a post-wake submission accumulates
		// again instead of dispatching (sync backend dispatches inline at
		// submit when unplugged, so this check is deterministic).
		if _, err := q.SubmitWrite(task, 20, 1, make([]byte, 512)); err != nil {
			done <- err
			return
		}
		if cmds := dev.writeCmds(); len(cmds) != 1 {
			t.Errorf("post-wake submit dispatched through a reinstated plug: %v", cmds)
		}
		done <- nil
	})
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("plugged waiter deadlocked: wait() did not park the task's plug")
	}
	// The deferred Unplug released the reinstated plug and dispatched the
	// post-wake write.
	deadline := time.Now().Add(5 * time.Second)
	for len(dev.writeCmds()) != 2 {
		if time.Now().After(deadline) {
			t.Fatalf("final commands = %v, want the post-wake write dispatched at Unplug", dev.writeCmds())
		}
		time.Sleep(50 * time.Microsecond)
	}
}
