// Package blkq is Proto's per-device IO request queue: the asynchronous
// block layer between the buffer cache and the device driver.
//
// Callers submit read/write requests; the queue keeps them sorted by LBA
// and dispatches them elevator-style (one ascending sweep, wrapping at the
// top), merging adjacent requests from different tasks into single
// multi-block device commands — the batching the paper's SD timing model
// rewards, applied across tasks instead of within one call. Up to Depth
// commands are in flight at the device at once.
//
// # Dispatch and completion
//
// On a device with split submit/completion halves (hw.SDCard's
// SubmitRead/SubmitWrite + PopCompletion), dispatch programs the DMA
// transfer and returns; the completion IRQ (hw.IRQSD, routed here by the
// kernel via CompletionIRQ) finishes the command, wakes the submitting
// tasks off the sched wait queue, and issues the next command from
// interrupt context — no task ever busy-waits inside the driver. On a
// plain synchronous device (the ramdisk) the dispatching context performs
// the IO inline and completes it itself; the queueing, merging and
// accounting behave identically.
//
// # Merge rules
//
// A dispatched command is the elevator's pick plus every pending request
// contiguous with it in the same direction, bounded at maxMergeBlocks
// (128) so neither layer builds unbounded commands:
//
//   - Writes merge only when exactly adjacent. Overlapping writes have no
//     defined order once the elevator reorders, so they never share a
//     command.
//   - Reads merge when they overlap or touch: one covering transfer is
//     issued and each member request's slice is scattered out of it at
//     completion.
//
// Multi-request commands use a pooled bounce buffer; single-request
// commands are zero-copy out of the caller's buffer.
//
// # Depth bound
//
// At most Depth (default 4) commands are in flight at the device. The
// bound is enforced at dispatch: kick issues commands until the device
// queue is full, the queue is plugged, or nothing is pending, and every
// completion refills the freed slot — from interrupt context on the async
// path, so the device never idles while work is queued.
//
// # Plug lifecycle
//
// Plugging holds dispatch so a batch can assemble and merge before the
// first command leaves. There are two kinds, and they never overlap:
//
//   - Explicit Plug/Unplug brackets, Linux-style, around code that knows
//     it is building a batch (the buffer cache's writeback passes).
//     While plugged, submissions queue without dispatching; Unplug
//     dispatches the merged batch immediately — an explicit batch never
//     pays the anticipatory delay.
//   - An anticipatory plug (Options.PlugDelay) opens automatically when a
//     request arrives at an idle queue — no pending requests, nothing in
//     flight, no explicit plug. A lone submitter's follow-up requests land
//     inside the window and merge, where an idle queue would otherwise
//     dispatch the first request alone, solo and unmergeable. The window
//     closes and dispatch resumes when (a) a task waits on any pending
//     request — the task is about to sleep, so holding its IO back any
//     longer is pure latency (Linux flushes the task plug in schedule()
//     for the same reason); (b) the pending span reaches maxMergeBlocks —
//     a longer wait cannot grow the command; (c) an explicit Plug takes
//     over; or (d) PlugDelay expires (the timer fires through the
//     Options.After source — the kernel's virtual timers — and counts as
//     a plug timeout). Submissions that arrive while a window is open
//     count as plug hits; both counters surface in /proc/diskstats.
//
// # Caller invariants
//
// Two invariants callers must keep (the buffer cache does, via its
// per-buffer sleeplocks):
//
//   - No two in-flight writes, and no in-flight write and read, may
//     overlap: the elevator reorders freely, so overlapping commands have
//     no defined order.
//   - Request buffers stay stable (writes) or untouched (reads) until the
//     request completes.
//
// The queue lock ranks below the buffer-cache buffer locks
// (ksync.RankBlkq): submitters hold the buffer sleeplocks of the blocks
// they queue, and the queue lock is never held across a device wait.
package blkq
