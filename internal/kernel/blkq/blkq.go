package blkq

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"protosim/internal/kernel/fs"
	"protosim/internal/kernel/ksync"
	"protosim/internal/kernel/sched"
)

// AsyncBackend is a device with split submit/completion halves. Submit
// errors are immediate rejects (bad range); transfer errors arrive in the
// completion record. The device signals completions by raising its IRQ;
// the kernel routes that IRQ to Queue.CompletionIRQ, which drains
// PopCompletion.
type AsyncBackend interface {
	fs.BlockDevice
	SubmitRead(tag uint64, lba, n int, dst []byte) error
	SubmitWrite(tag uint64, lba, n int, src []byte) error
	PopCompletion() (tag uint64, err error, ok bool)
}

// Defaults.
const (
	// DefaultDepth is how many commands may be in flight at the device.
	DefaultDepth = 4
	// DefaultPlugDelay is the anticipatory-plug window: how long a request
	// that found the queue idle is held back hoping a mergeable follow-up
	// arrives. Short relative to an SD command (so a timeout costs little)
	// but long relative to the submit cadence of a writeback loop (so a
	// burst lands whole).
	DefaultPlugDelay = 500 * time.Microsecond
	// maxMergeBlocks caps one merged command, matching the cache's
	// writeback-run cap so neither layer builds unbounded commands.
	maxMergeBlocks = 128
	// DefaultCmdTimeout bounds how long one device command may stay in
	// flight before the queue abandons it and retries: generous against
	// the SD timing model's worst merged write (~75ms at scale 1) plus
	// injected latency spikes, small against a wedged device.
	DefaultCmdTimeout = 2 * time.Second
	// DefaultMaxRetries bounds re-issues of one command for transient
	// errors and timeouts.
	DefaultMaxRetries = 3
	// retryBackoffBase is the first retry's delay; each further retry
	// doubles it (exponential backoff).
	retryBackoffBase = 500 * time.Microsecond
)

// ErrCmdTimeout marks a command the device never completed within the
// queue's window. Retried like a transient fault; a command whose every
// attempt times out declares the device dead.
var ErrCmdTimeout = errors.New("blkq: device command timed out")

// Options configures New. Zero values select defaults.
type Options struct {
	// Depth bounds in-flight device commands (0 = DefaultDepth).
	Depth int
	// Async names the device's submit/completion halves when it has them;
	// nil means dispatch performs synchronous IO inline. When non-nil it
	// must be the same device as the sync half passed to New.
	Async AsyncBackend
	// PlugDelay is the anticipatory-plug window opened when a request
	// arrives at an idle queue (0 = DefaultPlugDelay; negative disables
	// anticipatory plugging — requests at an idle queue dispatch at once).
	// See the package comment's plug-lifecycle section.
	PlugDelay time.Duration
	// AdaptivePlug scales the anticipatory window with the submitter's
	// observed inter-submit gap instead of always waiting the full
	// PlugDelay: a fast burst gets a window just big enough to catch its
	// next request, and a submitter whose cadence is slower than the
	// window stops opening windows at all — it would only pay the timeout
	// without ever merging. PlugDelay remains the ceiling. Off by
	// default: the fixed window is the PR 4 behavior.
	AdaptivePlug bool
	// After schedules the anticipatory plug's expiry through the caller's
	// timer source (the kernel passes its virtual-timer set); the returned
	// function cancels the pending callback. Nil selects host timers
	// (time.AfterFunc). Command timeouts and retry backoff use the same
	// source.
	After func(d time.Duration, fn func()) func() bool
	// CmdTimeout bounds one command's time in flight before the queue
	// abandons and retries it (0 = DefaultCmdTimeout; negative disables
	// timeouts). Only armed on async backends — synchronous dispatch
	// completes inline and cannot hang.
	CmdTimeout time.Duration
	// MaxRetries bounds per-command re-issues for transient errors and
	// timeouts (0 = DefaultMaxRetries; negative disables retries).
	MaxRetries int
}

// request is one submitted IO, waiting in the queue or in flight as part
// of a command. All fields except buf/write/lba/n are guarded by Queue.mu.
type request struct {
	write bool
	lba   int
	n     int
	buf   []byte

	done bool
	err  error
	wq   sched.WaitQueue // task waiters (completion IRQ wakes them)
	ch   chan struct{}   // host-side waiters, made lazily under Queue.mu
}

// command is one device command: a merged run of requests.
type command struct {
	tag   uint64
	write bool
	lba   int
	n     int
	buf   []byte // reqs[0].buf when len(reqs)==1, else a pooled bounce buffer
	reqs  []*request

	// Recovery state (guarded by Queue.mu while the command is tracked).
	bounce    bool        // buf is queue-owned (bounce/retry buffer), not reqs[0].buf
	attempts  int         // re-issues so far (0 = first issue)
	abandoned bool        // timed out: a late DMA may still target buf — never pool it
	cancelT   func() bool // pending timeout cancel, nil when unarmed
}

// Queue is the request queue over one block device.
type Queue struct {
	dev   fs.BlockDevice
	abe   AsyncBackend
	bs    int
	depth int

	// mu (rank: blkq, below buffer) guards everything below. Acquired by
	// submitters that already hold the buffer locks of the blocks they
	// queue, and — with no task, briefly — by the completion IRQ path.
	mu       ksync.SleepLock
	pending  []*request // sorted by LBA
	pendingN int        // total blocks across pending (plug-pressure check)
	inflight map[uint64]*command
	nextTag  uint64
	head     int // elevator position: first LBA the next sweep considers
	plugs    int // Plug nesting depth; dispatch holds while > 0

	// plugOwner tracks how many of the explicit plugs each TASK holds, so
	// wait can park a sleeping submitter's plugs (see wait). Host-side
	// (nil-task) plugs are deliberately not tracked: they follow the
	// plug-submit-unplug-wait discipline and never sleep while plugged.
	plugOwner map[*sched.Task]int

	// Anticipatory-plug state (see the package comment). antOpen holds
	// dispatch exactly like an explicit plug; antGen invalidates the expiry
	// of a window that was closed (and possibly reopened) before its timer
	// fired; antStop cancels the pending expiry, best-effort.
	plugDelay time.Duration
	after     func(d time.Duration, fn func()) func() bool
	antOpen   bool
	antGen    uint64
	antStop   func() bool

	// Adaptive-plug state: an EWMA of the gap between successive submits
	// sizes each window (ceiling plugDelay), and a window that merged at
	// least one request (antHits > 0) expiring is a successful close, not
	// a timeout — only zero-hit windows count as misses.
	adaptive   bool
	lastSubmit time.Time
	gapEWMA    time.Duration
	antHits    int

	// Recovery state: per-command timeout/retry knobs and the dead-device
	// latch. Once dead is set every queued and future request fast-fails
	// with deadErr — no submitter ever sleeps on a device that cannot
	// answer. Guarded by mu.
	cmdTimeout time.Duration
	maxRetries int
	dead       bool
	deadErr    error

	// Statistics. Guarded by mu.
	submitted    int64 // requests accepted
	dispatched   int64 // device commands issued
	merged       int64 // requests that rode along in a multi-request command
	depthPeak    int64 // max commands in flight at once
	queuedPeak   int64 // max requests waiting at once
	plugHits     int64 // requests that arrived inside an anticipatory window
	plugTimeouts int64 // anticipatory windows that expired unconverted
	retries      int64 // command re-issues (transient errors, timeouts)
	cmdTimeouts  int64 // commands the device never completed in the window
	splits       int64 // merged commands split after a persistent failure

	pool sync.Pool // bounce buffers for merged commands
}

// New builds a queue over dev. See Options for the async half.
func New(dev fs.BlockDevice, opts Options) *Queue {
	depth := opts.Depth
	if depth <= 0 {
		depth = DefaultDepth
	}
	q := &Queue{
		dev:       dev,
		abe:       opts.Async,
		bs:        dev.BlockSize(),
		inflight:  make(map[uint64]*command, depth),
		plugOwner: make(map[*sched.Task]int),
		adaptive:  opts.AdaptivePlug,
	}
	q.mu.SetRank(ksync.RankBlkq, 0)
	q.pool.New = func() any {
		b := make([]byte, maxMergeBlocks*q.bs)
		return &b
	}
	q.depth = depth
	switch {
	case opts.PlugDelay == 0:
		q.plugDelay = DefaultPlugDelay
	case opts.PlugDelay > 0:
		q.plugDelay = opts.PlugDelay
	}
	q.after = opts.After
	if q.after == nil {
		q.after = func(d time.Duration, fn func()) func() bool {
			return time.AfterFunc(d, fn).Stop
		}
	}
	switch {
	case opts.CmdTimeout == 0:
		q.cmdTimeout = DefaultCmdTimeout
	case opts.CmdTimeout > 0:
		q.cmdTimeout = opts.CmdTimeout
	}
	switch {
	case opts.MaxRetries == 0:
		q.maxRetries = DefaultMaxRetries
	case opts.MaxRetries > 0:
		q.maxRetries = opts.MaxRetries
	}
	return q
}

// BlockSize implements fs.BlockDevice.
func (q *Queue) BlockSize() int { return q.bs }

// Blocks implements fs.BlockDevice.
func (q *Queue) Blocks() int { return q.dev.Blocks() }

// ReadBlocks implements fs.BlockDevice (host-side callers, no task).
func (q *Queue) ReadBlocks(lba, n int, dst []byte) error {
	return q.ReadBlocksT(nil, lba, n, dst)
}

// WriteBlocks implements fs.BlockDevice.
func (q *Queue) WriteBlocks(lba, n int, src []byte) error {
	return q.WriteBlocksT(nil, lba, n, src)
}

// ReadBlocksT implements fs.TaskBlockDevice: submit and sleep until the
// completion IRQ wakes us.
func (q *Queue) ReadBlocksT(t *sched.Task, lba, n int, dst []byte) error {
	r, err := q.submit(t, false, lba, n, dst)
	if err != nil {
		return err
	}
	return q.wait(t, r)
}

// WriteBlocksT implements fs.TaskBlockDevice.
func (q *Queue) WriteBlocksT(t *sched.Task, lba, n int, src []byte) error {
	r, err := q.submit(t, true, lba, n, src)
	if err != nil {
		return err
	}
	return q.wait(t, r)
}

// ticket adapts a request to fs.BlockTicket.
type ticket struct {
	q *Queue
	r *request
}

// Wait implements fs.BlockTicket.
func (tk ticket) Wait(t *sched.Task) error { return tk.q.wait(t, tk.r) }

// SubmitWrite implements fs.QueuedBlockDevice: queue a write and return a
// ticket; the writeback paths keep several in flight to fill the device
// queue. src must stay stable until Wait returns.
func (q *Queue) SubmitWrite(t *sched.Task, lba, n int, src []byte) (fs.BlockTicket, error) {
	r, err := q.submit(t, true, lba, n, src)
	if err != nil {
		return nil, err
	}
	return ticket{q: q, r: r}, nil
}

// Plug holds dispatch so a batch being assembled can merge before the
// first command is issued. Nestable; every Plug needs an Unplug. An open
// anticipatory window is subsumed: the explicit plug takes over holding
// dispatch, and the eventual Unplug dispatches immediately — explicit
// batching never waits out the anticipatory delay.
func (q *Queue) Plug(t *sched.Task) {
	q.mu.Lock(t)
	q.plugs++
	if t != nil {
		q.plugOwner[t]++
	}
	q.closeAnticipationLocked()
	q.mu.Unlock()
}

// Unplug releases a Plug and dispatches whatever merged while plugged.
func (q *Queue) Unplug(t *sched.Task) {
	q.mu.Lock(t)
	if q.plugs == 0 {
		q.mu.Unlock()
		panic("blkq: unplug without plug")
	}
	q.plugs--
	if t != nil {
		if q.plugOwner[t]--; q.plugOwner[t] <= 0 {
			delete(q.plugOwner, t)
		}
	}
	q.mu.Unlock()
	q.kick(t)
}

// parkPlugs temporarily releases every explicit plug t holds, returning
// how many were parked; unparkPlugs restores them after the sleep. This is
// the Linux rule that schedule() flushes the blocking task's plug: a
// plugged task about to sleep on one of its own requests would deadlock —
// its plug holds the very dispatch it waits for — and any batch it was
// assembling is as big as it is going to get. The plug logically survives
// the sleep: once the task wakes, its later submissions accumulate again
// until the real Unplug.
func (q *Queue) parkPlugs(t *sched.Task) int {
	if t == nil {
		return 0
	}
	q.mu.Lock(t)
	n := q.plugOwner[t]
	if n > 0 {
		q.plugs -= n
		delete(q.plugOwner, t)
	}
	q.mu.Unlock()
	if n > 0 {
		q.kick(t)
	}
	return n
}

// unparkPlugs reinstates n plugs parked by parkPlugs.
func (q *Queue) unparkPlugs(t *sched.Task, n int) {
	if n <= 0 {
		return
	}
	q.mu.Lock(t)
	q.plugs += n
	q.plugOwner[t] += n
	q.mu.Unlock()
}

// --- the anticipatory plug ---

// openAnticipationLocked starts a dispatch hold of the given length for a
// request that found the queue idle. Caller holds q.mu; the timer callback
// fires outside every ktime/host-timer lock, so arming under q.mu is safe.
func (q *Queue) openAnticipationLocked(delay time.Duration) {
	q.antOpen = true
	q.antGen++
	q.antHits = 0
	gen := q.antGen
	q.antStop = q.after(delay, func() { q.anticipationExpired(gen) })
}

// windowDelayLocked sizes the next anticipatory window. The fixed mode
// always waits the full plugDelay. Adaptive mode bets on the observed
// inter-submit cadence: with no estimate yet it waits the full window;
// with the typical gap at or beyond the window it returns 0 — anticipation
// cannot pay, every window would expire before the follow-up arrives — and
// otherwise it holds for twice the typical gap (clamped to
// [plugDelay/16, plugDelay]), long enough to catch the next request of a
// burst without paying the full delay when the burst ends. Caller holds
// q.mu.
func (q *Queue) windowDelayLocked() time.Duration {
	if !q.adaptive || q.gapEWMA == 0 {
		return q.plugDelay
	}
	if q.gapEWMA >= q.plugDelay {
		return 0
	}
	delay := 2 * q.gapEWMA
	if floor := q.plugDelay / 16; delay < floor {
		delay = floor
	}
	if delay > q.plugDelay {
		delay = q.plugDelay
	}
	return delay
}

// noteSubmitGapLocked feeds one inter-submit gap into the cadence EWMA
// (alpha 1/4, samples clamped to 4x plugDelay so one long pause does not
// swamp the estimate but a genuinely slow submitter still pushes it past
// the give-up threshold). Caller holds q.mu.
func (q *Queue) noteSubmitGapLocked(now time.Time) {
	if !q.lastSubmit.IsZero() {
		gap := now.Sub(q.lastSubmit)
		if max := 4 * q.plugDelay; gap > max {
			gap = max
		}
		if q.gapEWMA == 0 {
			q.gapEWMA = gap
		} else {
			q.gapEWMA += (gap - q.gapEWMA) / 4
		}
	}
	q.lastSubmit = now
}

// closeAnticipationLocked converts or cancels an open window; dispatch is
// the caller's job (kick after dropping q.mu). Caller holds q.mu.
func (q *Queue) closeAnticipationLocked() {
	if !q.antOpen {
		return
	}
	q.antOpen = false
	q.antGen++ // a late-firing timer for the old window is now a no-op
	if q.antStop != nil {
		q.antStop()
		q.antStop = nil
	}
}

// anticipationExpired is the window's timer callback: nothing mergeable
// arrived (or the submitter never waited), so stop anticipating and let
// the accumulated batch go. In adaptive mode a window that did merge
// traffic before expiring closed successfully — the burst simply ended —
// so only zero-hit windows count as timeouts there; the fixed mode keeps
// the PR 4 accounting (every expiry is a miss).
func (q *Queue) anticipationExpired(gen uint64) {
	q.mu.Lock(nil)
	if !q.antOpen || gen != q.antGen {
		q.mu.Unlock()
		return // window already converted by a waiter, plug, or pressure
	}
	q.antOpen = false
	q.antStop = nil
	if !q.adaptive || q.antHits == 0 {
		q.plugTimeouts++
	}
	q.mu.Unlock()
	q.kick(nil)
}

// flushAnticipation closes any open window before a caller sleeps on a
// request: the submitter is out of follow-ups, so holding dispatch back
// any longer is pure latency (Linux flushes the task plug in schedule()
// for the same reason).
func (q *Queue) flushAnticipation(t *sched.Task) {
	q.mu.Lock(t)
	open := q.antOpen
	q.closeAnticipationLocked()
	q.mu.Unlock()
	if open {
		q.kick(t)
	}
}

// submit validates and enqueues one request, then kicks dispatch.
func (q *Queue) submit(t *sched.Task, write bool, lba, n int, buf []byte) (*request, error) {
	if lba < 0 || n <= 0 || lba+n > q.dev.Blocks() {
		return nil, fmt.Errorf("blkq: bad range [%d,%d)", lba, lba+n)
	}
	if len(buf) < n*q.bs {
		return nil, fmt.Errorf("blkq: %d-block request over %d bytes", n, len(buf))
	}
	r := &request{write: write, lba: lba, n: n, buf: buf}
	q.mu.Lock(t)
	if q.dead {
		err := q.deadErr
		q.mu.Unlock()
		return nil, err
	}
	idle := len(q.pending) == 0 && len(q.inflight) == 0
	// Insert in LBA order (the elevator's working order).
	i := sort.Search(len(q.pending), func(i int) bool { return q.pending[i].lba >= lba })
	q.pending = append(q.pending, nil)
	copy(q.pending[i+1:], q.pending[i:])
	q.pending[i] = r
	q.pendingN += n
	q.submitted++
	if l := int64(len(q.pending)); l > q.queuedPeak {
		q.queuedPeak = l
	}
	// Anticipatory plugging: a request hitting an idle, unplugged queue
	// would dispatch alone — solo commands are exactly what the elevator
	// cannot merge. Hold it for a window instead (the full PlugDelay, or
	// the cadence-sized adaptive one), so a lone sequential writer's
	// follow-ups accumulate into one command. Requests landing in an open
	// window are the anticipated traffic (plug hits); once the pending
	// span can no longer grow a bigger command, waiting is pointless and
	// the window converts.
	if q.plugDelay > 0 && q.plugs == 0 {
		if q.adaptive {
			q.noteSubmitGapLocked(time.Now())
		}
		switch {
		case q.antOpen:
			q.plugHits++
			q.antHits++
			if q.pendingN >= maxMergeBlocks {
				q.closeAnticipationLocked()
			}
		case idle:
			if delay := q.windowDelayLocked(); delay > 0 {
				q.openAnticipationLocked(delay)
			}
		}
	}
	q.mu.Unlock()
	q.kick(t)
	return r, nil
}

// wait sleeps until r completes. Tasks sleep on the request's wait queue
// and are woken from the completion IRQ; host-side callers block on a
// channel. The sleep is uninterruptible (completions always arrive). A
// waiter ends any anticipatory window first — it is about to sleep, so
// the window's batch is as big as it is going to get.
func (q *Queue) wait(t *sched.Task, r *request) error {
	q.flushAnticipation(t)
	parked := q.parkPlugs(t)
	defer q.unparkPlugs(t, parked)
	if t == nil {
		q.mu.Lock(nil)
		if r.done {
			q.mu.Unlock()
			return r.err
		}
		if r.ch == nil {
			r.ch = make(chan struct{})
		}
		ch := r.ch
		q.mu.Unlock()
		<-ch
		return r.err
	}
	isDone := func() bool {
		q.mu.Lock(t)
		d := r.done
		q.mu.Unlock()
		return d
	}
	for !isDone() {
		r.wq.SleepUnless(t, isDone)
	}
	return r.err
}

// kick dispatches until the device queue is full, the queue is plugged
// (explicitly or anticipatorily), or no requests are pending. Runs in
// submitter context, the anticipatory plug's timer context, and — for
// async backends — completion-IRQ context, which is what keeps the device
// busy without a dedicated dispatcher task.
func (q *Queue) kick(t *sched.Task) {
	for {
		q.mu.Lock(t)
		if q.plugs > 0 || q.antOpen || len(q.inflight) >= q.depth || len(q.pending) == 0 {
			q.mu.Unlock()
			return
		}
		cmd := q.buildCommandLocked()
		q.inflight[cmd.tag] = cmd
		q.dispatched++
		q.merged += int64(len(cmd.reqs) - 1)
		if l := int64(len(q.inflight)); l > q.depthPeak {
			q.depthPeak = l
		}
		q.mu.Unlock()
		q.issue(t, cmd)
	}
}

// issue sends one tracked command to the device (the caller has already
// placed it in inflight). Async backends get a command timeout armed;
// synchronous devices complete inline — they cannot hang, so no timer.
// Runs in submitter, IRQ, retry-timer and timeout-timer contexts.
func (q *Queue) issue(t *sched.Task, cmd *command) {
	// Snapshot the mutable fields under the lock: a timed-out command's
	// tag and buffer are rewritten by a later reissue, which must not race
	// this attempt's device call.
	q.mu.Lock(t)
	tag, buf := cmd.tag, cmd.buf
	if q.abe != nil && q.cmdTimeout > 0 && q.inflight[tag] == cmd {
		cmd.cancelT = q.after(q.cmdTimeout, func() { q.timeout(tag) })
	}
	q.mu.Unlock()
	if q.abe != nil {
		var err error
		if cmd.write {
			err = q.abe.SubmitWrite(tag, cmd.lba, cmd.n, buf)
		} else {
			err = q.abe.SubmitRead(tag, cmd.lba, cmd.n, buf)
		}
		if err != nil {
			// Immediate reject (bad descriptor, dead device): complete in
			// place.
			q.finish(t, tag, err)
		}
		return
	}
	// Synchronous device: this context is the "driver"; do the IO and
	// complete the command ourselves.
	var err error
	if cmd.write {
		err = q.dev.WriteBlocks(cmd.lba, cmd.n, buf)
	} else {
		err = q.dev.ReadBlocks(cmd.lba, cmd.n, buf)
	}
	q.finish(t, tag, err)
}

// timeout is the command timer's callback: the device never answered for
// tag within the window. The command is abandoned — its buffer may still
// be a late DMA target, so it is never pooled again — and routed through
// the same failure policy as an errored completion. A completion that
// arrives after all is a stray and is dropped.
func (q *Queue) timeout(tag uint64) {
	q.mu.Lock(nil)
	cmd := q.inflight[tag]
	if cmd == nil {
		q.mu.Unlock()
		return // completed (or killed) just before the timer fired
	}
	delete(q.inflight, tag)
	cmd.cancelT = nil
	cmd.abandoned = true
	q.cmdTimeouts++
	q.mu.Unlock()
	q.resolveFailure(nil, cmd, ErrCmdTimeout)
}

// buildCommandLocked picks the elevator's next request and absorbs every
// pending request contiguous with it (same direction) into one command.
// Caller holds q.mu.
func (q *Queue) buildCommandLocked() *command {
	// Elevator pick: first request at or above the head, wrapping to the
	// lowest LBA when the sweep tops out.
	i := sort.Search(len(q.pending), func(i int) bool { return q.pending[i].lba >= q.head })
	if i == len(q.pending) {
		i = 0
	}
	seed := q.pending[i]

	// Grow a contiguous same-direction group around the seed in the sorted
	// slice. Writes merge only when exactly adjacent (no overlap — order
	// between overlapping writes is undefined here); reads merge when they
	// overlap or touch, since one covering transfer serves them all.
	lo, hi := i, i+1
	start, end := seed.lba, seed.lba+seed.n
	joins := func(r *request) (bool, int, int) {
		if r.write != seed.write {
			return false, 0, 0
		}
		rEnd := r.lba + r.n
		if seed.write {
			if r.lba != end && rEnd != start {
				return false, 0, 0
			}
		} else if r.lba > end || rEnd < start {
			return false, 0, 0
		}
		ns, ne := start, end
		if r.lba < ns {
			ns = r.lba
		}
		if rEnd > ne {
			ne = rEnd
		}
		return ne-ns <= maxMergeBlocks, ns, ne
	}
	for hi < len(q.pending) {
		ok, ns, ne := joins(q.pending[hi])
		if !ok {
			break
		}
		start, end = ns, ne
		hi++
	}
	for lo > 0 {
		ok, ns, ne := joins(q.pending[lo-1])
		if !ok {
			break
		}
		start, end = ns, ne
		lo--
	}

	group := make([]*request, hi-lo)
	copy(group, q.pending[lo:hi])
	q.pending = append(q.pending[:lo], q.pending[hi:]...)
	for _, r := range group {
		q.pendingN -= r.n
	}
	q.head = end

	q.nextTag++
	cmd := &command{tag: q.nextTag, write: seed.write, lba: start, n: end - start, reqs: group}
	if len(group) == 1 {
		cmd.buf = seed.buf[:seed.n*q.bs]
		return cmd
	}
	// Multi-request command: a pooled bounce buffer covers the merged
	// span. Writes are gathered now; reads are scattered at completion.
	buf := *(q.pool.Get().(*[]byte))
	cmd.buf = buf[:cmd.n*q.bs]
	cmd.bounce = true
	if cmd.write {
		for _, r := range group {
			copy(cmd.buf[(r.lba-start)*q.bs:], r.buf[:r.n*q.bs])
		}
	}
	return cmd
}

// CompletionIRQ is the device-interrupt entry point: the kernel's IRQSD
// handler calls it to drain the backend's completion queue. Each finished
// command wakes its submitters, and the freed device slot is refilled
// immediately — the next command is issued from interrupt context.
func (q *Queue) CompletionIRQ() {
	if q.abe == nil {
		return
	}
	for {
		tag, err, ok := q.abe.PopCompletion()
		if !ok {
			return
		}
		q.finish(nil, tag, err)
	}
}

// finish takes a command's completion: cancel its timeout, and either
// complete it (success, or failure with no recovery left) or hand it to
// the failure policy — retry with backoff, split, or declare the device
// dead.
func (q *Queue) finish(t *sched.Task, tag uint64, err error) {
	q.mu.Lock(t)
	cmd := q.inflight[tag]
	delete(q.inflight, tag)
	if cmd == nil {
		q.mu.Unlock()
		return // stray completion (sync-path DMA raise, or abandoned tag)
	}
	if cmd.cancelT != nil {
		cmd.cancelT()
		cmd.cancelT = nil
	}
	dead := q.dead
	q.mu.Unlock()
	if err != nil && !dead {
		q.resolveFailure(t, cmd, err)
		return
	}
	q.complete(t, cmd, err)
}

// retryable reports whether err is worth re-issuing the same command for:
// transient injected media errors (which heal) and timeouts (the device
// may merely be slow). Persistent faults — bad sectors, write protection,
// device death, rejected descriptors — are not.
func retryable(err error) bool {
	return errors.Is(err, fs.ErrSDInjected) || errors.Is(err, ErrCmdTimeout)
}

// resolveFailure routes one failed command (already removed from
// inflight) through the recovery policy:
//
//   - device death latches the dead state and fast-fails everything;
//   - transient errors and timeouts re-issue the command with exponential
//     backoff, up to maxRetries;
//   - a command whose every attempt TIMED OUT has proven the device
//     unresponsive — that, too, declares it dead;
//   - a persistent bad sector under a merged command splits it so only
//     the requests covering the sector ultimately fail;
//   - anything else fails the command's requests with the error.
func (q *Queue) resolveFailure(t *sched.Task, cmd *command, err error) {
	switch {
	case errors.Is(err, fs.ErrDeviceDead):
		q.markDead(t, cmd, err)
	case retryable(err) && cmd.attempts < q.maxRetries:
		q.mu.Lock(t)
		if q.dead {
			derr := q.deadErr
			q.mu.Unlock()
			q.complete(t, cmd, derr)
			return
		}
		q.retries++
		q.mu.Unlock()
		delay := retryBackoffBase << cmd.attempts
		q.after(delay, func() { q.reissue(cmd) })
	case errors.Is(err, ErrCmdTimeout):
		// Every attempt timed out: nothing is answering. Declare death so
		// no later submitter waits out the same window.
		q.markDead(t, cmd, fs.ErrDeviceDead)
	case errors.Is(err, fs.ErrBadSector) && len(cmd.reqs) > 1:
		q.split(t, cmd, err)
	default:
		q.complete(t, cmd, err)
	}
}

// reissue re-sends a command after its backoff delay, under a fresh tag.
// An abandoned read gets a fresh queue-owned buffer — the old one may
// still be the late DMA's target and is leaked, never pooled; an
// abandoned write keeps its buffer (the device only reads it, and a late
// landing writes the same bytes). Runs in timer context.
func (q *Queue) reissue(cmd *command) {
	q.mu.Lock(nil)
	if q.dead {
		derr := q.deadErr
		q.mu.Unlock()
		q.complete(nil, cmd, derr)
		return
	}
	if cmd.abandoned && !cmd.write {
		cmd.buf = q.freshBuf(cmd.n)
		cmd.bounce = true
		cmd.abandoned = false
	}
	cmd.attempts++
	q.nextTag++
	cmd.tag = q.nextTag
	q.inflight[cmd.tag] = cmd
	q.mu.Unlock()
	q.issue(nil, cmd)
}

// freshBuf returns a queue-owned buffer for n blocks: pooled when the
// standard bounce size covers it, else a one-off allocation. Caller holds
// q.mu (the pool is internally synchronized; holding mu is merely
// harmless).
func (q *Queue) freshBuf(n int) []byte {
	if n <= maxMergeBlocks {
		return (*(q.pool.Get().(*[]byte)))[:n*q.bs]
	}
	return make([]byte, n*q.bs)
}

// split re-issues a failed merged command as two halves (by member
// request), each with a fresh retry budget. Recursion through further
// failures bottoms out at single-request commands, so a persistent bad
// sector fails exactly the requests covering it while every merged
// neighbor's IO still lands.
func (q *Queue) split(t *sched.Task, cmd *command, err error) {
	mid := len(cmd.reqs) / 2
	halves := [][]*request{cmd.reqs[:mid:mid], cmd.reqs[mid:]}
	subs := make([]*command, 0, 2)
	q.mu.Lock(t)
	if q.dead {
		derr := q.deadErr
		q.mu.Unlock()
		q.complete(t, cmd, derr)
		return
	}
	q.splits++
	for _, group := range halves {
		start, end := group[0].lba, group[0].lba+group[0].n
		for _, r := range group[1:] {
			if r.lba < start {
				start = r.lba
			}
			if e := r.lba + r.n; e > end {
				end = e
			}
		}
		q.nextTag++
		sub := &command{tag: q.nextTag, write: cmd.write, lba: start, n: end - start, reqs: group}
		if len(group) == 1 {
			sub.buf = group[0].buf[:group[0].n*q.bs]
		} else {
			sub.buf = q.freshBuf(sub.n)
			sub.bounce = true
			if sub.write {
				for _, r := range group {
					copy(sub.buf[(r.lba-start)*q.bs:], r.buf[:r.n*q.bs])
				}
			}
		}
		q.inflight[sub.tag] = sub
		subs = append(subs, sub)
	}
	q.mu.Unlock()
	q.recycle(cmd)
	for _, sub := range subs {
		q.issue(t, sub)
	}
}

// markDead latches the dead-device state: the failing command, every
// queued request, and every other in-flight command complete immediately
// with ErrDeviceDead, and all future submissions fast-fail. Commands
// sitting out a retry backoff find the latch when their timer fires.
func (q *Queue) markDead(t *sched.Task, cmd *command, err error) {
	q.mu.Lock(t)
	if !q.dead {
		q.dead = true
		q.deadErr = err
	}
	derr := q.deadErr
	pending := q.pending
	q.pending = nil
	q.pendingN = 0
	var cmds []*command
	if cmd != nil {
		cmds = append(cmds, cmd)
	}
	for tag, c := range q.inflight {
		delete(q.inflight, tag)
		if c.cancelT != nil {
			c.cancelT()
			c.cancelT = nil
		}
		c.abandoned = true // completions may still arrive; never pool
		cmds = append(cmds, c)
	}
	q.closeAnticipationLocked()
	var chans []chan struct{}
	for _, r := range pending {
		r.err = derr
		r.done = true
		if r.ch != nil {
			chans = append(chans, r.ch)
		}
	}
	q.mu.Unlock()
	for _, ch := range chans {
		close(ch)
	}
	for _, r := range pending {
		r.wq.WakeAll()
	}
	for _, c := range cmds {
		q.complete(t, c, derr)
	}
}

// complete finishes a command for good: scatter read data to the member
// requests, record the error, wake waiters, recycle the bounce buffer,
// refill the device queue.
func (q *Queue) complete(t *sched.Task, cmd *command, err error) {
	q.mu.Lock(t)
	if cmd.bounce && !cmd.write && err == nil {
		for _, r := range cmd.reqs {
			copy(r.buf[:r.n*q.bs], cmd.buf[(r.lba-cmd.lba)*q.bs:])
		}
	}
	var chans []chan struct{}
	for _, r := range cmd.reqs {
		r.err = err
		r.done = true
		if r.ch != nil {
			chans = append(chans, r.ch)
		}
	}
	q.mu.Unlock()
	q.recycle(cmd)
	for _, ch := range chans {
		close(ch)
	}
	for _, r := range cmd.reqs {
		r.wq.WakeAll()
	}
	q.kick(t)
}

// recycle returns a command's queue-owned buffer to the pool — unless the
// command was abandoned (a late DMA may still target the buffer; leaking
// it is the only safe move) or the buffer is an oversize one-off.
func (q *Queue) recycle(cmd *command) {
	if !cmd.bounce || cmd.abandoned || cap(cmd.buf) < maxMergeBlocks*q.bs {
		return
	}
	buf := cmd.buf[:cap(cmd.buf)]
	q.pool.Put(&buf)
	cmd.buf = nil
	cmd.bounce = false
}

// Stats reports queue activity: requests submitted, device commands
// dispatched, requests that were merged into another request's command,
// and the peak in-flight command / queued request counts. The merge ratio
// submitted/dispatched is what /proc/diskstats derives.
func (q *Queue) Stats() (submitted, dispatched, merged, depthPeak, queuedPeak int64) {
	q.mu.Lock(nil)
	defer q.mu.Unlock()
	return q.submitted, q.dispatched, q.merged, q.depthPeak, q.queuedPeak
}

// PlugStats reports anticipatory-plug activity: requests that arrived
// inside an open window (hits — the anticipated traffic) and windows that
// expired on their timer (timeouts — the misses, each costing one
// PlugDelay of added latency). Both surface in /proc/diskstats.
func (q *Queue) PlugStats() (hits, timeouts int64) {
	q.mu.Lock(nil)
	defer q.mu.Unlock()
	return q.plugHits, q.plugTimeouts
}

// FaultStats reports the recovery path's activity: command re-issues for
// transient errors and timeouts, commands the device never answered,
// merged commands split after persistent failures, and whether the
// dead-device latch has tripped. All surface in /proc/diskstats.
func (q *Queue) FaultStats() (retries, timeouts, splits int64, dead bool) {
	q.mu.Lock(nil)
	defer q.mu.Unlock()
	return q.retries, q.cmdTimeouts, q.splits, q.dead
}

// Dead reports whether the queue has latched the dead-device state.
func (q *Queue) Dead() bool {
	q.mu.Lock(nil)
	defer q.mu.Unlock()
	return q.dead
}

// Depth reports the configured in-flight command bound.
func (q *Queue) Depth() int { return q.depth }

// PlugDelay reports the anticipatory-plug window ceiling (0 = disabled).
func (q *Queue) PlugDelay() time.Duration { return q.plugDelay }

// AdaptivePlug reports whether windows are cadence-sized (see
// Options.AdaptivePlug), plus the current inter-submit gap estimate and
// the window the next idle request would open (0 = anticipation currently
// given up as hopeless).
func (q *Queue) AdaptivePlug() (on bool, gap, window time.Duration) {
	q.mu.Lock(nil)
	defer q.mu.Unlock()
	return q.adaptive, q.gapEWMA, q.windowDelayLocked()
}

var (
	_ fs.TaskBlockDevice   = (*Queue)(nil)
	_ fs.QueuedBlockDevice = (*Queue)(nil)
)
