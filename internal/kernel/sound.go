package kernel

import (
	"sync"

	"protosim/internal/hw"
	"protosim/internal/kernel/fs"
	"protosim/internal/kernel/sched"
)

// soundRingCap bounds the staged samples (bytes) between the app and the
// DMA engine. Small enough that a stalled consumer exerts back-pressure,
// big enough to ride out scheduling jitter — the producer-consumer sizing
// lesson of §4.4.
const soundRingCap = 64 * 1024

// soundChunk is how many bytes each DMA transfer moves.
const soundChunk = 8 * 1024

// soundDev is the PWM/DMA audio driver: apps write 16-bit samples to
// /dev/sb; the driver stages them in a ring, feeds the DMA engine chunk by
// chunk, and the DMA completion IRQ pulls the next chunk. Writers block
// when the ring is full; underruns are visible in hw.PWMAudio stats.
type soundDev struct {
	k *Kernel

	mu      sync.Mutex
	ring    []byte
	dmaBusy bool
	stopped bool
	bounce  int             // physical address of the DMA bounce buffer
	wq      sched.WaitQueue // writers waiting for ring space
	dwq     sched.WaitQueue // drain waiters

	bytesOut int64
}

// initSound allocates the DMA bounce buffer with kmalloc and arms the DMA
// completion IRQ.
func (k *Kernel) initSound() error {
	pa, err := k.KHeap.Alloc(soundChunk)
	if err != nil {
		return err
	}
	sd := &soundDev{k: k, bounce: pa}
	k.sound = sd
	k.m.IRQ.Register(hw.IRQDMA, 0, func(hw.IRQLine, int) { sd.dmaComplete() })
	k.m.PWM.Start()
	return nil
}

func (sd *soundDev) stop() {
	sd.mu.Lock()
	sd.stopped = true
	sd.mu.Unlock()
	sd.wq.WakeAll()
	sd.dwq.WakeAll()
}

// write stages samples, blocking while the ring is full.
func (sd *soundDev) write(t *sched.Task, p []byte) (int, error) {
	written := 0
	for written < len(p) {
		sd.mu.Lock()
		if sd.stopped {
			sd.mu.Unlock()
			return written, fs.ErrPipeClosed
		}
		room := soundRingCap - len(sd.ring)
		if room > 0 {
			n := room
			if n > len(p)-written {
				n = len(p) - written
			}
			sd.ring = append(sd.ring, p[written:written+n]...)
			written += n
			sd.kickLocked()
			sd.mu.Unlock()
			continue
		}
		sd.mu.Unlock()
		sd.wq.Sleep(t) // back-pressure: the §4.4 pipeline in action
	}
	return written, nil
}

// kickLocked starts a DMA transfer if the engine is idle and samples wait.
// Caller holds sd.mu.
func (sd *soundDev) kickLocked() {
	if sd.dmaBusy || len(sd.ring) == 0 {
		return
	}
	n := len(sd.ring)
	if n > soundChunk {
		n = soundChunk
	}
	n &^= 1 // whole samples
	if n == 0 {
		return
	}
	// Copy into the physical bounce buffer and hand it to the engine.
	copy(sd.k.m.Mem.Bytes(sd.bounce, n), sd.ring[:n])
	sd.ring = sd.ring[n:]
	if sd.k.m.DMA.TransferToPWM(sd.k.m.PWM, sd.bounce, n) {
		sd.dmaBusy = true
		sd.bytesOut += int64(n)
	}
}

// dmaComplete is the IRQ handler: feed the next chunk, wake writers.
func (sd *soundDev) dmaComplete() {
	sd.mu.Lock()
	sd.dmaBusy = false
	sd.kickLocked()
	drained := len(sd.ring) == 0 && !sd.dmaBusy
	sd.mu.Unlock()
	sd.wq.WakeAll()
	if drained {
		sd.dwq.WakeAll()
	}
}

// drain blocks until all staged samples have been handed to the hardware.
func (sd *soundDev) drain(t *sched.Task) {
	for {
		sd.mu.Lock()
		done := (len(sd.ring) == 0 && !sd.dmaBusy) || sd.stopped
		sd.mu.Unlock()
		if done {
			return
		}
		sd.dwq.Sleep(t)
	}
}

// pending reports staged bytes (diagnostics).
func (sd *soundDev) pending() int {
	sd.mu.Lock()
	defer sd.mu.Unlock()
	return len(sd.ring)
}

// soundFile is one open of /dev/sb.
type soundFile struct {
	fs.BaseOps
	dev *soundDev
}

// Write implements fs.FileOps: stage samples for DMA.
func (f *soundFile) Write(t *sched.Task, p []byte) (int, error) {
	if f.dev == nil {
		return 0, fs.ErrNotFound
	}
	return f.dev.write(t, p)
}

// Stat implements fs.FileOps.
func (f *soundFile) Stat(*sched.Task) (fs.Stat, error) {
	return fs.Stat{Name: "sb", Type: fs.TypeDevice}, nil
}

// Caps implements fs.FileOps: a stream with control operations.
func (f *soundFile) Caps() fs.Caps { return fs.CapIoctl }

// Ioctl implements fs.FileOps (IoctlSoundDrain).
func (f *soundFile) Ioctl(t *sched.Task, op int, arg int64) (int64, error) {
	if op == IoctlSoundDrain {
		f.dev.drain(t)
		return 0, nil
	}
	return 0, fs.ErrNotSupported
}
